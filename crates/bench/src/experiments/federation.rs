//! E15 — federated site selection over a WAN.
//!
//! The paper deploys Galaxy into one EC2 region; this experiment asks
//! what changes when the deployment is *plural*: a federation of sites
//! (each a complete provisioned pool + NFS export + object store at its
//! region's instance prices) joined by a deterministic WAN priced at the
//! 2012 inter-region egress tariff. The grid sweeps **placement policy**
//! (round-robin / cost-greedy / queue-depth / data-gravity) × **WAN
//! bandwidth** × **site count** × **data scenario** (every dataset
//! concentrated on the most expensive site vs spread one-per-site) over
//! one fixed multi-user invocation stream.
//!
//! Every cell is a synchronous multi-site Condor episode: invocations
//! arrive on a seeded clock, a [`Placer`] routes each to a site *before*
//! it hits that site's pool, per-site negotiation runs on the standard
//! 20 s cycle, staging climbs the site ladder with the cross-site WAN
//! rung spliced in (replicating on first pull), and per-site `QueueStep`
//! autoscalers resize the pools underneath — billing worker tenures per
//! second and WAN bytes per GB. Cells fan out over the replica runner
//! and the report is byte-identical at any thread count.
//!
//! Expected shape, and the claim lines assert it: when inputs are
//! **concentrated**, data-gravity follows the bytes (no crossings, no
//! egress) and beats cost-greedy on makespan at ≥ 50 % lower egress
//! spend; when inputs are **spread** everywhere, gravity scatters work
//! onto expensive sites and cost-greedy wins on total dollars. A 1-site
//! federation reproduces the single-region E13 cells byte-for-byte (the
//! regression test below).

use std::collections::BTreeMap;

use cumulus::autoscale::policy::QueueStep;
use cumulus::cloud::InstanceType;
use cumulus::federation::{
    Federation, PlacementPolicy, Placer, SiteConfig, SiteScaler, WanLink, WanTopology,
};
use cumulus::galaxy::routing::InvocationRequest;
use cumulus::htc::{
    Job, JobId, Value, WorkSpec, JOB_INPUT_CIDS_ATTR, MACHINE_CACHE_CIDS_ATTR, NEGOTIATION_INTERVAL,
};
use cumulus::provision::json::Json;
use cumulus::simkit::rng::RngStream;
use cumulus::simkit::runner::{run_replicas, ReplicaPlan};
use cumulus::simkit::telemetry::wan as wan_keys;
use cumulus::simkit::time::{SimDuration, SimTime};
use cumulus::store::staging::keys as staging_keys;
use cumulus::store::{ContentId, DataSize, InputSpec};

use crate::experiments::datashare::{self, BackendSpec, CellReport, Reuse};
use crate::table::{mins, Table};

/// Users submitting workflow invocations.
const USERS: usize = 4;
/// Invocations per user.
const INVOCATIONS_PER_USER: usize = 8;
/// Datasets each user alternates between (reuse factor 4 per dataset).
const DATASETS_PER_USER: usize = 2;
/// Every dataset is this big.
const DATASET_MB: u64 = 200;
/// Workers each site provisions at episode start.
const SITE_WORKERS: usize = 3;
/// Autoscale floor per site (scale-to-zero: an idle site stops billing).
const MIN_WORKERS: usize = 0;
/// Autoscale ceiling per site.
const MAX_WORKERS: usize = 6;
/// One-way WAN latency between any site pair, milliseconds.
const WAN_LATENCY_MS: f64 = 40.0;
/// The concentrated-scenario claim: data-gravity must spend at most this
/// fraction of cost-greedy's egress dollars (≥ 50 % savings).
pub const MAX_EGRESS_FRACTION: f64 = 0.5;

/// The site catalog, cheapest first: region name × instance type. A
/// `sites = n` cell provisions the first `n`.
const CATALOG: [(&str, InstanceType); 3] = [
    ("us-east", InstanceType::M1Small),
    ("us-west", InstanceType::C1Medium),
    ("eu-west", InstanceType::M1Large),
];

/// Where the episode's datasets start out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Every dataset seeded on the *most expensive* site — gravity must
    /// pull work there against the price signal.
    Concentrated,
    /// Dataset `k` seeded on site `k mod n` — every site holds some.
    Spread,
}

impl Scenario {
    /// Render the scenario column.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::Concentrated => "concentrated",
            Scenario::Spread => "spread",
        }
    }
}

/// One cell of the E15 grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellSpec {
    /// Site-selection policy.
    pub policy: PlacementPolicy,
    /// WAN bandwidth between every site pair, Mbit/s.
    pub wan_mbps: f64,
    /// Number of federated sites (prefix of the catalog).
    pub sites: usize,
    /// Initial dataset placement.
    pub scenario: Scenario,
}

/// The measured episode of one cell.
#[derive(Debug, Clone)]
pub struct FedCellReport {
    /// Jobs completed (always the full stream).
    pub jobs: usize,
    /// First submission to last completion, minutes.
    pub makespan_mins: f64,
    /// Total staging time charged across all sites, seconds.
    pub staging_secs: f64,
    /// Bytes staged from sources inside their own site.
    pub bytes_intra: u64,
    /// Bytes staged over the WAN from a remote site's object store.
    pub bytes_cross: u64,
    /// WAN crossings (each replicates at the destination).
    pub crossings: u64,
    /// Inter-region egress dollars.
    pub egress_usd: f64,
    /// Worker-tenure + object-store dollars across all sites.
    pub compute_usd: f64,
    /// Invocations routed to each site, in site order.
    pub placements: Vec<usize>,
}

impl FedCellReport {
    /// Egress + compute.
    pub fn total_usd(&self) -> f64 {
        self.egress_usd + self.compute_usd
    }
}

/// One row: configuration plus measurement.
#[derive(Debug, Clone)]
pub struct FederationRow {
    /// The cell's configuration.
    pub spec: CellSpec,
    /// The measured episode.
    pub report: FedCellReport,
}

/// The grid's combos in report order: scenario (concentrated first) ×
/// site count × WAN bandwidth × policy, so the four policies of one
/// configuration sit together. `quick` trims to the CI smoke shape — the
/// claim cells (3 sites, thin WAN, cost-greedy vs data-gravity, both
/// scenarios).
pub fn grid_combos(quick: bool) -> Vec<CellSpec> {
    let scenarios = [Scenario::Concentrated, Scenario::Spread];
    let (site_counts, wans, policies): (&[usize], &[f64], &[PlacementPolicy]) = if quick {
        (
            &[3],
            &[50.0],
            &[PlacementPolicy::CostGreedy, PlacementPolicy::DataGravity],
        )
    } else {
        (&[2, 3], &[50.0, 200.0], &PlacementPolicy::all())
    };
    let mut combos = Vec::new();
    for &scenario in &scenarios {
        for &sites in site_counts {
            for &wan_mbps in wans {
                for &policy in policies {
                    combos.push(CellSpec {
                        policy,
                        wan_mbps,
                        sites,
                        scenario,
                    });
                }
            }
        }
    }
    combos
}

/// The content id of dataset `idx` — stable across cells, so every cell
/// stages the same contents.
fn dataset_cid(idx: usize) -> ContentId {
    ContentId::of_str(&format!("e15-dataset-{idx}"))
}

/// One invocation of the fixed stream.
struct Invocation {
    submit_at: SimTime,
    user: usize,
    work: WorkSpec,
    dataset: usize,
}

/// The invocation stream every cell replays: users round-robin on a
/// seeded arrival clock (5–20 s gaps — brisk enough that a single site
/// saturates its worker cap, so staging delays land on the critical path
/// instead of being absorbed by scale-out), 90–150 s of serial work,
/// each user alternating between their two datasets. Derived from the
/// master seed directly — **not** the per-replica seed — so all cells
/// compare the same workload.
fn invocation_stream(seed: u64) -> Vec<Invocation> {
    let mut arrivals = RngStream::derive(seed, "e15-arrivals");
    let mut work = RngStream::derive(seed, "e15-work");
    let mut at = SimTime::ZERO;
    (0..USERS * INVOCATIONS_PER_USER)
        .map(|j| {
            at += SimDuration::from_secs_f64(arrivals.uniform_range(5.0, 20.0));
            let user = j % USERS;
            Invocation {
                submit_at: at,
                user,
                work: WorkSpec::serial(90.0 + work.uniform_range(0.0, 60.0)),
                dataset: user * DATASETS_PER_USER + (j / USERS) % DATASETS_PER_USER,
            }
        })
        .collect()
}

/// Run one grid cell: provision the federation, seed the scenario's
/// dataset placement, and drive the synchronous multi-site episode.
pub fn run_cell(seed: u64, spec: CellSpec) -> FedCellReport {
    let stream = invocation_stream(seed);
    let size = DataSize::from_mb(DATASET_MB);

    let configs: Vec<SiteConfig> = CATALOG[..spec.sites]
        .iter()
        .map(|&(name, itype)| SiteConfig::new(name, SITE_WORKERS, itype))
        .collect();
    let wan = WanTopology::full_mesh(WanLink::new(WAN_LATENCY_MS, spec.wan_mbps));
    let mut fed = Federation::provision(configs, wan, SimTime::ZERO);

    let datasets = USERS * DATASETS_PER_USER;
    for idx in 0..datasets {
        let at = match spec.scenario {
            // The catalog is priced ascending, so the last site is the
            // most expensive — gravity must fight the price signal.
            Scenario::Concentrated => spec.sites - 1,
            Scenario::Spread => idx % spec.sites,
        };
        fed.seed_dataset(at, dataset_cid(idx), size);
    }

    let mut placer = Placer::new(spec.policy);
    let mut scalers: Vec<SiteScaler> = (0..spec.sites)
        .map(|_| SiteScaler::new(Box::new(QueueStep::new(2)), 3, MIN_WORKERS, MAX_WORKERS))
        .collect();
    let mut placements = vec![0usize; spec.sites];
    let mut inputs_of: Vec<BTreeMap<JobId, InputSpec>> = vec![BTreeMap::new(); spec.sites];

    let mut now = SimTime::ZERO;
    let mut submitted = 0;
    let mut completed = 0;
    let mut staging = SimDuration::ZERO;
    let mut cycles = 0u32;
    while completed < stream.len() {
        cycles += 1;
        assert!(cycles < 100_000, "E15 episode failed to drain");
        for s in 0..spec.sites {
            completed += fed.site_mut(s).pool.settle(now).len();
        }

        while submitted < stream.len() && stream[submitted].submit_at <= now {
            let inv = &stream[submitted];
            let cid = dataset_cid(inv.dataset);
            let input = InputSpec { cid, size };
            let request = InvocationRequest {
                id: submitted as u64,
                user: format!("user-{}", inv.user),
                workflow: "rna-seq".to_string(),
                inputs: vec![input],
            };
            let site = fed.route(&mut placer, &request);
            placements[site] += 1;
            let id = fed.site_mut(site).pool.submit(
                Job::new(&request.user, inv.work).attr(JOB_INPUT_CIDS_ATTR, Value::Str(cid.hex())),
                now,
            );
            inputs_of[site].insert(id, input);
            submitted += 1;
        }

        for (s, inputs) in inputs_of.iter().enumerate() {
            let matches = fed.site_mut(s).pool.negotiate(now);
            let concurrent = matches.len() as u32;
            for m in &matches {
                let input = inputs[&m.job];
                let plan = fed.stage_job(s, &m.machine.0, &[input], concurrent, now);
                staging += plan.total;
                let cache_ad = fed.site(s).plane.fleet.attr_string(&m.machine.0);
                let site = fed.site_mut(s);
                site.pool
                    .extend_job(m.job, plan.total)
                    .expect("freshly matched job is running");
                let machine = site
                    .pool
                    .machine_mut(&m.machine.0)
                    .expect("matched machine");
                machine
                    .ad
                    .set(MACHINE_CACHE_CIDS_ATTR, Value::Str(cache_ad));
            }
        }

        for (s, scaler) in scalers.iter_mut().enumerate() {
            let site = fed.site_mut(s);
            let workers = site.worker_count();
            let desired = scaler.desired(now, &site.pool, workers);
            while site.worker_count() < desired {
                site.add_worker(now);
            }
            while site.worker_count() > desired {
                if !site.remove_idle_worker(now) {
                    break;
                }
            }
        }

        now += NEGOTIATION_INTERVAL;
    }

    let end = fed.last_completion_at().expect("episode completed jobs");
    fed.close_billing(end);

    let mut bytes_intra = 0u64;
    for s in 0..spec.sites {
        let m = &fed.site(s).metrics;
        bytes_intra += m.counter(staging_keys::BYTES_LOCAL)
            + m.counter(staging_keys::BYTES_PEER)
            + m.counter(staging_keys::BYTES_OBJECT)
            + m.counter(staging_keys::BYTES_NFS)
            + m.counter(staging_keys::BYTES_INGEST);
    }
    FedCellReport {
        jobs: completed,
        makespan_mins: end.since(SimTime::ZERO).as_mins_f64(),
        staging_secs: staging.as_secs_f64(),
        bytes_intra,
        bytes_cross: fed.wan_metrics().counter(wan_keys::BYTES_EGRESS),
        crossings: fed.wan_metrics().counter(wan_keys::CROSSINGS),
        egress_usd: fed.egress_cost_usd(end),
        compute_usd: fed.compute_cost_usd(end),
        placements,
    }
}

/// Run the grid, fanned out over the replica runner (`threads` as
/// everywhere: `0` = one per CPU, `1` = serial). Rows come back in combo
/// order at any thread count.
pub fn run_grid(seed: u64, threads: usize, quick: bool) -> Vec<FederationRow> {
    let combos = grid_combos(quick);
    let reports = run_replicas(
        ReplicaPlan::new(seed, combos.len()).with_threads(threads),
        |i, _seeds| run_cell(seed, combos[i]),
    );
    combos
        .into_iter()
        .zip(reports)
        .map(|(spec, report)| FederationRow { spec, report })
        .collect()
}

/// The grid cell matching `policy` on the claim configuration (3 sites,
/// thin WAN) under `scenario`.
fn claim_cell(
    rows: &[FederationRow],
    policy: PlacementPolicy,
    scenario: Scenario,
) -> &FederationRow {
    rows.iter()
        .find(|r| {
            r.spec.policy == policy
                && r.spec.scenario == scenario
                && r.spec.sites == 3
                && r.spec.wan_mbps == 50.0
        })
        .expect("the grid contains the claim cells")
}

/// Concentrated-scenario claim inputs: (gravity, cost-greedy) rows.
pub fn concentrated_pair(rows: &[FederationRow]) -> (&FederationRow, &FederationRow) {
    (
        claim_cell(rows, PlacementPolicy::DataGravity, Scenario::Concentrated),
        claim_cell(rows, PlacementPolicy::CostGreedy, Scenario::Concentrated),
    )
}

/// Spread-scenario claim inputs: (gravity, cost-greedy) rows.
pub fn spread_pair(rows: &[FederationRow]) -> (&FederationRow, &FederationRow) {
    (
        claim_cell(rows, PlacementPolicy::DataGravity, Scenario::Spread),
        claim_cell(rows, PlacementPolicy::CostGreedy, Scenario::Spread),
    )
}

/// Assert the experiment's two claims, panicking with the offending
/// numbers otherwise. Callable on quick and full grids alike (both
/// contain the claim cells).
pub fn assert_claims(rows: &[FederationRow]) {
    let (gravity, greedy) = concentrated_pair(rows);
    assert!(
        gravity.report.makespan_mins <= greedy.report.makespan_mins,
        "concentrated: data-gravity makespan {:.2} min must not exceed cost-greedy's {:.2} min",
        gravity.report.makespan_mins,
        greedy.report.makespan_mins,
    );
    assert!(
        gravity.report.egress_usd <= MAX_EGRESS_FRACTION * greedy.report.egress_usd,
        "concentrated: data-gravity egress ${:.4} must be at most {:.0}% of cost-greedy's ${:.4}",
        gravity.report.egress_usd,
        MAX_EGRESS_FRACTION * 100.0,
        greedy.report.egress_usd,
    );
    let (gravity, greedy) = spread_pair(rows);
    assert!(
        greedy.report.total_usd() < gravity.report.total_usd(),
        "spread: cost-greedy total ${:.4} must undercut data-gravity's ${:.4}",
        greedy.report.total_usd(),
        gravity.report.total_usd(),
    );
}

/// Render the E15 table plus the claim lines.
pub fn render(rows: &[FederationRow]) -> String {
    let mut t = Table::new(
        "E15 — federated placement (32 invocations, 4 users, 200 MB datasets)",
        &[
            "scenario",
            "sites",
            "wan (Mbit/s)",
            "policy",
            "makespan (min)",
            "staging (s)",
            "cross (MB)",
            "egress ($)",
            "compute ($)",
            "total ($)",
            "placements",
        ],
    );
    for r in rows {
        t.row(&[
            r.spec.scenario.label().to_string(),
            format!("{}", r.spec.sites),
            format!("{:.0}", r.spec.wan_mbps),
            r.spec.policy.label().to_string(),
            mins(r.report.makespan_mins),
            format!("{:.1}", r.report.staging_secs),
            format!("{:.0}", r.report.bytes_cross as f64 / 1e6),
            format!("{:.4}", r.report.egress_usd),
            format!("{:.4}", r.report.compute_usd),
            format!("{:.4}", r.report.total_usd()),
            r.report
                .placements
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join("/"),
        ]);
    }
    let (gravity_c, greedy_c) = concentrated_pair(rows);
    let (gravity_s, greedy_s) = spread_pair(rows);
    format!(
        "{}\nconcentrated inputs: data-gravity follows the bytes to the expensive site — \
         makespan {} vs {} min and egress ${:.4} vs ${:.4} against cost-greedy, which \
         drags every dataset over the thin WAN once before replication localizes it. \
         spread inputs: gravity scatters work onto expensive regions (${:.4} total) while \
         cost-greedy concentrates on the cheap site and pays the tariff (${:.4} total) — \
         the sharing choice inverts with the data layout, as the single-region E13 sweep \
         inverts with reuse.\n",
        t.render(),
        mins(gravity_c.report.makespan_mins),
        mins(greedy_c.report.makespan_mins),
        gravity_c.report.egress_usd,
        greedy_c.report.egress_usd,
        gravity_s.report.total_usd(),
        greedy_s.report.total_usd(),
    )
}

/// The machine-readable grid for `BENCH_e15.json`. Contains only
/// seed-deterministic quantities (never wall times), so the file is
/// byte-identical at any thread count — the property the CI smoke run
/// asserts.
pub fn json_doc(seed: u64, rows: &[FederationRow]) -> Json {
    let cells: Vec<Json> = rows
        .iter()
        .map(|r| {
            Json::obj([
                ("scenario", Json::str(r.spec.scenario.label())),
                ("sites", Json::Num(r.spec.sites as f64)),
                ("wan_mbps", Json::Num(r.spec.wan_mbps)),
                ("policy", Json::str(r.spec.policy.label())),
                ("jobs", Json::Num(r.report.jobs as f64)),
                ("makespan_mins", Json::Num(round4(r.report.makespan_mins))),
                ("staging_secs", Json::Num(round4(r.report.staging_secs))),
                ("bytes_intra", Json::Num(r.report.bytes_intra as f64)),
                ("bytes_cross", Json::Num(r.report.bytes_cross as f64)),
                ("crossings", Json::Num(r.report.crossings as f64)),
                ("egress_usd", Json::Num(round4(r.report.egress_usd))),
                ("compute_usd", Json::Num(round4(r.report.compute_usd))),
                ("total_usd", Json::Num(round4(r.report.total_usd()))),
                (
                    "placements",
                    Json::Arr(
                        r.report
                            .placements
                            .iter()
                            .map(|&p| Json::Num(p as f64))
                            .collect(),
                    ),
                ),
            ])
        })
        .collect();
    let (gravity, greedy) = concentrated_pair(rows);
    Json::obj([
        ("bench", Json::str("e15_federation_grid")),
        ("seed", Json::Num(seed as f64)),
        ("users", Json::Num(USERS as f64)),
        (
            "invocations",
            Json::Num((USERS * INVOCATIONS_PER_USER) as f64),
        ),
        ("dataset_mb", Json::Num(DATASET_MB as f64)),
        ("rows", Json::Arr(cells)),
        (
            "concentrated_egress_ratio",
            Json::Num(if greedy.report.egress_usd > 0.0 {
                round4(gravity.report.egress_usd / greedy.report.egress_usd)
            } else {
                0.0
            }),
        ),
    ])
}

fn round4(x: f64) -> f64 {
    (x * 1e4).round() / 1e4
}

/// Run one E13 cell **through a 1-site federation**: same backend, same
/// workload, same episode protocol as [`datashare::run_cell`], but with
/// every plane call routed through [`Federation::stage_job`]. The
/// regression test asserts the resulting [`CellReport`] is equal field
/// for field — the federated rung must be invisible when there is no one
/// to federate with.
pub fn run_e13_cell_federated(seed: u64, spec: BackendSpec, reuse: Reuse) -> CellReport {
    let stream = datashare::job_stream(seed, reuse);
    let size = datashare::dataset_size();

    let mut config = SiteConfig::new("solo", datashare::WORKERS, InstanceType::M1Small)
        .with_backend(spec.backend())
        .with_cache_capacity(spec.cache_capacity());
    config.nfs_bandwidth_mbps = datashare::NFS_BANDWIDTH_MBPS;
    let mut fed = Federation::provision(vec![config], WanTopology::new(), SimTime::ZERO);
    for idx in 0..reuse.dataset_count() {
        fed.seed_dataset(0, datashare::dataset_cid(idx), size);
    }

    let mut inputs_of: BTreeMap<JobId, InputSpec> = BTreeMap::new();
    let mut now = SimTime::ZERO;
    let mut submitted = 0;
    let mut completed = 0;
    let mut staging = SimDuration::ZERO;
    let mut cycles = 0u32;
    while completed < stream.len() {
        cycles += 1;
        assert!(cycles < 100_000, "federated E13 episode failed to drain");
        completed += fed.site_mut(0).pool.settle(now).len();

        while submitted < stream.len() && stream[submitted].submit_at <= now {
            let job = &stream[submitted];
            let cid = datashare::dataset_cid(job.dataset);
            let id = fed.site_mut(0).pool.submit(
                Job::new("galaxy", job.work).attr(JOB_INPUT_CIDS_ATTR, Value::Str(cid.hex())),
                now,
            );
            inputs_of.insert(id, InputSpec { cid, size });
            submitted += 1;
        }

        let matches = fed.site_mut(0).pool.negotiate(now);
        let concurrent = matches.len() as u32;
        for m in &matches {
            let input = inputs_of[&m.job];
            let plan = fed.stage_job(0, &m.machine.0, &[input], concurrent, now);
            staging += plan.total;
            let cache_ad = fed.site(0).plane.fleet.attr_string(&m.machine.0);
            let site = fed.site_mut(0);
            site.pool
                .extend_job(m.job, plan.total)
                .expect("freshly matched job is running");
            if spec.backend() == cumulus::store::SharingBackend::CachedObjectStore {
                let machine = site
                    .pool
                    .machine_mut(&m.machine.0)
                    .expect("matched machine");
                machine
                    .ad
                    .set(MACHINE_CACHE_CIDS_ATTR, Value::Str(cache_ad));
            }
        }

        now += NEGOTIATION_INTERVAL;
    }

    assert_eq!(
        fed.wan_metrics().counter(wan_keys::CROSSINGS),
        0,
        "a 1-site federation must never cross the WAN"
    );
    let end = fed.last_completion_at().expect("episode completed jobs");
    let site = fed.site(0);
    let (cache_hits, cache_misses, _evictions) = site.plane.fleet.totals();
    CellReport {
        jobs: completed,
        makespan_mins: end.since(SimTime::ZERO).as_mins_f64(),
        staging_secs: staging.as_secs_f64(),
        bytes_local: site.metrics.counter(staging_keys::BYTES_LOCAL),
        bytes_peer: site.metrics.counter(staging_keys::BYTES_PEER),
        bytes_object: site.metrics.counter(staging_keys::BYTES_OBJECT),
        bytes_nfs: site.metrics.counter(staging_keys::BYTES_NFS),
        bytes_ingest: site.metrics.counter(staging_keys::BYTES_INGEST),
        object_cost_usd: site.plane.object.cost_usd(),
        cache_hits,
        cache_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shapes() {
        let full = grid_combos(false);
        assert_eq!(full.len(), 32);
        assert_eq!(full[0].scenario, Scenario::Concentrated);
        assert_eq!(full[0].policy, PlacementPolicy::RoundRobin);
        let quick = grid_combos(true);
        assert_eq!(quick.len(), 4);
        assert!(quick.iter().all(|c| c.sites == 3 && c.wan_mbps == 50.0));
    }

    #[test]
    fn quick_grid_is_thread_count_invariant_and_meets_the_claims() {
        let seed = crate::REPORT_SEED;
        let serial = run_grid(seed, 1, true);
        let parallel = run_grid(seed, 3, true);
        assert_eq!(render(&serial), render(&parallel));
        assert_eq!(
            json_doc(seed, &serial).render(),
            json_doc(seed, &parallel).render()
        );
        assert_claims(&serial);
    }

    #[test]
    fn every_cell_completes_the_stream_and_balances_its_bytes() {
        let rows = run_grid(crate::REPORT_SEED, 0, true);
        for r in &rows {
            assert_eq!(r.report.jobs, USERS * INVOCATIONS_PER_USER);
            assert_eq!(
                r.report.placements.iter().sum::<usize>(),
                USERS * INVOCATIONS_PER_USER
            );
            // Cross-site bytes are exactly crossings × dataset size, and
            // egress dollars are exactly cross bytes at the tariff.
            assert_eq!(
                r.report.bytes_cross,
                r.report.crossings * DATASET_MB * 1_000_000
            );
            let expected =
                r.report.bytes_cross as f64 / 1e9 * cumulus::cloud::INTER_REGION_EGRESS_USD_PER_GB;
            assert!((r.report.egress_usd - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn one_site_federation_reproduces_the_e13_grid() {
        let seed = crate::REPORT_SEED;
        for (spec, reuse) in [
            (BackendSpec::Nfs, Reuse::High),
            (BackendSpec::Object, Reuse::Low),
            (BackendSpec::Cached(2048), Reuse::High),
        ] {
            let single = datashare::run_cell(seed, spec, reuse);
            let federated = run_e13_cell_federated(seed, spec, reuse);
            assert_eq!(single.jobs, federated.jobs);
            assert_eq!(single.makespan_mins, federated.makespan_mins);
            assert_eq!(single.staging_secs, federated.staging_secs);
            assert_eq!(single.bytes_local, federated.bytes_local);
            assert_eq!(single.bytes_peer, federated.bytes_peer);
            assert_eq!(single.bytes_object, federated.bytes_object);
            assert_eq!(single.bytes_nfs, federated.bytes_nfs);
            assert_eq!(single.bytes_ingest, federated.bytes_ingest);
            assert_eq!(single.object_cost_usd, federated.object_cost_usd);
            assert_eq!(single.cache_hits, federated.cache_hits);
            assert_eq!(single.cache_misses, federated.cache_misses);
        }
    }

    #[test]
    fn report_renders_with_the_claim_lines() {
        let rows = run_grid(97, 0, true);
        let out = render(&rows);
        assert!(out.contains("E15"));
        assert!(out.contains("concentrated inputs"));
    }
}

//! Minimal fixed-width text tables for experiment reports.

/// A text table under construction.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Convenience for &str cells.
    pub fn row_str(&mut self, cells: &[&str]) {
        self.row(&cells.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(ncols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format minutes with two decimals.
pub fn mins(m: f64) -> String {
    format!("{m:.2}")
}

/// Format dollars with four decimals.
pub fn dollars(d: f64) -> String {
    format!("{d:.4}")
}

/// Format Mbit/s with two decimals.
pub fn mbps(r: f64) -> String {
    format!("{r:.2}")
}

/// Relative error as a percentage string.
pub fn err_pct(measured: f64, paper: f64) -> String {
    if paper == 0.0 {
        return "-".to_string();
    }
    format!("{:+.1}%", (measured - paper) / paper * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row_str(&["a", "1"]);
        t.row_str(&["long-name", "2"]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("long-name"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new("demo", &["a", "b", "c"]);
        t.row_str(&["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn formatters() {
        assert_eq!(mins(10.666), "10.67");
        assert_eq!(dollars(0.00713), "0.0071");
        assert_eq!(mbps(37.414), "37.41");
        assert_eq!(err_pct(11.0, 10.0), "+10.0%");
        assert_eq!(err_pct(1.0, 0.0), "-");
    }
}

//! Matchmaker kernel bench: negotiation + settle throughput for the
//! `cumulus-htc` pool, new vs old.
//!
//! Every workload runs on **two** matchmakers:
//!
//! * the current `cumulus_htc::CondorPool` (interned symbols, compiled
//!   postfix expressions, per-owner idle queues, accepting-machines list,
//!   generation-counted finish heap);
//! * [`baseline::Pool`], a faithful copy of the pre-rewrite pool compiled
//!   into this binary: `BTreeMap<String, Value>` ClassAds with per-lookup
//!   key lowercasing, tree-walking `Expr` evaluation, full job-table
//!   scans per user in `negotiate`, and a `settle` that re-scans every
//!   job ever submitted (including the completed set).
//!
//! Beyond timing, the harness asserts determinism: each workload must
//! produce the same (checksum, event-count) on both matchmakers and on
//! repeated runs. Those assertions panic on failure, which is what the
//! CI `bench-smoke` job gates on (timing is reported, never gated).
//!
//! Results land in `BENCH_htc.json` at the repo root.
//!
//! Usage: `cargo run --release -p cumulus-bench --bin matchmaker [-- --quick]`

use std::time::Instant;

use cumulus_htc::{CondorPool, Job, Machine, WorkSpec};
use cumulus_provision::json::Json;
use cumulus_simkit::time::{SimDuration, SimTime};

/// The pre-rewrite matchmaker, kept verbatim as the measured baseline.
mod baseline {
    use std::collections::{BTreeMap, BTreeSet};

    use cumulus_htc::classad::{BinOp, Expr, UnaryOp, Value};
    use cumulus_htc::{CACHE_AFFINITY_BONUS, JOB_INPUT_CIDS_ATTR, MACHINE_CACHE_CIDS_ATTR};
    use cumulus_simkit::time::{SimDuration, SimTime};

    /// The old ClassAd: a string-keyed map, lowercasing the key on every
    /// single lookup (one heap allocation per `get`).
    #[derive(Debug, Clone, Default)]
    pub struct Ad {
        attrs: BTreeMap<String, Value>,
    }

    impl Ad {
        pub fn new() -> Self {
            Ad::default()
        }

        pub fn set(&mut self, key: &str, value: Value) -> &mut Self {
            self.attrs.insert(key.to_ascii_lowercase(), value);
            self
        }

        pub fn with(mut self, key: &str, value: Value) -> Self {
            self.set(key, value);
            self
        }

        pub fn get(&self, key: &str) -> Value {
            self.attrs
                .get(&key.to_ascii_lowercase())
                .cloned()
                .unwrap_or(Value::Undefined)
        }
    }

    // The old `Value` helpers (private on the real type) and the old
    // tree-walking evaluator, ported verbatim to run against `Ad`.

    fn as_f64(v: &Value) -> Option<f64> {
        match v {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    fn truthy(v: &Value) -> bool {
        match v {
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::Undefined => false,
        }
    }

    fn value_eq(a: &Value, b: &Value) -> bool {
        match (a, b) {
            (Value::Str(x), Value::Str(y)) => x.eq_ignore_ascii_case(y),
            (Value::Bool(x), Value::Bool(y)) => x == y,
            (Value::Undefined, _) | (_, Value::Undefined) => false,
            _ => match (as_f64(a), as_f64(b)) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }

    pub fn eval(e: &Expr, target: &Ad, own: &Ad) -> Value {
        match e {
            Expr::Lit(v) => v.clone(),
            Expr::Attr(name) => {
                let (scope, bare) = match name.split_once('.') {
                    Some((s, b)) => (Some(s.to_ascii_lowercase()), b),
                    None => (None, name.as_str()),
                };
                match scope.as_deref() {
                    Some("my") => own.get(bare),
                    Some("target") => target.get(bare),
                    _ => match target.get(name) {
                        Value::Undefined => own.get(name),
                        v => v,
                    },
                }
            }
            Expr::Unary(op, inner) => {
                let v = eval(inner, target, own);
                match op {
                    UnaryOp::Not => Value::Bool(!truthy(&v)),
                    UnaryOp::Neg => match as_f64(&v) {
                        Some(f) => Value::Float(-f),
                        None => Value::Undefined,
                    },
                }
            }
            Expr::Binary(op, l, r) => {
                match op {
                    BinOp::And => {
                        let lv = eval(l, target, own);
                        if !truthy(&lv) {
                            return Value::Bool(false);
                        }
                        return Value::Bool(truthy(&eval(r, target, own)));
                    }
                    BinOp::Or => {
                        let lv = eval(l, target, own);
                        if truthy(&lv) {
                            return Value::Bool(true);
                        }
                        return Value::Bool(truthy(&eval(r, target, own)));
                    }
                    _ => {}
                }
                let lv = eval(l, target, own);
                let rv = eval(r, target, own);
                match op {
                    BinOp::Eq => Value::Bool(value_eq(&lv, &rv)),
                    BinOp::Ne => match (&lv, &rv) {
                        (Value::Undefined, _) | (_, Value::Undefined) => Value::Bool(false),
                        _ => Value::Bool(!value_eq(&lv, &rv)),
                    },
                    BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                        match (as_f64(&lv), as_f64(&rv)) {
                            (Some(a), Some(b)) => Value::Bool(match op {
                                BinOp::Lt => a < b,
                                BinOp::Le => a <= b,
                                BinOp::Gt => a > b,
                                BinOp::Ge => a >= b,
                                _ => unreachable!(),
                            }),
                            _ => Value::Bool(false),
                        }
                    }
                    BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div => {
                        match (as_f64(&lv), as_f64(&rv)) {
                            (Some(a), Some(b)) => {
                                let x = match op {
                                    BinOp::Add => a + b,
                                    BinOp::Sub => a - b,
                                    BinOp::Mul => a * b,
                                    BinOp::Div => {
                                        if b == 0.0 {
                                            return Value::Undefined;
                                        }
                                        a / b
                                    }
                                    _ => unreachable!(),
                                };
                                Value::Float(x)
                            }
                            _ => Value::Undefined,
                        }
                    }
                    BinOp::And | BinOp::Or => unreachable!("handled above"),
                }
            }
        }
    }

    pub fn eval_bool(e: &Expr, target: &Ad, own: &Ad) -> bool {
        truthy(&eval(e, target, own))
    }

    pub fn eval_rank(e: &Expr, target: &Ad, own: &Ad) -> f64 {
        match eval(e, target, own) {
            Value::Bool(b) => {
                if b {
                    1.0
                } else {
                    0.0
                }
            }
            v => as_f64(&v).unwrap_or(0.0),
        }
    }

    fn cache_affinity(machine_ad: &Ad, job_ad: &Ad) -> f64 {
        let Value::Str(inputs) = job_ad.get(JOB_INPUT_CIDS_ATTR) else {
            return 0.0;
        };
        let Value::Str(cached) = machine_ad.get(MACHINE_CACHE_CIDS_ATTR) else {
            return 0.0;
        };
        if inputs.is_empty() || cached.is_empty() {
            return 0.0;
        }
        let cached: BTreeSet<&str> = cached.split(',').collect();
        let overlap = inputs.split(',').filter(|c| cached.contains(c)).count();
        CACHE_AFFINITY_BONUS * overlap as f64
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum JobState {
        Idle,
        Running,
        Completed,
    }

    #[derive(Debug)]
    pub struct BJob {
        pub id: u64,
        pub owner: String,
        pub requirements: Expr,
        pub rank: Expr,
        pub ad: Ad,
        pub serial_secs: f64,
        pub cu_work: f64,
        pub state: JobState,
        pub running_on: Option<String>,
        pub finish_at: Option<SimTime>,
        pub started_at: Option<SimTime>,
    }

    #[derive(Debug)]
    pub struct BMachine {
        pub name: String,
        pub ad: Ad,
        pub slots_total: u32,
        pub slots_free: u32,
        pub draining: bool,
    }

    impl BMachine {
        pub fn busy_slots(&self) -> u32 {
            self.slots_total - self.slots_free
        }
        pub fn accepting(&self) -> bool {
            !self.draining && self.slots_free > 0
        }
    }

    /// The old machine ad, mirroring `Machine::new`.
    pub fn machine_ad(name: &str, compute_units: f64, memory_mb: i64, slots: u32) -> Ad {
        Ad::new()
            .with("Machine", Value::Str(name.to_string()))
            .with("ComputeUnits", Value::Float(compute_units))
            .with("Memory", Value::Int(memory_mb))
            .with("Cpus", Value::Int(slots as i64))
            .with("Arch", Value::Str("X86_64".to_string()))
            .with("OpSys", Value::Str("LINUX".to_string()))
    }

    /// The pre-rewrite pool: scan-everything negotiate and settle.
    #[derive(Debug, Default)]
    pub struct Pool {
        pub jobs: BTreeMap<u64, BJob>,
        pub machines: BTreeMap<String, BMachine>,
        next_job_id: u64,
        usage: BTreeMap<String, f64>,
    }

    impl Pool {
        pub fn new() -> Self {
            Pool {
                next_job_id: 1,
                ..Pool::default()
            }
        }

        pub fn add_machine(&mut self, name: &str, cu: f64, mem: i64, slots: u32) {
            assert!(
                self.machines
                    .insert(
                        name.to_string(),
                        BMachine {
                            name: name.to_string(),
                            ad: machine_ad(name, cu, mem, slots),
                            slots_total: slots,
                            slots_free: slots,
                            draining: false,
                        },
                    )
                    .is_none(),
                "duplicate machine"
            );
        }

        pub fn submit(
            &mut self,
            owner: &str,
            serial_secs: f64,
            cu_work: f64,
            requirements: Expr,
            rank: Expr,
            mut ad: Ad,
        ) -> u64 {
            let id = self.next_job_id;
            self.next_job_id += 1;
            ad.set("Owner", Value::Str(owner.to_string()));
            self.jobs.insert(
                id,
                BJob {
                    id,
                    owner: owner.to_string(),
                    requirements,
                    rank,
                    ad,
                    serial_secs,
                    cu_work,
                    state: JobState::Idle,
                    running_on: None,
                    finish_at: None,
                    started_at: None,
                },
            );
            id
        }

        pub fn remove_machine(&mut self, name: &str, now: SimTime) -> Vec<u64> {
            if self.machines.remove(name).is_none() {
                return Vec::new();
            }
            let mut evicted = Vec::new();
            for job in self.jobs.values_mut() {
                if job.state == JobState::Running && job.running_on.as_deref() == Some(name) {
                    job.state = JobState::Idle;
                    job.running_on = None;
                    job.finish_at = None;
                    if let Some(started) = job.started_at.take() {
                        *self.usage.entry(job.owner.clone()).or_insert(0.0) +=
                            now.since(started).as_secs_f64();
                    }
                    evicted.push(job.id);
                }
            }
            evicted
        }

        pub fn drain_machine(&mut self, name: &str) {
            if let Some(m) = self.machines.get_mut(name) {
                m.draining = true;
                if m.busy_slots() == 0 {
                    self.machines.remove(name);
                }
            }
        }

        pub fn negotiate(&mut self, now: SimTime) -> Vec<(u64, String, SimTime)> {
            let mut matches = Vec::new();
            let mut users: Vec<String> = self
                .jobs
                .values()
                .filter(|j| j.state == JobState::Idle)
                .map(|j| j.owner.clone())
                .collect();
            users.sort();
            users.dedup();
            users.sort_by(|a, b| {
                let ua = self.usage.get(a).copied().unwrap_or(0.0);
                let ub = self.usage.get(b).copied().unwrap_or(0.0);
                ua.partial_cmp(&ub).unwrap().then_with(|| a.cmp(b))
            });
            for user in users {
                let job_ids: Vec<u64> = self
                    .jobs
                    .values()
                    .filter(|j| j.state == JobState::Idle && j.owner == user)
                    .map(|j| j.id)
                    .collect();
                for id in job_ids {
                    let job = &self.jobs[&id];
                    let mut best: Option<(f64, String)> = None;
                    for m in self.machines.values().filter(|m| m.accepting()) {
                        if !eval_bool(&job.requirements, &m.ad, &job.ad) {
                            continue;
                        }
                        let score =
                            eval_rank(&job.rank, &m.ad, &job.ad) + cache_affinity(&m.ad, &job.ad);
                        let better = match &best {
                            None => true,
                            Some((s, name)) => score > *s || (score == *s && m.name < *name),
                        };
                        if better {
                            best = Some((score, m.name.clone()));
                        }
                    }
                    let Some((_, name)) = best else { continue };
                    let machine = self.machines.get_mut(&name).expect("chosen above");
                    machine.slots_free -= 1;
                    let capacity = match machine.ad.get("ComputeUnits") {
                        Value::Float(f) => f,
                        Value::Int(i) => i as f64,
                        _ => 1.0,
                    };
                    let job = self.jobs.get_mut(&id).expect("exists");
                    let duration =
                        SimDuration::from_secs_f64(job.serial_secs + job.cu_work / capacity);
                    job.state = JobState::Running;
                    job.running_on = Some(name.clone());
                    job.started_at = Some(now);
                    job.finish_at = Some(now + duration);
                    matches.push((id, name, now + duration));
                }
            }
            matches
        }

        pub fn settle(&mut self, now: SimTime) -> Vec<u64> {
            let mut completed = Vec::new();
            for job in self.jobs.values_mut() {
                if job.state != JobState::Running {
                    continue;
                }
                let Some(finish) = job.finish_at else {
                    continue;
                };
                if finish > now {
                    continue;
                }
                job.state = JobState::Completed;
                completed.push(job.id);
                if let Some(started) = job.started_at {
                    *self.usage.entry(job.owner.clone()).or_insert(0.0) +=
                        finish.since(started).as_secs_f64();
                }
                if let Some(name) = job.running_on.clone() {
                    if let Some(m) = self.machines.get_mut(&name) {
                        m.slots_free += 1;
                    }
                }
            }
            let drained: Vec<String> = self
                .machines
                .values()
                .filter(|m| m.draining && m.busy_slots() == 0)
                .map(|m| m.name.clone())
                .collect();
            for name in drained {
                self.machines.remove(&name);
            }
            completed
        }

        pub fn next_completion_at(&self) -> Option<SimTime> {
            self.jobs
                .values()
                .filter(|j| j.state == JobState::Running)
                .filter_map(|j| j.finish_at)
                .min()
        }

        pub fn running_count(&self) -> usize {
            self.jobs
                .values()
                .filter(|j| j.state == JobState::Running)
                .count()
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic workload description, shared by both matchmakers
// ---------------------------------------------------------------------------

const CU_MENU: [f64; 4] = [1.0, 2.2, 4.0, 8.0];
const MEM_MENU: [i64; 4] = [613, 1700, 4000, 7500];
const CID_MENU: [&str; 5] = ["cid-aa", "cid-bb", "cid-cc", "cid-dd", "cid-ee"];

fn machine_spec(i: usize) -> (String, f64, i64, u32) {
    (
        format!("w{i:04}"),
        CU_MENU[i % 4],
        MEM_MENU[(i / 4) % 4],
        1 + (i % 2) as u32,
    )
}

fn job_spec(i: usize, owners: usize) -> (String, f64, f64) {
    (
        format!("user{:02}", i % owners),
        30.0 + (i * 7 % 90) as f64,
        (i * 13 % 200) as f64,
    )
}

/// Comma-joined input/cache cid list for index `i` (empty every third).
#[allow(clippy::manual_is_multiple_of)] // is_multiple_of needs rustc 1.87; MSRV is 1.75
fn cid_list(i: usize) -> String {
    if i % 3 == 0 {
        return String::new();
    }
    let n = 1 + i % 3;
    (0..n)
        .map(|k| CID_MENU[(i + k * 2) % CID_MENU.len()])
        .collect::<Vec<_>>()
        .join(",")
}

const REQ_MEM: &str = "Memory >= 1024 && Arch == \"X86_64\" && OpSys == \"LINUX\"";
const REQ_BIG: &str = "Memory >= 4000 && Arch == \"X86_64\" && OpSys == \"LINUX\"";

/// Alternate job requirements between the small- and large-memory tiers.
#[allow(clippy::manual_is_multiple_of)] // is_multiple_of needs rustc 1.87; MSRV is 1.75
fn req_spec(i: usize) -> &'static str {
    if i % 2 == 0 {
        REQ_MEM
    } else {
        REQ_BIG
    }
}

/// Extra standard attributes a real Condor machine ad carries (both
/// matchmakers get the identical ad; the old one pays a string-keyed
/// `BTreeMap` lookup per reference, the new one a symbol binary-search).
const EXTRA_ATTRS: usize = 6;

fn extra_attr(k: usize, cu: f64, mem: i64, slots: u32) -> (&'static str, cumulus_htc::Value) {
    use cumulus_htc::Value;
    match k {
        0 => ("Disk", Value::Int(mem * 10)),
        1 => ("KFlops", Value::Int((cu * 1.0e6) as i64)),
        2 => ("Mips", Value::Int((cu * 1000.0) as i64)),
        3 => ("TotalCpus", Value::Int(slots as i64)),
        4 => ("FileSystemDomain", Value::Str("cumulus".to_string())),
        _ => ("UidDomain", Value::Str("cumulus".to_string())),
    }
}

/// FNV-1a over the event stream: the determinism checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn push_u64(&mut self, x: u64) {
        self.push_bytes(&x.to_le_bytes());
    }
    fn push_match(&mut self, job: u64, machine: &str, finish: SimTime) {
        self.push_u64(job);
        self.push_bytes(machine.as_bytes());
        self.push_u64(finish.as_micros());
    }
}

/// Scale knobs per workload; `--quick` shrinks everything.
struct Scale {
    samples: u32,
    churn_machines: usize,
    churn_rounds: usize,
    churn_batch: usize,
    users_jobs: usize,
    users_machines: usize,
    episode_jobs: usize,
    episode_machines: usize,
    evict_machines: usize,
    evict_rounds: usize,
    evict_batch: usize,
}

impl Scale {
    fn new(quick: bool) -> Self {
        if quick {
            Scale {
                samples: 2,
                churn_machines: 120,
                churn_rounds: 4,
                churn_batch: 100,
                users_jobs: 400,
                users_machines: 30,
                episode_jobs: 800,
                episode_machines: 24,
                evict_machines: 30,
                evict_rounds: 6,
                evict_batch: 20,
            }
        } else {
            Scale {
                samples: 5,
                churn_machines: 400,
                churn_rounds: 14,
                churn_batch: 200,
                users_jobs: 1600,
                users_machines: 60,
                episode_jobs: 6000,
                episode_machines: 24,
                evict_machines: 100,
                evict_rounds: 20,
                evict_batch: 60,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Workloads. Each exists in a `new_*` and an `old_*` variant with identical
// logic and returns (checksum, events). The duplication is deliberate: the
// point of the baseline is to stay byte-for-byte the old code.
// ---------------------------------------------------------------------------

/// many_machines_churn: a wide pool where every negotiation cycle scans
/// hundreds of candidate machines per job under a two-term requirements
/// expression. The ≥5× negotiation-throughput gate lives here.
mod many_machines_churn {
    use super::*;

    fn full_machine(name: &str, cu: f64, mem: i64, slots: u32) -> Machine {
        let mut m = Machine::new(name, cu, mem, slots);
        for k in 0..EXTRA_ATTRS {
            let (key, v) = extra_attr(k, cu, mem, slots);
            m.ad.set(key, v);
        }
        m
    }

    pub fn new_pool(s: &Scale) -> (u64, u64) {
        let mut pool = CondorPool::new();
        for i in 0..s.churn_machines {
            let (name, cu, mem, slots) = machine_spec(i);
            pool.add_machine(full_machine(&name, cu, mem, slots))
                .unwrap();
        }
        let mut sum = Fnv::new();
        let mut events = 0u64;
        let mut now = SimTime::ZERO;
        for round in 0..s.churn_rounds {
            for i in 0..s.churn_batch {
                let idx = round * s.churn_batch + i;
                let (owner, serial, cu_work) = job_spec(idx, 6);
                let job = Job::new(
                    &owner,
                    WorkSpec {
                        serial_secs: serial,
                        cu_work,
                    },
                )
                .try_requirements(req_spec(idx))
                .expect("static expression");
                pool.submit(job, now);
            }
            for m in pool.negotiate(now) {
                sum.push_match(m.job.0, &m.machine.0, m.finish_at);
                events += 1;
            }
            let victim = machine_spec(round * 17 % s.churn_machines).0;
            if let Ok(evicted) = pool.remove_machine(&victim, now) {
                for id in evicted {
                    sum.push_u64(id.0);
                }
            }
            pool.add_machine(full_machine(&format!("x{round:03}"), 4.0, 4000, 2))
                .unwrap();
            now += SimDuration::from_secs(45);
            for id in pool.settle(now) {
                sum.push_u64(id.0);
                events += 1;
            }
        }
        sum.push_u64(pool.idle_count() as u64);
        sum.push_u64(pool.running_count() as u64);
        (sum.0, events)
    }

    fn old_full_machine(pool: &mut baseline::Pool, name: &str, cu: f64, mem: i64, slots: u32) {
        pool.add_machine(name, cu, mem, slots);
        let ad = &mut pool.machines.get_mut(name).unwrap().ad;
        for k in 0..EXTRA_ATTRS {
            let (key, v) = extra_attr(k, cu, mem, slots);
            ad.set(key, v);
        }
    }

    pub fn old_pool(s: &Scale) -> (u64, u64) {
        use cumulus_htc::Expr;
        let mut pool = baseline::Pool::new();
        for i in 0..s.churn_machines {
            let (name, cu, mem, slots) = machine_spec(i);
            old_full_machine(&mut pool, &name, cu, mem, slots);
        }
        let mut sum = Fnv::new();
        let mut events = 0u64;
        let mut now = SimTime::ZERO;
        for round in 0..s.churn_rounds {
            for i in 0..s.churn_batch {
                let idx = round * s.churn_batch + i;
                let (owner, serial, cu_work) = job_spec(idx, 6);
                pool.submit(
                    &owner,
                    serial,
                    cu_work,
                    Expr::parse(req_spec(idx)).expect("static expression"),
                    Expr::parse("ComputeUnits").expect("static expression"),
                    baseline::Ad::new(),
                );
            }
            for (job, machine, finish) in pool.negotiate(now) {
                sum.push_match(job, &machine, finish);
                events += 1;
            }
            let victim = machine_spec(round * 17 % s.churn_machines).0;
            for id in pool.remove_machine(&victim, now) {
                sum.push_u64(id);
            }
            old_full_machine(&mut pool, &format!("x{round:03}"), 4.0, 4000, 2);
            now += SimDuration::from_secs(45);
            for id in pool.settle(now) {
                sum.push_u64(id);
                events += 1;
            }
        }
        let idle = pool
            .jobs
            .values()
            .filter(|j| j.state == baseline::JobState::Idle)
            .count();
        sum.push_u64(idle as u64);
        sum.push_u64(pool.running_count() as u64);
        (sum.0, events)
    }
}

/// A drain-the-queue episode shared by the many_users and long_episode
/// workloads: submit everything up front, then alternate negotiate /
/// advance-to-next-completion / settle until the queue empties. The old
/// pool pays a full job-table scan (completed jobs included) on every one
/// of the thousands of cycles.
mod episode {
    use super::*;

    pub fn new_pool(jobs: usize, owners: usize, machines: usize, req: &str) -> (u64, u64) {
        let mut pool = CondorPool::new();
        for i in 0..machines {
            let (name, cu, mem, slots) = machine_spec(i);
            pool.add_machine(Machine::new(&name, cu, mem, slots))
                .unwrap();
        }
        let now0 = SimTime::ZERO;
        for i in 0..jobs {
            let (owner, serial, cu_work) = job_spec(i, owners);
            let job = Job::new(
                &owner,
                WorkSpec {
                    serial_secs: serial,
                    cu_work,
                },
            )
            .try_requirements(req)
            .expect("static expression");
            pool.submit(job, now0);
        }
        let mut sum = Fnv::new();
        let mut events = 0u64;
        let mut now = now0;
        loop {
            for m in pool.negotiate(now) {
                sum.push_match(m.job.0, &m.machine.0, m.finish_at);
            }
            let Some(next) = pool.next_completion_at() else {
                break;
            };
            now = next;
            for id in pool.settle(now) {
                sum.push_u64(id.0);
                events += 1;
            }
        }
        sum.push_u64(pool.idle_count() as u64);
        sum.push_u64(now.as_micros());
        (sum.0, events)
    }

    pub fn old_pool(jobs: usize, owners: usize, machines: usize, req: &str) -> (u64, u64) {
        use cumulus_htc::Expr;
        let mut pool = baseline::Pool::new();
        for i in 0..machines {
            let (name, cu, mem, slots) = machine_spec(i);
            pool.add_machine(&name, cu, mem, slots);
        }
        let now0 = SimTime::ZERO;
        for i in 0..jobs {
            let (owner, serial, cu_work) = job_spec(i, owners);
            pool.submit(
                &owner,
                serial,
                cu_work,
                Expr::parse(req).expect("static expression"),
                Expr::parse("ComputeUnits").expect("static expression"),
                baseline::Ad::new(),
            );
        }
        let mut sum = Fnv::new();
        let mut events = 0u64;
        let mut now = now0;
        loop {
            for (job, machine, finish) in pool.negotiate(now) {
                sum.push_match(job, &machine, finish);
            }
            let Some(next) = pool.next_completion_at() else {
                break;
            };
            now = next;
            for id in pool.settle(now) {
                sum.push_u64(id);
                events += 1;
            }
        }
        let idle = pool
            .jobs
            .values()
            .filter(|j| j.state == baseline::JobState::Idle)
            .count();
        sum.push_u64(idle as u64);
        sum.push_u64(now.as_micros());
        (sum.0, events)
    }
}

/// churn_evictions: continuous machine membership churn — removals that
/// evict and requeue running jobs, drains, cache-affinity scoring from
/// advertised `CacheCids` — the autoscale controller's steady state.
mod churn_evictions {
    use super::*;
    use cumulus_htc::{JOB_INPUT_CIDS_ATTR, MACHINE_CACHE_CIDS_ATTR};

    pub fn new_pool(s: &Scale) -> (u64, u64) {
        use cumulus_htc::Value;
        let mut pool = CondorPool::new();
        for i in 0..s.evict_machines {
            let (name, cu, mem, slots) = machine_spec(i);
            let mut m = Machine::new(&name, cu, mem, slots);
            m.ad.set(MACHINE_CACHE_CIDS_ATTR, Value::Str(cid_list(i)));
            pool.add_machine(m).unwrap();
        }
        let mut sum = Fnv::new();
        let mut events = 0u64;
        let mut now = SimTime::ZERO;
        let mut added = 0usize;
        for round in 0..s.evict_rounds {
            for i in 0..s.evict_batch {
                let idx = round * s.evict_batch + i;
                let (owner, serial, cu_work) = job_spec(idx, 8);
                let job = Job::new(
                    &owner,
                    WorkSpec {
                        serial_secs: serial,
                        cu_work,
                    },
                )
                .attr(JOB_INPUT_CIDS_ATTR, Value::Str(cid_list(idx + 1)))
                .try_requirements("Memory >= 613")
                .expect("static expression");
                pool.submit(job, now);
            }
            for m in pool.negotiate(now) {
                sum.push_match(m.job.0, &m.machine.0, m.finish_at);
                events += 1;
            }
            for k in 0..2usize {
                let victim = machine_spec((round * 31 + k * 7) % s.evict_machines).0;
                if let Ok(evicted) = pool.remove_machine(&victim, now) {
                    for id in evicted {
                        sum.push_u64(id.0);
                        events += 1;
                    }
                }
            }
            for _ in 0..2 {
                let i = s.evict_machines + added;
                added += 1;
                let (_, cu, mem, slots) = machine_spec(i);
                let mut m = Machine::new(&format!("y{i:04}"), cu, mem, slots);
                m.ad.set(MACHINE_CACHE_CIDS_ATTR, Value::Str(cid_list(i)));
                pool.add_machine(m).unwrap();
            }
            let drain = format!("y{:04}", s.evict_machines + round % added.max(1));
            let _ = pool.drain_machine(&drain);
            now += SimDuration::from_secs(30);
            for id in pool.settle(now) {
                sum.push_u64(id.0);
                events += 1;
            }
        }
        sum.push_u64(pool.idle_count() as u64);
        sum.push_u64(pool.running_count() as u64);
        sum.push_u64(pool.total_evictions());
        (sum.0, events)
    }

    pub fn old_pool(s: &Scale) -> (u64, u64) {
        use cumulus_htc::classad::Value;
        use cumulus_htc::Expr;
        let mut pool = baseline::Pool::new();
        for i in 0..s.evict_machines {
            let (name, cu, mem, slots) = machine_spec(i);
            pool.add_machine(&name, cu, mem, slots);
            pool.machines
                .get_mut(&name)
                .unwrap()
                .ad
                .set(MACHINE_CACHE_CIDS_ATTR, Value::Str(cid_list(i)));
        }
        let mut sum = Fnv::new();
        let mut events = 0u64;
        let mut now = SimTime::ZERO;
        let mut added = 0usize;
        let mut evictions = 0u64;
        for round in 0..s.evict_rounds {
            for i in 0..s.evict_batch {
                let idx = round * s.evict_batch + i;
                let (owner, serial, cu_work) = job_spec(idx, 8);
                let mut ad = baseline::Ad::new();
                ad.set(JOB_INPUT_CIDS_ATTR, Value::Str(cid_list(idx + 1)));
                pool.submit(
                    &owner,
                    serial,
                    cu_work,
                    Expr::parse("Memory >= 613").expect("static expression"),
                    Expr::parse("ComputeUnits").expect("static expression"),
                    ad,
                );
            }
            for (job, machine, finish) in pool.negotiate(now) {
                sum.push_match(job, &machine, finish);
                events += 1;
            }
            for k in 0..2usize {
                let victim = machine_spec((round * 31 + k * 7) % s.evict_machines).0;
                for id in pool.remove_machine(&victim, now) {
                    sum.push_u64(id);
                    events += 1;
                    evictions += 1;
                }
            }
            for _ in 0..2 {
                let i = s.evict_machines + added;
                added += 1;
                let (_, cu, mem, slots) = machine_spec(i);
                let name = format!("y{i:04}");
                pool.add_machine(&name, cu, mem, slots);
                pool.machines
                    .get_mut(&name)
                    .unwrap()
                    .ad
                    .set(MACHINE_CACHE_CIDS_ATTR, Value::Str(cid_list(i)));
            }
            let drain = format!("y{:04}", s.evict_machines + round % added.max(1));
            pool.drain_machine(&drain);
            now += SimDuration::from_secs(30);
            for id in pool.settle(now) {
                sum.push_u64(id);
                events += 1;
            }
        }
        let idle = pool
            .jobs
            .values()
            .filter(|j| j.state == baseline::JobState::Idle)
            .count();
        sum.push_u64(idle as u64);
        sum.push_u64(pool.running_count() as u64);
        sum.push_u64(evictions);
        (sum.0, events)
    }
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Median wall-time (seconds) of `samples` timed runs of `f`, after one
/// warm-up call. Panics if repeated runs disagree (the determinism gate).
fn measure<T: PartialEq + std::fmt::Debug>(samples: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let reference = f();
    let mut times = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let start = Instant::now();
        let out = std::hint::black_box(f());
        times.push(start.elapsed().as_secs_f64());
        assert_eq!(
            out, reference,
            "nondeterministic workload result across repeated runs"
        );
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[times.len() / 2], reference)
}

struct WorkloadResult {
    name: &'static str,
    events: u64,
    old_secs: f64,
    new_secs: f64,
}

impl WorkloadResult {
    fn old_eps(&self) -> f64 {
        self.events as f64 / self.old_secs
    }
    fn new_eps(&self) -> f64 {
        self.events as f64 / self.new_secs
    }
    fn speedup(&self) -> f64 {
        self.old_secs / self.new_secs
    }
}

/// Run one workload on both matchmakers, assert identical (checksum,
/// events), report.
fn compare(
    name: &'static str,
    samples: u32,
    mut old_f: impl FnMut() -> (u64, u64),
    mut new_f: impl FnMut() -> (u64, u64),
) -> WorkloadResult {
    let (old_secs, old_out) = measure(samples, &mut old_f);
    let (new_secs, new_out) = measure(samples, &mut new_f);
    assert_eq!(
        old_out, new_out,
        "{name}: compiled matchmaker diverged from the scan-everything baseline"
    );
    let r = WorkloadResult {
        name,
        events: new_out.1,
        old_secs,
        new_secs,
    };
    println!(
        "{:<22} events {:>8}  old {:>9.0} ev/s  new {:>9.0} ev/s  speedup {:>6.2}x",
        r.name,
        r.events,
        r.old_eps(),
        r.new_eps(),
        r.speedup()
    );
    r
}

fn write_json(results: &[WorkloadResult], quick: bool) {
    let workloads = Json::Obj(
        results
            .iter()
            .map(|r| {
                (
                    r.name.to_string(),
                    Json::obj([
                        ("events", Json::Num(r.events as f64)),
                        ("old_events_per_sec", Json::Num(r.old_eps().round())),
                        ("new_events_per_sec", Json::Num(r.new_eps().round())),
                        (
                            "speedup_vs_baseline",
                            Json::Num((r.speedup() * 100.0).round() / 100.0),
                        ),
                    ]),
                )
            })
            .collect(),
    );
    let doc = Json::obj([
        ("bench", Json::str("matchmaker")),
        (
            "baseline",
            Json::str("pre-rewrite scan-everything pool + tree-walking ClassAds (in-bench copy)"),
        ),
        ("mode", Json::str(if quick { "quick" } else { "full" })),
        ("workloads", workloads),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_htc.json");
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_htc.json");
    eprintln!("wrote {path}");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let s = Scale::new(quick);

    println!("== matchmaker (old = scan-everything baseline, new = compiled/indexed) ==");

    let results = vec![
        compare(
            "many_machines_churn",
            s.samples,
            || many_machines_churn::old_pool(&s),
            || many_machines_churn::new_pool(&s),
        ),
        compare(
            "many_users",
            s.samples,
            || episode::old_pool(s.users_jobs, 40, s.users_machines, REQ_MEM),
            || episode::new_pool(s.users_jobs, 40, s.users_machines, REQ_MEM),
        ),
        compare(
            "long_episode",
            s.samples,
            || episode::old_pool(s.episode_jobs, 3, s.episode_machines, "true"),
            || episode::new_pool(s.episode_jobs, 3, s.episode_machines, "true"),
        ),
        compare(
            "churn_evictions",
            s.samples,
            || churn_evictions::old_pool(&s),
            || churn_evictions::new_pool(&s),
        ),
    ];

    // The tentpole's measurable claims, defined on the full-size run
    // (quick mode shrinks the workloads below where the indexes pay off).
    // Reported, never asserted — CI gates on the determinism panics
    // above, not on timing.
    if !quick {
        for r in &results {
            let target = match r.name {
                "many_machines_churn" => 5.0,
                "long_episode" => 10.0,
                _ => continue,
            };
            if r.speedup() < target {
                println!(
                    "WARNING: {} speedup {:.2}x below the {target}x target",
                    r.name,
                    r.speedup()
                );
            }
        }
    }

    write_json(&results, quick);
}

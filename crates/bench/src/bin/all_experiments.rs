//! Run every experiment and print the full report (the content of
//! EXPERIMENTS.md's measured columns).
fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    let replicas = cumulus_bench::positional_from_args(16);
    print!("{}", cumulus_bench::full_report_seeded(seed, replicas));
}

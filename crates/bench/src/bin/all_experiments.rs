//! Run every experiment and print the full report (the content of
//! EXPERIMENTS.md's measured columns).
fn main() {
    let replicas: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    print!("{}", cumulus_bench::full_report(replicas));
}

//! Deployment-time-by-image ablation (experiment E10).
fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    print!("{}", cumulus_bench::experiments::ami::run(seed));
}

//! Deployment-time-by-image ablation (experiment E10).
fn main() {
    print!("{}", cumulus_bench::experiments::ami::run(cumulus_bench::REPORT_SEED));
}

//! Regenerate the §V.A use-case numbers (experiment E1).
fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    print!("{}", cumulus_bench::experiments::usecase::run(seed));
}

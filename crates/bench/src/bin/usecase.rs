//! Regenerate the §V.A use-case numbers (experiment E1). An optional
//! positional replica count adds a Monte-Carlo stability summary over
//! derived seeds, fanned out over the replica runner (`--threads N`;
//! 0 = auto, 1 = serial — identical output either way).
fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    let threads = cumulus_bench::threads_from_args(0);
    let replicas = cumulus_bench::positional_from_args(0);
    print!("{}", cumulus_bench::experiments::usecase::run(seed));
    if replicas > 0 {
        println!();
        print!(
            "{}",
            cumulus_bench::experiments::usecase::run_replica_summary(seed, replicas, threads)
        );
    }
}

//! Regenerate the §V.A use-case numbers (experiment E1).
fn main() {
    print!("{}", cumulus_bench::experiments::usecase::run(cumulus_bench::REPORT_SEED));
}

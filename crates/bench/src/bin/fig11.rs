//! Regenerate Figure 11 (experiments E5 + E7).
fn main() {
    // Figure 11 is pure calibration — no synthetic data — so the seed is
    // parsed (for interface uniformity and flag validation) but unused.
    let _seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    print!("{}", cumulus_bench::experiments::fig11::run());
}

//! Regenerate Figure 11 (experiments E5 + E7).
fn main() {
    print!("{}", cumulus_bench::experiments::fig11::run());
}

//! Extension experiments (E9): stream sweep, fault sensitivity,
//! autoscaling, scaling-policy sweep.
fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    let replicas = cumulus_bench::positional_from_args(16);
    print!(
        "{}",
        cumulus_bench::experiments::extensions::run_stream_sweep()
    );
    println!();
    print!(
        "{}",
        cumulus_bench::experiments::extensions::run_fault_sensitivity(replicas)
    );
    println!();
    print!(
        "{}",
        cumulus_bench::experiments::extensions::run_autoscale(seed)
    );
    println!();
    print!(
        "{}",
        cumulus_bench::experiments::extensions::run_policy_sweep(seed)
    );
    println!();
    print!(
        "{}",
        cumulus_bench::experiments::extensions::run_nfs_contention()
    );
}

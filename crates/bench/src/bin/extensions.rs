//! Extension experiments (E9): stream sweep, fault sensitivity, autoscaling.
fn main() {
    let replicas: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    print!("{}", cumulus_bench::experiments::extensions::run_stream_sweep());
    println!();
    print!("{}", cumulus_bench::experiments::extensions::run_fault_sensitivity(replicas));
    println!();
    print!("{}", cumulus_bench::experiments::extensions::run_autoscale(cumulus_bench::REPORT_SEED));
    println!();
    print!("{}", cumulus_bench::experiments::extensions::run_nfs_contention());
}

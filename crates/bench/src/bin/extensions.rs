//! Extension experiments (E9): stream sweep, fault sensitivity,
//! autoscaling, scaling-policy sweep.
//!
//! The E9e policy sweep runs twice — serially and fanned out over the
//! replica runner (`--threads N`, default one per CPU) — asserts the two
//! reports are byte-identical, and records the wall-time comparison in
//! `BENCH_e9.json` at the repo root.

use std::time::Instant;

use cumulus_bench::experiments::extensions;
use cumulus_provision::json::Json;

fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    let replicas = cumulus_bench::positional_from_args(16);
    let threads = cumulus_bench::threads_from_args(0);

    print!("{}", extensions::run_stream_sweep());
    println!();
    print!("{}", extensions::run_fault_sensitivity(replicas));
    println!();
    print!("{}", extensions::run_autoscale(seed));
    println!();

    // E9e, timed: serial reference first, then the parallel sweep. The
    // renders must match byte for byte (determinism survives parallelism);
    // the timing delta is the point of the exercise.
    let t0 = Instant::now();
    let serial = extensions::run_policy_sweep_threads(seed, 1);
    let serial_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let parallel = extensions::run_policy_sweep_threads(seed, threads);
    let parallel_secs = t1.elapsed().as_secs_f64();
    assert_eq!(
        serial, parallel,
        "parallel policy sweep diverged from the serial render"
    );
    print!("{parallel}");
    println!();
    print!("{}", extensions::run_nfs_contention());

    // 2 traces x 3 policies per sweep.
    let episodes = 2 * extensions::SWEEP_POLICIES;
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let doc = Json::obj([
        ("bench", Json::str("e9_policy_sweep")),
        ("episodes", Json::Num(episodes as f64)),
        ("threads_requested", Json::Num(threads as f64)),
        ("machine_cpus", Json::Num(cpus as f64)),
        ("serial_secs", Json::Num((serial_secs * 1e4).round() / 1e4)),
        (
            "parallel_secs",
            Json::Num((parallel_secs * 1e4).round() / 1e4),
        ),
        (
            "wall_time_per_episode_secs",
            Json::Num((parallel_secs / episodes as f64 * 1e4).round() / 1e4),
        ),
        (
            "speedup_vs_serial",
            Json::Num((serial_secs / parallel_secs * 100.0).round() / 100.0),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e9.json");
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_e9.json");
    eprintln!("wrote {path}");
}

//! Telemetry kernel bench: hot-path observability throughput, new vs old.
//!
//! Every workload runs on **two** observability stacks:
//!
//! * the current `cumulus-simkit` plane: pre-registered [`MetricId`]
//!   handles indexing dense vectors, interned-[`Key`] typed
//!   [`Event`](cumulus_simkit::telemetry::Event) records, and the
//!   streaming `TraceLog` digest;
//! * [`baseline`], a faithful copy of the pre-telemetry code compiled
//!   into this binary: the string-keyed `Metrics` registry that allocates
//!   a `String` per `incr`/`set_gauge`/`record`, and the `TraceLog` whose
//!   digest materializes the whole rendered log before hashing.
//!
//! Beyond timing, the harness asserts semantic preservation: each
//! workload must produce the same (checksum, event-count) on both stacks
//! — metric reports byte-identical, trace digest values unchanged — and
//! the same result on repeated runs. A final determinism gate checks that
//! recording telemetry does not perturb the instrumented computation
//! (enabled-vs-disabled output equality) and that event digests are
//! stable. Those assertions panic on failure, which is what the CI
//! `bench-smoke` job gates on (timing is reported, never gated).
//!
//! Results land in `BENCH_telemetry.json` at the repo root.
//!
//! Usage: `cargo run --release -p cumulus-bench --bin telemetry [-- --quick]`

use std::time::Instant;

use cumulus_provision::json::Json;
use cumulus_simkit::metrics::{MetricId, Metrics};
use cumulus_simkit::telemetry::{Key, Payload, SpanKind, Telemetry};
use cumulus_simkit::time::{SimDuration, SimTime};
use cumulus_simkit::trace::TraceLog;

/// The pre-telemetry observability code, kept verbatim as the measured
/// baseline.
mod baseline {
    use std::collections::BTreeMap;
    use std::fmt;
    use std::sync::{Arc, Mutex};

    use cumulus_simkit::stats::Samples;
    use cumulus_simkit::time::{SimDuration, SimTime};

    #[derive(Debug, Default)]
    struct Inner {
        counters: BTreeMap<String, u64>,
        gauges: BTreeMap<String, f64>,
        samples: BTreeMap<String, Samples>,
    }

    /// The old string-keyed registry: `key.to_string()` on every write.
    #[derive(Debug, Clone, Default)]
    pub struct Metrics {
        inner: Arc<Mutex<Inner>>,
    }

    impl Metrics {
        pub fn new() -> Self {
            Metrics::default()
        }

        pub fn incr(&self, key: &str, n: u64) {
            let mut g = self.inner.lock().expect("metrics lock poisoned");
            *g.counters.entry(key.to_string()).or_insert(0) += n;
        }

        pub fn set_gauge(&self, key: &str, value: f64) {
            self.inner
                .lock()
                .expect("metrics lock poisoned")
                .gauges
                .insert(key.to_string(), value);
        }

        pub fn record(&self, key: &str, value: f64) {
            let mut g = self.inner.lock().expect("metrics lock poisoned");
            g.samples.entry(key.to_string()).or_default().record(value);
        }

        pub fn record_duration(&self, key: &str, d: SimDuration) {
            self.record(key, d.as_secs_f64());
        }

        pub fn report(&self) -> String {
            let g = self.inner.lock().expect("metrics lock poisoned");
            let mut out = String::new();
            for (k, v) in &g.counters {
                out.push_str(&format!("counter {k} = {v}\n"));
            }
            for (k, v) in &g.gauges {
                out.push_str(&format!("gauge   {k} = {v}\n"));
            }
            for (k, s) in &g.samples {
                out.push_str(&format!("sample  {k}: {}\n", s.summary()));
            }
            out
        }
    }

    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TraceRecord {
        pub at: SimTime,
        pub category: String,
        pub message: String,
    }

    impl fmt::Display for TraceRecord {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "[{}] {:<10} {}", self.at, self.category, self.message)
        }
    }

    /// The old vector-backed trace log with the render-then-hash digest.
    #[derive(Debug, Clone, Default)]
    pub struct TraceLog {
        records: Vec<TraceRecord>,
        enabled: bool,
    }

    impl TraceLog {
        pub fn enabled() -> Self {
            TraceLog {
                records: Vec::new(),
                enabled: true,
            }
        }

        pub fn emit(&mut self, at: SimTime, category: &str, message: impl Into<String>) {
            if self.enabled {
                self.records.push(TraceRecord {
                    at,
                    category: category.to_string(),
                    message: message.into(),
                });
            }
        }

        pub fn render(&self) -> String {
            let mut out = String::new();
            for r in &self.records {
                out.push_str(&r.to_string());
                out.push('\n');
            }
            out
        }

        /// The old digest: FNV-1a seeded with the record count over the
        /// bytes of one big materialized `render()` string.
        pub fn digest(&self) -> u64 {
            const FNV_PRIME: u64 = 0x1000_0000_01b3;
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            h ^= self.records.len() as u64;
            h = h.wrapping_mul(FNV_PRIME);
            for b in self.render().bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
            h
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic workload descriptions, shared by both stacks
// ---------------------------------------------------------------------------

/// The realistic key set: every counter/gauge/sample key the simulator's
/// hot paths actually write.
const COUNTER_KEYS: [&str; 8] = [
    "transfer/tasks",
    "transfer/bytes_delivered",
    "store/cache_hits",
    "store/cache_misses",
    "nfs/bytes_staged",
    "nfs/stage_ops",
    "autoscale/ticks",
    "autoscale/scale_out",
];
const GAUGE_KEYS: [&str; 2] = ["autoscale/workers", "store/fleet_bytes"];
const SAMPLE_KEYS: [&str; 2] = ["staging/secs", "transfer/secs"];

/// FNV-1a over the event stream: the determinism checksum.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf29ce484222325)
    }
    fn push_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
    fn push_u64(&mut self, x: u64) {
        self.push_bytes(&x.to_le_bytes());
    }
}

/// Scale knobs per workload; `--quick` shrinks everything.
struct Scale {
    samples: u32,
    metric_rounds: usize,
    trace_records: usize,
    typed_events: usize,
}

impl Scale {
    fn new(quick: bool) -> Self {
        if quick {
            Scale {
                samples: 2,
                metric_rounds: 20_000,
                trace_records: 20_000,
                typed_events: 50_000,
            }
        } else {
            Scale {
                samples: 5,
                metric_rounds: 400_000,
                trace_records: 200_000,
                typed_events: 1_000_000,
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Workloads. Each exists in a `new_*` and an `old_*` variant with identical
// logic and returns (checksum, events). The duplication is deliberate: the
// point of the baseline is to stay byte-for-byte the old code.
// ---------------------------------------------------------------------------

/// metrics_hot: the registry write path as the simulator drives it — per
/// round one counter incr per hot key, a gauge update, and a duration
/// sample. The ≥2× record-throughput gate lives here. The checksum is
/// FNV over the final `report()` text, so the refactored registry must
/// render byte-identically to the old one.
mod metrics_hot {
    use super::*;

    pub fn events(s: &Scale) -> u64 {
        (s.metric_rounds * (COUNTER_KEYS.len() + GAUGE_KEYS.len() + SAMPLE_KEYS.len())) as u64
    }

    pub fn new_stack(s: &Scale) -> (u64, u64) {
        let m = Metrics::new();
        let counters: Vec<MetricId> = COUNTER_KEYS.iter().map(|k| MetricId::register(k)).collect();
        let gauges: Vec<MetricId> = GAUGE_KEYS.iter().map(|k| MetricId::register(k)).collect();
        let samples: Vec<MetricId> = SAMPLE_KEYS.iter().map(|k| MetricId::register(k)).collect();
        for round in 0..s.metric_rounds {
            for (i, &id) in counters.iter().enumerate() {
                m.incr_id(id, 1 + ((round + i) % 7) as u64);
            }
            for (i, &id) in gauges.iter().enumerate() {
                m.set_gauge_id(id, ((round * 3 + i) % 100) as f64);
            }
            for (i, &id) in samples.iter().enumerate() {
                m.record_duration_id(id, SimDuration::from_micros(((round + i) % 9000) as u64));
            }
        }
        let mut sum = Fnv::new();
        sum.push_bytes(m.report().as_bytes());
        (sum.0, events(s))
    }

    pub fn old_stack(s: &Scale) -> (u64, u64) {
        let m = baseline::Metrics::new();
        for round in 0..s.metric_rounds {
            for (i, key) in COUNTER_KEYS.iter().enumerate() {
                m.incr(key, 1 + ((round + i) % 7) as u64);
            }
            for (i, key) in GAUGE_KEYS.iter().enumerate() {
                m.set_gauge(key, ((round * 3 + i) % 100) as f64);
            }
            for (i, key) in SAMPLE_KEYS.iter().enumerate() {
                m.record_duration(key, SimDuration::from_micros(((round + i) % 9000) as u64));
            }
        }
        let mut sum = Fnv::new();
        sum.push_bytes(m.report().as_bytes());
        (sum.0, events(s))
    }
}

/// trace_digest: emit a realistic trace then digest it. The checksum IS
/// the digest value, so the streaming implementation must reproduce the
/// old render-then-hash value bit for bit (the satellite assertion).
mod trace_digest {
    use super::*;

    const CATEGORIES: [&str; 4] = ["cloud", "chef", "transfer", "htc"];

    fn at(i: usize) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(i as u64 * 250_000)
    }

    fn message(i: usize) -> String {
        format!("instance i-{:05x} event #{i} bytes={}", i * 7, i * 4096)
    }

    pub fn new_stack(s: &Scale) -> (u64, u64) {
        let mut log = TraceLog::enabled();
        for i in 0..s.trace_records {
            log.emit(at(i), CATEGORIES[i % CATEGORIES.len()], message(i));
        }
        (log.digest(), s.trace_records as u64)
    }

    pub fn old_stack(s: &Scale) -> (u64, u64) {
        let mut log = baseline::TraceLog::enabled();
        for i in 0..s.trace_records {
            log.emit(at(i), CATEGORIES[i % CATEGORIES.len()], message(i));
        }
        (log.digest(), s.trace_records as u64)
    }
}

/// typed_events: the event-bus hot path. The old stack pre-formats a
/// `String` message per observation (the only structured record it has);
/// the new stack records a typed payload under an interned key with no
/// formatting at all. Checksums derive from the observation stream itself
/// plus the resulting log length — identical by construction, so the
/// harness equality gate still applies.
mod typed_events {
    use super::*;

    pub fn new_stack(s: &Scale) -> (u64, u64) {
        let tel = Telemetry::enabled();
        let started = Key::intern("transfer.started");
        let done = Key::intern("transfer.done");
        let mut sum = Fnv::new();
        for i in 0..s.typed_events / 2 {
            let bytes = (i % 1000) as u64 * 4096;
            let at = SimTime::ZERO + SimDuration::from_micros(i as u64 * 1000);
            tel.record(at, "transfer", started, Payload::Bytes(bytes));
            tel.record(
                at + SimDuration::from_secs(2),
                "transfer",
                done,
                Payload::Pair(i as u64, bytes),
            );
            sum.push_u64(i as u64);
            sum.push_u64(bytes);
        }
        sum.push_u64(tel.len() as u64);
        (sum.0, s.typed_events as u64)
    }

    pub fn old_stack(s: &Scale) -> (u64, u64) {
        let mut log = baseline::TraceLog::enabled();
        let mut sum = Fnv::new();
        for i in 0..s.typed_events / 2 {
            let bytes = (i % 1000) as u64 * 4096;
            let at = SimTime::ZERO + SimDuration::from_micros(i as u64 * 1000);
            log.emit(
                at,
                "transfer",
                format!("task t-{i:06} started bytes={bytes}"),
            );
            log.emit(
                at + SimDuration::from_secs(2),
                "transfer",
                format!("task t-{i:06} done bytes={bytes}"),
            );
            sum.push_u64(i as u64);
            sum.push_u64(bytes);
        }
        sum.push_u64(log.render().lines().count() as u64);
        (sum.0, s.typed_events as u64)
    }
}

/// The disabled-handle cost: the same emission loop as `typed_events`
/// against a disabled handle. Returns (checksum over the *computation*,
/// events attempted); the log must stay empty.
fn disabled_emission(s: &Scale) -> (u64, u64) {
    let tel = Telemetry::disabled();
    let started = Key::intern("transfer.started");
    let done = Key::intern("transfer.done");
    let mut sum = Fnv::new();
    for i in 0..s.typed_events / 2 {
        let bytes = (i % 1000) as u64 * 4096;
        let at = SimTime::ZERO + SimDuration::from_micros(i as u64 * 1000);
        tel.record(at, "transfer", started, Payload::Bytes(bytes));
        tel.record(
            at + SimDuration::from_secs(2),
            "transfer",
            done,
            Payload::Pair(i as u64, bytes),
        );
        sum.push_u64(i as u64);
        sum.push_u64(bytes);
    }
    assert!(tel.is_empty(), "disabled handle must record nothing");
    sum.push_u64(0);
    (sum.0, s.typed_events as u64)
}

// ---------------------------------------------------------------------------
// Determinism gates (asserted, never timed)
// ---------------------------------------------------------------------------

/// A small instrumented computation: a span per "job" with a phase and a
/// typed byte count. Returns a checksum over the *computed* values only —
/// recording must not perturb it.
fn instrumented_computation(tel: &Telemetry) -> u64 {
    let mut sum = Fnv::new();
    for j in 0..500u64 {
        let submit = SimTime::ZERO + SimDuration::from_secs(j);
        let start = submit + SimDuration::from_secs(7 + j % 13);
        let finish = start + SimDuration::from_secs(90 + j % 41);
        tel.span_open(submit, "htc", "job.submitted", SpanKind::Job, j);
        tel.span_phase(
            start,
            "htc",
            "job.matched",
            SpanKind::Job,
            j,
            SimDuration::ZERO,
        );
        tel.span_close(finish, "htc", "job.completed", SpanKind::Job, j);
        sum.push_u64(finish.since(submit).as_micros());
    }
    sum.0
}

/// The CI determinism gate: enabled-vs-disabled output equality and
/// digest stability across repeated runs.
fn determinism_gate() {
    let on = Telemetry::enabled();
    let off = Telemetry::disabled();
    assert_eq!(
        instrumented_computation(&on),
        instrumented_computation(&off),
        "recording telemetry must not change the instrumented computation"
    );
    assert_eq!(off.len(), 0);
    assert_eq!(on.len(), 1500, "3 events per job span");

    let again = Telemetry::enabled();
    instrumented_computation(&again);
    assert_eq!(
        on.digest(),
        again.digest(),
        "telemetry digest must be stable across identical runs"
    );
    assert_eq!(on.render(), again.render());
    println!("determinism gate: enabled==disabled output, digest stable");
}

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

/// Median wall-time (seconds) of `samples` timed runs of `f`, after one
/// warm-up call. Panics if repeated runs disagree (the determinism gate).
fn measure<T: PartialEq + std::fmt::Debug>(samples: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let reference = f();
    let mut times = Vec::with_capacity(samples as usize);
    for _ in 0..samples {
        let start = Instant::now();
        let out = std::hint::black_box(f());
        times.push(start.elapsed().as_secs_f64());
        assert_eq!(
            out, reference,
            "nondeterministic workload result across repeated runs"
        );
    }
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (times[times.len() / 2], reference)
}

struct WorkloadResult {
    name: &'static str,
    events: u64,
    old_secs: f64,
    new_secs: f64,
}

impl WorkloadResult {
    fn old_eps(&self) -> f64 {
        self.events as f64 / self.old_secs
    }
    fn new_eps(&self) -> f64 {
        self.events as f64 / self.new_secs
    }
    fn speedup(&self) -> f64 {
        self.old_secs / self.new_secs
    }
}

/// Run one workload on both stacks, assert identical (checksum, events),
/// report.
fn compare(
    name: &'static str,
    samples: u32,
    mut old_f: impl FnMut() -> (u64, u64),
    mut new_f: impl FnMut() -> (u64, u64),
    checksums_match: bool,
) -> WorkloadResult {
    let (old_secs, old_out) = measure(samples, &mut old_f);
    let (new_secs, new_out) = measure(samples, &mut new_f);
    if checksums_match {
        assert_eq!(
            old_out, new_out,
            "{name}: telemetry plane diverged from the string-keyed baseline"
        );
    } else {
        assert_eq!(old_out.1, new_out.1, "{name}: event counts diverged");
    }
    let r = WorkloadResult {
        name,
        events: new_out.1,
        old_secs,
        new_secs,
    };
    println!(
        "{:<22} events {:>8}  old {:>9.0} ev/s  new {:>9.0} ev/s  speedup {:>6.2}x",
        r.name,
        r.events,
        r.old_eps(),
        r.new_eps(),
        r.speedup()
    );
    r
}

fn write_json(results: &[WorkloadResult], disabled_ns_per_op: f64, quick: bool) {
    let workloads = Json::Obj(
        results
            .iter()
            .map(|r| {
                (
                    r.name.to_string(),
                    Json::obj([
                        ("events", Json::Num(r.events as f64)),
                        ("old_events_per_sec", Json::Num(r.old_eps().round())),
                        ("new_events_per_sec", Json::Num(r.new_eps().round())),
                        (
                            "speedup_vs_baseline",
                            Json::Num((r.speedup() * 100.0).round() / 100.0),
                        ),
                    ]),
                )
            })
            .collect(),
    );
    let doc = Json::obj([
        ("bench", Json::str("telemetry")),
        (
            "baseline",
            Json::str(
                "pre-telemetry string-keyed Metrics + render-then-hash TraceLog (in-bench copy)",
            ),
        ),
        ("mode", Json::str(if quick { "quick" } else { "full" })),
        ("workloads", workloads),
        (
            "disabled_handle_ns_per_event",
            Json::Num((disabled_ns_per_op * 100.0).round() / 100.0),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json");
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_telemetry.json");
    eprintln!("wrote {path}");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let s = Scale::new(quick);

    println!("== telemetry (old = string-keyed baseline, new = handles + typed events) ==");

    determinism_gate();

    let results = vec![
        compare(
            "metrics_hot",
            s.samples,
            || metrics_hot::old_stack(&s),
            || metrics_hot::new_stack(&s),
            true,
        ),
        compare(
            "trace_digest",
            s.samples,
            || trace_digest::old_stack(&s),
            || trace_digest::new_stack(&s),
            true,
        ),
        compare(
            "typed_events",
            s.samples,
            || typed_events::old_stack(&s),
            || typed_events::new_stack(&s),
            true,
        ),
    ];

    // The disabled-handle cost: same loop, recording off.
    let (disabled_secs, _) = measure(s.samples, || disabled_emission(&s));
    let disabled_ns = disabled_secs / s.typed_events as f64 * 1e9;
    println!(
        "{:<22} events {:>8}  disabled handle {:>6.2} ns/event",
        "disabled_overhead", s.typed_events, disabled_ns
    );

    // The tentpole's measurable claims, defined on the full-size run
    // (quick mode shrinks the workloads below steady state). Reported,
    // never asserted — CI gates on the determinism panics above, not on
    // timing.
    if !quick {
        for r in &results {
            let target = match r.name {
                "metrics_hot" | "typed_events" => 2.0,
                _ => continue,
            };
            if r.speedup() < target {
                println!(
                    "WARNING: {} speedup {:.2}x below the {target}x target",
                    r.name,
                    r.speedup()
                );
            }
        }
    }

    write_json(&results, disabled_ns, quick);
}

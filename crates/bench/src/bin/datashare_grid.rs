//! E13 — data-sharing options for the Galaxy pool.
//!
//! Runs the sharing-backend × reuse-factor grid twice — serially and
//! fanned out over the replica runner (`--threads N`) — asserts the two
//! reports are byte-identical, prints the table, and records the grid in
//! `BENCH_e13.json` at the repo root. The JSON contains only
//! seed-deterministic quantities (never wall times), so it too is
//! byte-identical at any thread count.
//!
//! `--quick` trims the grid to the CI smoke shape (the two cells the
//! ≥ 2× staging-reduction claim compares); the determinism assertion and
//! the claim check still run.

//!
//! `--report` appends the telemetry episode report: every job's walltime
//! decomposed into queue/repair/staging/compute from its assembled
//! lifecycle span, digest-gated to be identical at any `--threads`.

use cumulus_bench::experiments::datashare;

fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    let threads = cumulus_bench::threads_from_args(0);
    let quick = std::env::args().any(|a| a == "--quick");
    let report = cumulus_bench::report_from_args();

    let serial = datashare::run_grid(seed, 1, quick);
    let parallel = datashare::run_grid(seed, threads, quick);
    let table = datashare::render(&parallel);
    assert_eq!(
        datashare::render(&serial),
        table,
        "parallel datashare grid diverged from the serial render"
    );
    let doc = datashare::json_doc(seed, &parallel);
    assert_eq!(
        datashare::json_doc(seed, &serial).render(),
        doc.render(),
        "parallel datashare grid JSON diverged from the serial one"
    );
    let reduction = datashare::staging_reduction(&parallel);
    assert!(
        reduction >= datashare::MIN_STAGING_REDUCTION,
        "warm caches must cut staging at least {}x on high reuse, got {reduction:.2}",
        datashare::MIN_STAGING_REDUCTION
    );

    print!("{table}");

    if report {
        let serial = datashare::run_grid_instrumented(seed, 1, quick);
        let parallel = datashare::run_grid_instrumented(seed, threads, quick);
        let episode = datashare::episode_report(&parallel);
        assert_eq!(
            datashare::episode_report(&serial),
            episode,
            "parallel episode report (telemetry digest included) diverged from serial"
        );
        print!("\n{episode}");
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e13.json");
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_e13.json");
    eprintln!("wrote {path}");
}

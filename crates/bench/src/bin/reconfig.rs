//! Measure runtime reconfiguration latency (experiment E6). `--threads N`
//! sizes the parallel battery pool (0 = auto, 1 = serial; identical
//! output either way).
fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    let threads = cumulus_bench::threads_from_args(0);
    print!(
        "{}",
        cumulus_bench::experiments::reconfig::run_threads(seed, threads)
    );
}

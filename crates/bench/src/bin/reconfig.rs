//! Measure runtime reconfiguration latency (experiment E6).
fn main() {
    print!("{}", cumulus_bench::experiments::reconfig::run(cumulus_bench::REPORT_SEED));
}

//! Measure runtime reconfiguration latency (experiment E6).
fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    print!("{}", cumulus_bench::experiments::reconfig::run(seed));
}

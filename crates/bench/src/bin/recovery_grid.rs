//! E14 — workflow recovery policies on a spot-heavy pool.
//!
//! Runs the disruption-rate × recovery-policy grid twice — serially and
//! fanned out over the replica runner (`--threads N`) — asserts the two
//! reports are byte-identical, prints the table, and records the grid in
//! `BENCH_e14.json` at the repo root. The JSON contains only
//! seed-deterministic quantities (never wall times), so it too is
//! byte-identical at any thread count.
//!
//! `--quick` trims the grid to the CI smoke shape (the three cells at the
//! claim rate); the determinism assertion and the claim checks still run:
//! no-recovery fails where retry+resume completes, and blind retry
//! re-stages at least the claimed multiple of resume's repeat bytes.

use cumulus_bench::experiments::recovery;

fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    let threads = cumulus_bench::threads_from_args(0);
    let quick = std::env::args().any(|a| a == "--quick");

    let serial = recovery::run_grid(seed, 1, quick);
    let parallel = recovery::run_grid(seed, threads, quick);
    let table = recovery::render(&parallel);
    assert_eq!(
        recovery::render(&serial),
        table,
        "parallel recovery grid diverged from the serial render"
    );
    let doc = recovery::json_doc(seed, &parallel);
    assert_eq!(
        recovery::json_doc(seed, &serial).render(),
        doc.render(),
        "parallel recovery grid JSON diverged from the serial one"
    );

    let none = parallel
        .iter()
        .find(|r| r.rate_per_hour == recovery::CLAIM_RATE && r.policy == recovery::Policy::None)
        .expect("the grid contains the claim rate");
    let resume = parallel
        .iter()
        .find(|r| {
            r.rate_per_hour == recovery::CLAIM_RATE && r.policy == recovery::Policy::RetryResume
        })
        .expect("the grid contains the claim rate");
    assert!(
        !none.report.completed && resume.report.completed,
        "at {}/h the unprotected run must fail while retry+resume completes",
        recovery::CLAIM_RATE
    );
    let reduction = recovery::restage_reduction(&parallel);
    assert!(
        reduction >= recovery::MIN_RESTAGE_REDUCTION,
        "resume must re-stage at least {}x fewer repeat bytes than blind retry, got {reduction:.2}",
        recovery::MIN_RESTAGE_REDUCTION
    );

    print!("{table}");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e14.json");
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_e14.json");
    eprintln!("wrote {path}");
}

//! E15 — federated site selection over a WAN.
//!
//! Runs the placement-policy × WAN-bandwidth × site-count × data-scenario
//! grid twice — serially and fanned out over the replica runner
//! (`--threads N`) — asserts the two reports are byte-identical, prints
//! the table, and records the grid in `BENCH_e15.json` at the repo root.
//! The JSON contains only seed-deterministic quantities (never wall
//! times), so it too is byte-identical at any thread count.
//!
//! `--quick` trims the grid to the CI smoke shape (the claim cells:
//! 3 sites, 50 Mbit/s WAN, cost-greedy vs data-gravity under both data
//! scenarios); the determinism assertion and the claim checks still run.
//!
//! `--report` appends the WAN decomposition: per cell, staged bytes
//! split into intra-site rungs vs cross-site WAN pulls.

use cumulus_bench::experiments::federation;

fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    let threads = cumulus_bench::threads_from_args(0);
    let quick = std::env::args().any(|a| a == "--quick");
    let report = cumulus_bench::report_from_args();

    let serial = federation::run_grid(seed, 1, quick);
    let parallel = federation::run_grid(seed, threads, quick);
    let table = federation::render(&parallel);
    assert_eq!(
        federation::render(&serial),
        table,
        "parallel federation grid diverged from the serial render"
    );
    let doc = federation::json_doc(seed, &parallel);
    assert_eq!(
        federation::json_doc(seed, &serial).render(),
        doc.render(),
        "parallel federation grid JSON diverged from the serial one"
    );
    federation::assert_claims(&parallel);

    print!("{table}");

    if report {
        println!("\nE15 staging decomposition — intra-site vs cross-site bytes");
        for r in &parallel {
            println!(
                "{} / {} sites / {:.0} Mbit/s / {}: intra {:.0} MB, cross {:.0} MB \
                 ({} crossings, ${:.4} egress)",
                r.spec.scenario.label(),
                r.spec.sites,
                r.spec.wan_mbps,
                r.spec.policy.label(),
                r.report.bytes_intra as f64 / 1e6,
                r.report.bytes_cross as f64 / 1e6,
                r.report.crossings,
                r.report.egress_usd,
            );
        }
    }

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e15.json");
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_e15.json");
    eprintln!("wrote {path}");
}

//! E10 — spot-fleet economics under preemption.
//!
//! Runs the spot-fraction × preemption-rate grid twice — serially and
//! fanned out over the replica runner (`--threads N`) — asserts the two
//! reports are byte-identical, prints the table, and records the grid in
//! `BENCH_e10.json` at the repo root. The JSON contains only
//! seed-deterministic quantities (never wall times), so it too is
//! byte-identical at any thread count.
//!
//! `--quick` trims the grid to the CI smoke shape (baseline + all-spot
//! column); the determinism assertion and the domination check still run.

use cumulus_bench::experiments::spot;

fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    let threads = cumulus_bench::threads_from_args(0);
    let quick = std::env::args().any(|a| a == "--quick");

    let serial = spot::run_grid(seed, 1, quick);
    let parallel = spot::run_grid(seed, threads, quick);
    let table = spot::render(&parallel);
    assert_eq!(
        spot::render(&serial),
        table,
        "parallel spot grid diverged from the serial render"
    );
    let doc = spot::json_doc(seed, &parallel);
    assert_eq!(
        spot::json_doc(seed, &serial).render(),
        doc.render(),
        "parallel spot grid JSON diverged from the serial one"
    );

    print!("{table}");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e10.json");
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_e10.json");
    eprintln!("wrote {path}");
}

//! E12 — predictive vs reactive autoscaling on diurnal traces.
//!
//! Runs the period × peak-rate grid twice — serially and fanned out over
//! the replica runner (`--threads N`) — asserts the two reports are
//! byte-identical, prints the table, and records the grid in
//! `BENCH_e12.json` at the repo root. The JSON contains only
//! seed-deterministic quantities (never wall times), so it too is
//! byte-identical at any thread count.
//!
//! `--quick` trims the grid to the E9e-trace cell (the CI smoke shape);
//! the determinism assertion and the domination check still run.

use cumulus_bench::experiments::predictive;

fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    let threads = cumulus_bench::threads_from_args(0);
    let quick = std::env::args().any(|a| a == "--quick");

    let serial = predictive::run_grid(seed, 1, quick);
    let parallel = predictive::run_grid(seed, threads, quick);
    let table = predictive::render(&parallel);
    assert_eq!(
        predictive::render(&serial),
        table,
        "parallel predictive grid diverged from the serial render"
    );
    let doc = predictive::json_doc(seed, &parallel);
    assert_eq!(
        predictive::json_doc(seed, &serial).render(),
        doc.render(),
        "parallel predictive grid JSON diverged from the serial one"
    );

    print!("{table}");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_e12.json");
    std::fs::write(path, doc.render() + "\n").expect("write BENCH_e12.json");
    eprintln!("wrote {path}");
}

//! The §VI GP-vs-CloudMan ablation (experiment E8).
fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    print!("{}", cumulus_bench::experiments::cloudman::run(seed));
}

//! The §VI GP-vs-CloudMan ablation (experiment E8).
fn main() {
    print!("{}", cumulus_bench::experiments::cloudman::run(cumulus_bench::REPORT_SEED));
}

//! Regenerate Figure 10 (experiments E2–E4). `--threads N` sizes the
//! parallel sweep pool (0 = auto, 1 = serial; identical output either way).
fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    let threads = cumulus_bench::threads_from_args(0);
    print!(
        "{}",
        cumulus_bench::experiments::fig10::run_threads(seed, threads)
    );
}

//! Regenerate Figure 10 (experiments E2–E4).
fn main() {
    print!("{}", cumulus_bench::experiments::fig10::run(cumulus_bench::REPORT_SEED));
}

//! Regenerate Figure 10 (experiments E2–E4).
fn main() {
    let seed = cumulus_bench::seed_from_args(cumulus_bench::REPORT_SEED);
    print!("{}", cumulus_bench::experiments::fig10::run(seed));
}

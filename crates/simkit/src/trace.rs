//! Structured event tracing — the string-trace adapter over the
//! [`telemetry`](crate::telemetry) plane.
//!
//! Components append `(time, category, message)` records to a [`TraceLog`].
//! Traces serve two purposes: they are the primary debugging aid for
//! simulation models, and — because the kernel is deterministic — two runs
//! with identical seeds must produce byte-identical traces, which the test
//! suite checks.
//!
//! Since the telemetry refactor a `TraceLog` stores nothing of its own: it
//! wraps a [`Telemetry`] handle and emits each record as a
//! [`Payload::Text`] event (the category becomes the event [`Key`]).
//! Renders and digests are byte-identical to the pre-telemetry log, and a
//! trace can share its underlying handle with the rest of an episode via
//! [`TraceLog::with_telemetry`].

use std::fmt;
use std::fmt::Write as _;

use crate::telemetry::event::{Fnv, FNV_PRIME};
use crate::telemetry::{Key, Payload, Telemetry};
use crate::time::SimTime;

/// One trace record — now a *view* materialized from `Text` telemetry
/// events rather than the stored representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened (simulated time).
    pub at: SimTime,
    /// Component category, e.g. `"cloud"`, `"chef"`, `"transfer"`.
    pub category: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:<10} {}", self.at, self.category, self.message)
    }
}

/// An append-only log of trace records, backed by a telemetry handle.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    tel: Telemetry,
}

impl TraceLog {
    /// A log that records everything (onto its own telemetry handle).
    pub fn enabled() -> Self {
        TraceLog {
            tel: Telemetry::enabled(),
        }
    }

    /// A log that discards everything (zero overhead beyond the branch).
    pub fn disabled() -> Self {
        TraceLog::default()
    }

    /// A log that appends onto an existing telemetry handle, so trace
    /// lines land in the same event stream as spans and typed events.
    pub fn with_telemetry(tel: &Telemetry) -> Self {
        TraceLog { tel: tel.clone() }
    }

    /// The underlying telemetry handle (clone to share).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Whether records are kept.
    pub fn is_enabled(&self) -> bool {
        self.tel.is_enabled()
    }

    /// Append a record (no-op when disabled).
    pub fn emit(&mut self, at: SimTime, category: &str, message: impl Into<String>) {
        if self.tel.is_enabled() {
            self.tel.record(
                at,
                "trace",
                Key::intern(category),
                Payload::Text(message.into().into_boxed_str()),
            );
        }
    }

    /// All records, in emission order. Only this log's `Text` events are
    /// materialized — typed events sharing the handle don't appear.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.tel
            .events()
            .into_iter()
            .filter_map(|e| match e.payload {
                Payload::Text(s) => Some(TraceRecord {
                    at: e.at,
                    category: e.key.name().to_string(),
                    message: s.into_string(),
                }),
                _ => None,
            })
            .collect()
    }

    /// Records from one category.
    pub fn by_category(&self, category: &str) -> Vec<TraceRecord> {
        self.records()
            .into_iter()
            .filter(|r| r.category == category)
            .collect()
    }

    /// True if any record's message contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.records().iter().any(|r| r.message.contains(needle))
    }

    /// Render the whole log as text, one record per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in self.records() {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }

    /// A stable digest of the log (FNV-1a over the rendered text, seeded
    /// with the record count), used for cheap determinism comparisons.
    ///
    /// The count seed matters: a message that embeds a newline can render
    /// to the same text as two separate records, and two logs that differ
    /// only in how they split events must not share a digest.
    ///
    /// The record bytes stream through the hash state directly — the log
    /// is never materialized as one big string — but the digest value is
    /// unchanged from the render-then-hash implementation.
    pub fn digest(&self) -> u64 {
        let records = self.records();
        let mut h = Fnv::new();
        h.0 ^= records.len() as u64;
        h.0 = h.0.wrapping_mul(FNV_PRIME);
        for r in &records {
            let _ = write!(h, "{r}");
            h.u8(b'\n');
        }
        h.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn enabled_log_records() {
        let mut log = TraceLog::enabled();
        log.emit(SimTime::ZERO, "cloud", "instance i-1 pending");
        log.emit(
            SimTime::ZERO + SimDuration::from_secs(30),
            "cloud",
            "instance i-1 running",
        );
        assert_eq!(log.records().len(), 2);
        assert!(log.contains("i-1 running"));
        assert_eq!(log.by_category("cloud").len(), 2);
        assert_eq!(log.by_category("chef").len(), 0);
    }

    #[test]
    fn disabled_log_discards() {
        let mut log = TraceLog::disabled();
        log.emit(SimTime::ZERO, "x", "y");
        assert!(log.records().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn render_and_digest_are_stable() {
        let mut a = TraceLog::enabled();
        let mut b = TraceLog::enabled();
        for log in [&mut a, &mut b] {
            log.emit(SimTime::from_micros(1_000_000), "chef", "converge start");
            log.emit(SimTime::from_micros(2_000_000), "chef", "converge done");
        }
        assert_eq!(a.render(), b.render());
        assert_eq!(a.digest(), b.digest());
        b.emit(SimTime::from_micros(3_000_000), "chef", "extra");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_matches_render_then_hash() {
        // The streaming digest must equal the historical implementation:
        // FNV-1a seeded with the record count, then the render() bytes.
        let mut log = TraceLog::enabled();
        log.emit(SimTime::from_micros(1_000_000), "chef", "converge start");
        log.emit(SimTime::from_micros(2_500_000), "net", "link up");
        let mut h: u64 = crate::telemetry::event::FNV_OFFSET;
        h ^= log.records().len() as u64;
        h = h.wrapping_mul(FNV_PRIME);
        for b in log.render().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        assert_eq!(log.digest(), h);
    }

    #[test]
    fn digest_distinguishes_record_splits_with_equal_render() {
        // One record whose message embeds a newline plus a forged record
        // line renders identically to two genuine records — the digest
        // must still tell them apart.
        let forged = TraceRecord {
            at: SimTime::ZERO,
            category: "cat".to_string(),
            message: "y".to_string(),
        }
        .to_string();
        let mut a = TraceLog::enabled();
        a.emit(SimTime::ZERO, "cat", format!("x\n{forged}"));
        let mut b = TraceLog::enabled();
        b.emit(SimTime::ZERO, "cat", "x");
        b.emit(SimTime::ZERO, "cat", "y");
        assert_eq!(a.render(), b.render(), "the premise: renders collide");
        assert_ne!(a.digest(), b.digest(), "the digest must not");
    }

    #[test]
    fn shares_a_telemetry_handle() {
        let tel = Telemetry::enabled();
        let mut log = TraceLog::with_telemetry(&tel);
        log.emit(SimTime::ZERO, "cloud", "boot");
        tel.record(
            SimTime::ZERO,
            "cloud",
            Key::intern("trace.test.typed"),
            Payload::Count(1),
        );
        assert_eq!(tel.len(), 2, "trace lines land in the shared stream");
        assert_eq!(log.records().len(), 1, "but only Text events are records");
    }

    #[test]
    fn display_format() {
        let r = TraceRecord {
            at: SimTime::from_micros(1_500_000),
            category: "net".to_string(),
            message: "link up".to_string(),
        };
        assert_eq!(r.to_string(), "[00:00:01.500] net        link up");
    }
}

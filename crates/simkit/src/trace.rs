//! Structured event tracing.
//!
//! Components append `(time, category, message)` records to a [`TraceLog`].
//! Traces serve two purposes: they are the primary debugging aid for
//! simulation models, and — because the kernel is deterministic — two runs
//! with identical seeds must produce byte-identical traces, which the test
//! suite checks.

use std::fmt;

use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// When the event happened (simulated time).
    pub at: SimTime,
    /// Component category, e.g. `"cloud"`, `"chef"`, `"transfer"`.
    pub category: String,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {:<10} {}", self.at, self.category, self.message)
    }
}

/// An append-only log of trace records.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    records: Vec<TraceRecord>,
    enabled: bool,
}

impl TraceLog {
    /// A log that records everything.
    pub fn enabled() -> Self {
        TraceLog {
            records: Vec::new(),
            enabled: true,
        }
    }

    /// A log that discards everything (zero overhead beyond the branch).
    pub fn disabled() -> Self {
        TraceLog::default()
    }

    /// Whether records are kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append a record (no-op when disabled).
    pub fn emit(&mut self, at: SimTime, category: &str, message: impl Into<String>) {
        if self.enabled {
            self.records.push(TraceRecord {
                at,
                category: category.to_string(),
                message: message.into(),
            });
        }
    }

    /// All records, in emission order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Records from one category.
    pub fn by_category<'a>(&'a self, category: &'a str) -> impl Iterator<Item = &'a TraceRecord> {
        self.records.iter().filter(move |r| r.category == category)
    }

    /// True if any record's message contains `needle`.
    pub fn contains(&self, needle: &str) -> bool {
        self.records.iter().any(|r| r.message.contains(needle))
    }

    /// Render the whole log as text, one record per line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }

    /// A stable digest of the log (FNV-1a over the rendered text, seeded
    /// with the record count), used for cheap determinism comparisons.
    ///
    /// The count seed matters: a message that embeds a newline can render
    /// to the same text as two separate records, and two logs that differ
    /// only in how they split events must not share a digest.
    pub fn digest(&self) -> u64 {
        const FNV_PRIME: u64 = 0x1000_0000_01b3;
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        h ^= self.records.len() as u64;
        h = h.wrapping_mul(FNV_PRIME);
        for b in self.render().bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn enabled_log_records() {
        let mut log = TraceLog::enabled();
        log.emit(SimTime::ZERO, "cloud", "instance i-1 pending");
        log.emit(
            SimTime::ZERO + SimDuration::from_secs(30),
            "cloud",
            "instance i-1 running",
        );
        assert_eq!(log.records().len(), 2);
        assert!(log.contains("i-1 running"));
        assert_eq!(log.by_category("cloud").count(), 2);
        assert_eq!(log.by_category("chef").count(), 0);
    }

    #[test]
    fn disabled_log_discards() {
        let mut log = TraceLog::disabled();
        log.emit(SimTime::ZERO, "x", "y");
        assert!(log.records().is_empty());
        assert!(!log.is_enabled());
    }

    #[test]
    fn render_and_digest_are_stable() {
        let mut a = TraceLog::enabled();
        let mut b = TraceLog::enabled();
        for log in [&mut a, &mut b] {
            log.emit(SimTime::from_micros(1_000_000), "chef", "converge start");
            log.emit(SimTime::from_micros(2_000_000), "chef", "converge done");
        }
        assert_eq!(a.render(), b.render());
        assert_eq!(a.digest(), b.digest());
        b.emit(SimTime::from_micros(3_000_000), "chef", "extra");
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn digest_distinguishes_record_splits_with_equal_render() {
        // One record whose message embeds a newline plus a forged record
        // line renders identically to two genuine records — the digest
        // must still tell them apart.
        let forged = TraceRecord {
            at: SimTime::ZERO,
            category: "cat".to_string(),
            message: "y".to_string(),
        }
        .to_string();
        let mut a = TraceLog::enabled();
        a.emit(SimTime::ZERO, "cat", format!("x\n{forged}"));
        let mut b = TraceLog::enabled();
        b.emit(SimTime::ZERO, "cat", "x");
        b.emit(SimTime::ZERO, "cat", "y");
        assert_eq!(a.render(), b.render(), "the premise: renders collide");
        assert_ne!(a.digest(), b.digest(), "the digest must not");
    }

    #[test]
    fn display_format() {
        let r = TraceRecord {
            at: SimTime::from_micros(1_500_000),
            category: "net".to_string(),
            message: "link up".to_string(),
        };
        assert_eq!(r.to_string(), "[00:00:01.500] net        link up");
    }
}

//! The cross-layer disruption plane.
//!
//! Every layer of the stack can lose something: a network path goes down
//! for a while, a spot instance is preempted with a short notice, a disk
//! or host simply dies. Historically each crate modeled its own failure
//! mode ad hoc (`cumulus-net` had outage windows, `cumulus-cloud` a
//! hard-kill, `cumulus-htc` machine eviction); this module unifies them
//! behind one seam:
//!
//! * [`Disruption`] — a single scheduled failure event: *what* happens
//!   ([`DisruptionKind`]) and *when* (plus an optional recovery time for
//!   window-shaped disruptions).
//! * [`DisruptionPlan`] — a deterministic timeline of disruptions, built
//!   from explicit windows or drawn from a seeded Poisson process. Plans
//!   are plain data: they can be inspected, merged, and scheduled into a
//!   [`Sim`] without touching any component state.
//! * [`Disruptable`] — the trait a component implements to receive
//!   disruptions. The driver owns the plan, the component owns the
//!   reaction; the trait is the contract between them.
//!
//! `cumulus-net`'s `FaultPlan` is now a thin adapter over
//! [`DisruptionPlan`]; `cumulus-cloud` implements [`Disruptable`] for its
//! EC2 model (preemption with notice, hardware failure), and
//! `cumulus-htc` for its Condor pool (machine eviction with job requeue).

use crate::engine::Sim;
use crate::rng::RngStream;
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// Error returned when a window's end precedes its start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidWindow {
    /// The (claimed) start of the window.
    pub start: SimTime,
    /// The (claimed) end of the window — earlier than `start`.
    pub end: SimTime,
}

impl fmt::Display for InvalidWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid disruption window: end {} precedes start {}",
            self.end, self.start
        )
    }
}

impl std::error::Error for InvalidWindow {}

/// A half-open time window `[start, end)` during which something is down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// When the disruption begins.
    pub start: SimTime,
    /// When the disrupted thing recovers.
    pub end: SimTime,
}

impl Window {
    /// Construct a window, rejecting `end < start` with a typed error.
    pub fn new(start: SimTime, end: SimTime) -> Result<Self, InvalidWindow> {
        if end < start {
            return Err(InvalidWindow { start, end });
        }
        Ok(Window { start, end })
    }

    /// Whether `t` falls inside the window.
    pub fn contains(&self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// How long the window lasts.
    pub fn duration(&self) -> SimDuration {
        self.end.since(self.start)
    }
}

/// What kind of failure a disruption represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DisruptionKind {
    /// A temporary loss of availability (network path down, service
    /// unreachable). Window-shaped: recovery happens at a known time.
    Outage,
    /// A spot-style instance reclaim: the capacity is revoked after a
    /// short interruption notice and never comes back by itself.
    Preemption,
    /// A hard hardware failure: immediate, no notice, no recovery.
    HardwareFailure,
}

impl fmt::Display for DisruptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DisruptionKind::Outage => "outage",
            DisruptionKind::Preemption => "preemption",
            DisruptionKind::HardwareFailure => "hardware-failure",
        };
        f.write_str(s)
    }
}

/// One scheduled failure event on a [`DisruptionPlan`] timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Disruption {
    /// When the disruption strikes.
    pub at: SimTime,
    /// What kind of failure it is.
    pub kind: DisruptionKind,
    /// When the disrupted thing recovers, for window-shaped disruptions
    /// ([`DisruptionKind::Outage`]). `None` for terminal events
    /// (preemption, hardware failure).
    pub until: Option<SimTime>,
}

impl Disruption {
    /// An outage over `window`.
    pub fn outage(window: Window) -> Self {
        Disruption {
            at: window.start,
            kind: DisruptionKind::Outage,
            until: Some(window.end),
        }
    }

    /// A preemption striking at `at` (notice handling is up to the
    /// disrupted component).
    pub fn preemption(at: SimTime) -> Self {
        Disruption {
            at,
            kind: DisruptionKind::Preemption,
            until: None,
        }
    }

    /// A hardware failure striking at `at`.
    pub fn hardware_failure(at: SimTime) -> Self {
        Disruption {
            at,
            kind: DisruptionKind::HardwareFailure,
            until: None,
        }
    }

    /// The down-window for window-shaped disruptions.
    pub fn window(&self) -> Option<Window> {
        self.until.map(|end| Window {
            start: self.at,
            end,
        })
    }
}

/// A deterministic timeline of disruptions.
///
/// Outage windows are kept sorted, non-overlapping, and merged; point
/// events (preemptions, hardware failures) are kept sorted by strike
/// time. Both sides are plain data — a plan never mutates the world, it
/// only answers queries and (via [`DisruptionPlan::schedule_points_into`])
/// turns its events into simulator events.
#[derive(Debug, Clone, Default)]
pub struct DisruptionPlan {
    /// Sorted, merged outage windows.
    windows: Vec<Window>,
    /// Sorted point events (preemption / hardware failure).
    points: Vec<Disruption>,
}

impl DisruptionPlan {
    /// A plan with no disruptions at all.
    pub fn none() -> Self {
        DisruptionPlan::default()
    }

    /// Build an outage plan from explicit windows. Windows are sorted by
    /// start and merged when they overlap or touch, so the result is
    /// always sorted and non-overlapping.
    pub fn from_windows(mut windows: Vec<Window>) -> Self {
        windows.sort_by_key(|w| w.start);
        let mut merged: Vec<Window> = Vec::with_capacity(windows.len());
        for w in windows {
            match merged.last_mut() {
                Some(last) if w.start <= last.end => {
                    if w.end > last.end {
                        last.end = w.end;
                    }
                }
                _ => merged.push(w),
            }
        }
        DisruptionPlan {
            windows: merged,
            points: Vec::new(),
        }
    }

    /// Draw a random outage plan over `[0, horizon)`: outages arrive as a
    /// Poisson process with `mean_interval` between them, each lasting an
    /// exponential `mean_outage` duration.
    ///
    /// The draw order (one interval, then one duration, per outage) is
    /// the historical `cumulus-net` `FaultPlan::poisson` order, so plans
    /// seeded the same way reproduce the same timelines bit for bit.
    pub fn poisson_outages(
        rng: &mut RngStream,
        horizon: SimDuration,
        mean_interval: SimDuration,
        mean_outage: SimDuration,
    ) -> Self {
        let mut windows = Vec::new();
        let mut t = 0.0;
        let horizon_s = horizon.as_secs_f64();
        loop {
            t += rng.exponential(mean_interval.as_secs_f64());
            if t >= horizon_s {
                break;
            }
            let len = rng.exponential(mean_outage.as_secs_f64()).max(0.001);
            let start = SimTime::ZERO + SimDuration::from_secs_f64(t);
            let end = start + SimDuration::from_secs_f64(len);
            windows.push(Window { start, end });
            t += len;
        }
        DisruptionPlan::from_windows(windows)
    }

    /// Draw a random plan of point events over `[0, horizon)`: strikes of
    /// `kind` arrive as a Poisson process with `mean_interval` between
    /// them. Used for preemption and hardware-failure processes, where
    /// the event has no intrinsic recovery time.
    pub fn poisson_points(
        kind: DisruptionKind,
        rng: &mut RngStream,
        horizon: SimDuration,
        mean_interval: SimDuration,
    ) -> Self {
        let mut points = Vec::new();
        let mut t = 0.0;
        let horizon_s = horizon.as_secs_f64();
        loop {
            t += rng.exponential(mean_interval.as_secs_f64());
            if t >= horizon_s {
                break;
            }
            points.push(Disruption {
                at: SimTime::ZERO + SimDuration::from_secs_f64(t),
                kind,
                until: None,
            });
        }
        DisruptionPlan {
            windows: Vec::new(),
            points,
        }
    }

    /// Fold another plan into this one, keeping both invariants (windows
    /// merged, points sorted).
    pub fn merge(self, other: DisruptionPlan) -> Self {
        let mut windows = self.windows;
        windows.extend(other.windows);
        let mut merged = DisruptionPlan::from_windows(windows);
        let mut points = self.points;
        points.extend(other.points);
        points.sort_by_key(|d| d.at);
        merged.points = points;
        merged
    }

    /// True when the plan contains no windows and no point events.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty() && self.points.is_empty()
    }

    /// The outage windows, sorted by start and non-overlapping.
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// The point events (preemptions, hardware failures), sorted by
    /// strike time.
    pub fn points(&self) -> &[Disruption] {
        &self.points
    }

    /// Every disruption on the timeline — windows rendered as
    /// [`DisruptionKind::Outage`] events plus all point events — sorted
    /// by strike time.
    pub fn events(&self) -> Vec<Disruption> {
        let mut all: Vec<Disruption> = self
            .windows
            .iter()
            .map(|w| Disruption::outage(*w))
            .chain(self.points.iter().copied())
            .collect();
        all.sort_by_key(|d| d.at);
        all
    }

    /// Is an outage window covering `t`?
    pub fn is_down(&self, t: SimTime) -> bool {
        self.windows
            .binary_search_by(|w| {
                if w.contains(t) {
                    std::cmp::Ordering::Equal
                } else if w.end <= t {
                    std::cmp::Ordering::Less
                } else {
                    std::cmp::Ordering::Greater
                }
            })
            .is_ok()
    }

    /// The first outage window still relevant at or after `t`: the window
    /// covering `t`, or else the next one to start.
    pub fn next_window_at(&self, t: SimTime) -> Option<Window> {
        self.windows
            .iter()
            .find(|w| w.end > t)
            .copied()
            .filter(|w| w.start >= t || w.contains(t))
    }

    /// When the (outage-disrupted) thing is next usable at or after `t`:
    /// `t` itself when up, otherwise the end of the covering window.
    pub fn next_up_at(&self, t: SimTime) -> SimTime {
        match self.windows.iter().find(|w| w.contains(t)) {
            Some(w) => w.end,
            None => t,
        }
    }

    /// The first point event at or after `t`, if any.
    pub fn next_point_at(&self, t: SimTime) -> Option<Disruption> {
        self.points.iter().find(|d| d.at >= t).copied()
    }

    /// Schedule every point event into `sim`, invoking `deliver` when the
    /// event strikes. This is how a driver wires a plan to a
    /// [`Disruptable`] component: the closure typically picks a victim
    /// and calls [`Disruptable::disrupt`] on the world's component.
    ///
    /// Events already in the past (before `sim.now()`) are skipped rather
    /// than panicking, so a plan can be attached mid-run.
    pub fn schedule_points_into<W, F>(&self, sim: &mut Sim<W>, deliver: F)
    where
        W: 'static,
        F: Fn(&mut Sim<W>, Disruption) + Clone + 'static,
    {
        let now = sim.now();
        for d in self.points.iter().copied().filter(|d| d.at >= now) {
            let f = deliver.clone();
            sim.schedule_at(d.at, move |sim| f(sim, d));
        }
    }
}

/// The contract a component implements to receive disruptions.
///
/// The driver owns the [`DisruptionPlan`] and decides *what* gets hit
/// (the `Target` — an instance id, a machine name, a path); the component
/// decides *how* the hit plays out and reports it as an `Effect` (evicted
/// jobs, a preemption deadline, an error). Keeping the reaction behind a
/// trait means new failure kinds propagate to every layer through one
/// seam instead of per-crate ad-hoc APIs.
pub trait Disruptable {
    /// What a disruption strikes (instance id, machine name, …).
    type Target;
    /// What the component reports back (evicted jobs, deadline, error).
    type Effect;

    /// Apply a disruption of `kind` to `target` at `now`.
    fn disrupt(
        &mut self,
        now: SimTime,
        target: &Self::Target,
        kind: DisruptionKind,
    ) -> Self::Effect;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_micros(s * 1_000_000)
    }

    fn w(a: u64, b: u64) -> Window {
        Window::new(t(a), t(b)).unwrap()
    }

    #[test]
    fn inverted_window_is_a_typed_error() {
        let err = Window::new(t(10), t(5)).unwrap_err();
        assert_eq!(
            err,
            InvalidWindow {
                start: t(10),
                end: t(5)
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("precedes"), "got: {msg}");
        // Zero-length windows are fine (they contain nothing).
        let z = Window::new(t(7), t(7)).unwrap();
        assert!(!z.contains(t(7)));
    }

    #[test]
    fn windows_merge_and_answer_queries() {
        let plan = DisruptionPlan::from_windows(vec![w(20, 40), w(10, 30), w(50, 60)]);
        assert_eq!(plan.windows(), &[w(10, 40), w(50, 60)]);
        assert!(plan.is_down(t(15)));
        assert!(!plan.is_down(t(40)), "half-open");
        assert_eq!(plan.next_up_at(t(15)), t(40));
        assert_eq!(plan.next_up_at(t(45)), t(45));
        assert_eq!(plan.next_window_at(t(41)), Some(w(50, 60)));
        assert_eq!(plan.next_window_at(t(61)), None);
    }

    #[test]
    fn poisson_outages_match_legacy_fault_plan_draw_order() {
        // Same stream, same parameters → the disrupt plan must reproduce
        // the exact windows the old net::fault::FaultPlan::poisson drew,
        // because net's adapter delegates here.
        let mut rng = RngStream::derive(11, "faults");
        let plan = DisruptionPlan::poisson_outages(
            &mut rng,
            SimDuration::from_secs(3600),
            SimDuration::from_secs(300),
            SimDuration::from_secs(30),
        );
        assert!(!plan.windows().is_empty());
        for pair in plan.windows().windows(2) {
            assert!(pair[0].end <= pair[1].start, "sorted, non-overlapping");
        }
    }

    #[test]
    fn poisson_points_stay_inside_horizon_and_sorted() {
        let mut rng = RngStream::derive(7, "preemptions");
        let plan = DisruptionPlan::poisson_points(
            DisruptionKind::Preemption,
            &mut rng,
            SimDuration::from_secs(12 * 3600),
            SimDuration::from_secs(3600),
        );
        for d in plan.points() {
            assert_eq!(d.kind, DisruptionKind::Preemption);
            assert!(d.until.is_none());
            assert!(d.at < SimTime::ZERO + SimDuration::from_secs(12 * 3600 + 3600));
        }
        for pair in plan.points().windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
    }

    #[test]
    fn merge_combines_both_sides() {
        let outages = DisruptionPlan::from_windows(vec![w(10, 20)]);
        let mut rng = RngStream::derive(3, "hw");
        let hw = DisruptionPlan::poisson_points(
            DisruptionKind::HardwareFailure,
            &mut rng,
            SimDuration::from_secs(7200),
            SimDuration::from_secs(600),
        );
        let n_points = hw.points().len();
        let merged = outages.merge(hw);
        assert_eq!(merged.windows().len(), 1);
        assert_eq!(merged.points().len(), n_points);
        let events = merged.events();
        assert_eq!(events.len(), 1 + n_points);
        for pair in events.windows(2) {
            assert!(pair[0].at <= pair[1].at, "events sorted");
        }
    }

    #[test]
    fn points_schedule_into_a_sim() {
        struct World {
            hits: Vec<(SimTime, DisruptionKind)>,
        }
        let plan = DisruptionPlan {
            windows: Vec::new(),
            points: vec![
                Disruption::preemption(t(5)),
                Disruption::hardware_failure(t(9)),
            ],
        };
        let mut sim = Sim::new(World { hits: Vec::new() });
        plan.schedule_points_into(&mut sim, |sim, d| {
            let now = sim.now();
            sim.world.hits.push((now, d.kind));
        });
        sim.run_to_completion();
        assert_eq!(
            sim.world.hits,
            vec![
                (t(5), DisruptionKind::Preemption),
                (t(9), DisruptionKind::HardwareFailure)
            ]
        );
    }
}

//! A thread-safe metrics registry with pre-registered integer handles.
//!
//! Simulation components record counters, gauges, and timing samples.
//! Names are interned **once**, process-wide, into [`MetricId`] handles;
//! after registration the hot path is allocation-free. Counters — by far
//! the hottest class — live in a lock-free bank of atomic cells
//! (`CounterBank`): `incr_id` is a relaxed `fetch_add` with no lock at
//! all. Gauges and samples are dense vectors under the registry's mutex —
//! no `String` allocation, no tree walk, and no round-trip through the
//! global name table.
//!
//! The historical string-keyed API (`incr`, `set_gauge`, `record`, …)
//! survives as a thin adapter: it resolves the name to a [`MetricId`]
//! (borrow-first — a hit costs one hash probe and zero allocations, the
//! fix for the old per-call `key.to_string()`) and routes to the handle
//! path. Counter values, `keys()`, and `report()` renders are identical
//! to the pre-handle registry.
//!
//! The registry is `Sync` (std mutexes) so the parallel replica runner
//! can aggregate metrics from worker threads.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::stats::Samples;
use crate::telemetry::intern::NameTable;
use crate::time::SimDuration;

fn metric_table() -> &'static Mutex<NameTable> {
    static TABLE: OnceLock<Mutex<NameTable>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(NameTable::new()))
}

/// A pre-registered metric name.
///
/// Register once (typically in a constructor or a `OnceLock`), then
/// record through the `*_id` methods with no per-call allocation. The
/// numeric id depends on registration order and is never rendered —
/// user-visible output resolves [`MetricId::name`] and sorts by it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MetricId(u32);

impl MetricId {
    /// Register a metric name (idempotent; cheap after the first call).
    pub fn register(name: &str) -> MetricId {
        let mut tab = metric_table().lock().expect("metric table poisoned");
        MetricId(tab.intern(name))
    }

    /// Look up a name without registering it (reads of never-recorded
    /// metrics should not grow the table).
    pub fn find(name: &str) -> Option<MetricId> {
        let tab = metric_table().lock().expect("metric table poisoned");
        tab.find(name).map(MetricId)
    }

    /// The registered name.
    pub fn name(self) -> &'static str {
        let tab = metric_table().lock().expect("metric table poisoned");
        tab.name(self.0)
    }
}

impl std::fmt::Debug for MetricId {
    // Show the name, not the registration-order-dependent id.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "MetricId({:?})", self.name())
    }
}

/// Dense per-registry storage for gauges and samples, indexed by
/// [`MetricId`]. Slots are `None` until first touched so presence
/// semantics ("has any data") match the old map-based registry exactly.
/// Counters live outside the mutex in the [`CounterBank`].
#[derive(Debug, Default)]
struct Inner {
    gauges: Vec<Option<f64>>,
    samples: Vec<Option<Samples>>,
}

/// Size of bank 0 (and the granularity of growth); bank `b > 0` holds
/// `BANK0 << (b - 1)` cells, so 27 banks cover every possible `u32` id.
const BANK0: usize = 64;
const BANKS: usize = 27;

/// One counter slot. `present` distinguishes "never incremented" from
/// "incremented by zero" — the old map registry rendered the latter.
/// Orderings are relaxed: the simulator's event loop is single-threaded
/// per replica, and cross-thread reads only happen after joins.
#[derive(Debug, Default)]
struct CounterCell {
    present: AtomicBool,
    value: AtomicU64,
}

/// Lock-free growable counter store. Cells are grouped into
/// geometrically-sized banks allocated on first touch; a bank never moves
/// once published, so `incr_id` is a bank lookup plus a relaxed
/// `fetch_add` — no mutex on the hottest path in the simulator.
#[derive(Debug, Default)]
struct CounterBank {
    banks: [OnceLock<Box<[CounterCell]>>; BANKS],
}

/// Map a metric index to `(bank, offset)`; bank 0 covers `0..BANK0`,
/// bank `b` covers `BANK0 << (b - 1) .. BANK0 << b`.
#[inline]
fn locate(idx: usize) -> (usize, usize) {
    let n = idx / BANK0;
    if n == 0 {
        (0, idx)
    } else {
        let b = (usize::BITS - n.leading_zeros()) as usize;
        (b, idx - (BANK0 << (b - 1)))
    }
}

impl CounterBank {
    #[inline]
    fn cell(&self, idx: usize) -> &CounterCell {
        let (b, off) = locate(idx);
        let bank = self.banks[b].get_or_init(|| {
            let size = if b == 0 { BANK0 } else { BANK0 << (b - 1) };
            (0..size).map(|_| CounterCell::default()).collect()
        });
        &bank[off]
    }

    #[inline]
    fn read(&self, idx: usize) -> Option<u64> {
        let (b, off) = locate(idx);
        let cell = &self.banks[b].get()?[off];
        cell.present
            .load(Ordering::Relaxed)
            .then(|| cell.value.load(Ordering::Relaxed))
    }

    /// `(id, value)` of every touched counter, in id order.
    fn present(&self) -> Vec<(MetricId, u64)> {
        let mut out = Vec::new();
        for (b, bank) in self.banks.iter().enumerate() {
            let Some(bank) = bank.get() else { continue };
            let base = if b == 0 { 0 } else { BANK0 << (b - 1) };
            for (off, cell) in bank.iter().enumerate() {
                if cell.present.load(Ordering::Relaxed) {
                    out.push((
                        MetricId((base + off) as u32),
                        cell.value.load(Ordering::Relaxed),
                    ));
                }
            }
        }
        out
    }
}

#[inline]
fn slot<T: Default>(vec: &mut Vec<Option<T>>, id: MetricId) -> &mut Option<T> {
    let idx = id.0 as usize;
    if idx >= vec.len() {
        vec.resize_with(idx + 1, || None);
    }
    &mut vec[idx]
}

#[inline]
fn get<T: Copy>(vec: &[Option<T>], id: MetricId) -> Option<T> {
    vec.get(id.0 as usize).copied().flatten()
}

/// Cheap-to-clone handle to a shared metrics store.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    counters: Arc<CounterBank>,
    inner: Arc<Mutex<Inner>>,
}

impl Metrics {
    /// Create an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    // ----------------------------------------------------------------
    // Handle-based hot path
    // ----------------------------------------------------------------

    /// Increment a counter by `n` (allocation-free and lock-free).
    #[inline]
    pub fn incr_id(&self, id: MetricId, n: u64) {
        let cell = self.counters.cell(id.0 as usize);
        cell.present.store(true, Ordering::Relaxed);
        cell.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Read a counter (0 if absent).
    #[inline]
    pub fn counter_id(&self, id: MetricId) -> u64 {
        self.counters.read(id.0 as usize).unwrap_or(0)
    }

    /// Set a gauge to an absolute value (allocation-free).
    #[inline]
    pub fn set_gauge_id(&self, id: MetricId, value: f64) {
        let mut g = self.inner.lock().expect("metrics lock poisoned");
        *slot(&mut g.gauges, id) = Some(value);
    }

    /// Read a gauge, if it has been set.
    #[inline]
    pub fn gauge_id(&self, id: MetricId) -> Option<f64> {
        let g = self.inner.lock().expect("metrics lock poisoned");
        get(&g.gauges, id)
    }

    /// Record a numeric sample (allocation-free after the slot exists).
    #[inline]
    pub fn record_id(&self, id: MetricId, value: f64) {
        let mut g = self.inner.lock().expect("metrics lock poisoned");
        slot(&mut g.samples, id)
            .get_or_insert_with(Samples::default)
            .record(value);
    }

    /// Record a duration sample (stored in seconds).
    #[inline]
    pub fn record_duration_id(&self, id: MetricId, d: SimDuration) {
        self.record_id(id, d.as_secs_f64());
    }

    /// Snapshot of the samples recorded under `id`.
    pub fn samples_id(&self, id: MetricId) -> Samples {
        let g = self.inner.lock().expect("metrics lock poisoned");
        g.samples
            .get(id.0 as usize)
            .and_then(|s| s.clone())
            .unwrap_or_default()
    }

    // ----------------------------------------------------------------
    // String-keyed adapter (the historical API)
    // ----------------------------------------------------------------

    /// Increment a counter by `n`.
    pub fn incr(&self, key: &str, n: u64) {
        self.incr_id(MetricId::register(key), n);
    }

    /// Read a counter (0 if absent).
    pub fn counter(&self, key: &str) -> u64 {
        MetricId::find(key).map_or(0, |id| self.counter_id(id))
    }

    /// Set a gauge to an absolute value.
    pub fn set_gauge(&self, key: &str, value: f64) {
        self.set_gauge_id(MetricId::register(key), value);
    }

    /// Read a gauge, if it has been set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        MetricId::find(key).and_then(|id| self.gauge_id(id))
    }

    /// Record a numeric sample under `key`.
    pub fn record(&self, key: &str, value: f64) {
        self.record_id(MetricId::register(key), value);
    }

    /// Record a duration sample (stored in seconds).
    pub fn record_duration(&self, key: &str, d: SimDuration) {
        self.record(key, d.as_secs_f64());
    }

    /// Snapshot of the samples recorded under `key`.
    pub fn samples(&self, key: &str) -> Samples {
        MetricId::find(key).map_or_else(Samples::default, |id| self.samples_id(id))
    }

    // ----------------------------------------------------------------
    // Whole-registry views
    // ----------------------------------------------------------------

    /// All keys that currently have any data, sorted.
    pub fn keys(&self) -> Vec<String> {
        let g = self.inner.lock().expect("metrics lock poisoned");
        let mut keys: Vec<String> = self
            .counters
            .present()
            .into_iter()
            .map(|(id, _)| id.name().to_string())
            .chain(present(&g.gauges).map(|(id, _)| id.name().to_string()))
            .chain(
                g.samples
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_some())
                    .map(|(i, _)| MetricId(i as u32).name().to_string()),
            )
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// Merge all data from `other` into `self` (counters add, gauges take
    /// the other's value, samples concatenate).
    pub fn merge(&self, other: &Metrics) {
        // incr_id marks the cell present even for a zero add, so
        // zero-valued counters stay visible after a merge.
        for (id, v) in other.counters.present() {
            self.incr_id(id, v);
        }
        // Lock ordering: snapshot other's state first to avoid holding
        // two locks.
        let snapshot = {
            let g = other.inner.lock().expect("metrics lock poisoned");
            (g.gauges.clone(), g.samples.clone())
        };
        let mut g = self.inner.lock().expect("metrics lock poisoned");
        for (i, v) in snapshot.0.iter().enumerate() {
            if let Some(v) = v {
                *slot(&mut g.gauges, MetricId(i as u32)) = Some(*v);
            }
        }
        for (i, v) in snapshot.1.into_iter().enumerate() {
            if let Some(v) = v {
                slot(&mut g.samples, MetricId(i as u32))
                    .get_or_insert_with(Samples::default)
                    .merge(&v);
            }
        }
    }

    /// Multi-line human-readable dump (sorted by key, exactly the
    /// pre-handle registry's render).
    pub fn report(&self) -> String {
        let g = self.inner.lock().expect("metrics lock poisoned");
        let mut out = String::new();
        for (name, v) in sorted_by_name(self.counters.present().into_iter()) {
            out.push_str(&format!("counter {name} = {v}\n"));
        }
        for (name, v) in sorted_by_name(present(&g.gauges)) {
            out.push_str(&format!("gauge   {name} = {v}\n"));
        }
        let mut samples: Vec<(&'static str, &Samples)> = g
            .samples
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|s| (MetricId(i as u32).name(), s)))
            .collect();
        samples.sort_by_key(|(name, _)| *name);
        for (name, s) in samples {
            out.push_str(&format!("sample  {name}: {}\n", s.summary()));
        }
        out
    }
}

/// `(id, value)` of every populated slot.
fn present<T: Copy>(vec: &[Option<T>]) -> impl Iterator<Item = (MetricId, T)> + '_ {
    vec.iter()
        .enumerate()
        .filter_map(|(i, v)| v.map(|v| (MetricId(i as u32), v)))
}

/// Resolve names and sort — the rendering order of the old `BTreeMap`
/// registry (lexicographic by key).
fn sorted_by_name<T: Copy>(iter: impl Iterator<Item = (MetricId, T)>) -> Vec<(&'static str, T)> {
    let mut v: Vec<(&'static str, T)> = iter.map(|(id, x)| (id.name(), x)).collect();
    v.sort_by_key(|(name, _)| *name);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.incr("jobs", 1);
        m.incr("jobs", 2);
        assert_eq!(m.counter("jobs"), 3);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let m = Metrics::new();
        assert_eq!(m.gauge("load"), None);
        m.set_gauge("load", 0.5);
        m.set_gauge("load", 0.9);
        assert_eq!(m.gauge("load"), Some(0.9));
    }

    #[test]
    fn samples_aggregate() {
        let m = Metrics::new();
        m.record("latency", 1.0);
        m.record("latency", 3.0);
        m.record_duration("latency", SimDuration::from_secs(2));
        let s = m.samples("latency");
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(2.0));
    }

    #[test]
    fn clone_shares_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.incr("x", 5);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn merge_combines() {
        let a = Metrics::new();
        let b = Metrics::new();
        a.incr("c", 1);
        b.incr("c", 2);
        b.set_gauge("g", 7.0);
        b.record("s", 4.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(7.0));
        assert_eq!(a.samples("s").count(), 1);
    }

    #[test]
    fn keys_are_sorted_and_deduped() {
        let m = Metrics::new();
        m.incr("b", 1);
        m.set_gauge("a", 1.0);
        m.record("b", 1.0);
        assert_eq!(m.keys(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn concurrent_increments_are_safe() {
        let m = Metrics::new();
        thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.incr("n", 1);
                    }
                });
            }
        });
        assert_eq!(m.counter("n"), 8000);
    }

    #[test]
    fn report_mentions_everything() {
        let m = Metrics::new();
        m.incr("c", 1);
        m.set_gauge("g", 2.0);
        m.record("s", 3.0);
        let r = m.report();
        assert!(r.contains("counter c = 1"));
        assert!(r.contains("gauge   g = 2"));
        assert!(r.contains("sample  s: n=1"));
    }

    #[test]
    fn handles_and_strings_hit_the_same_slot() {
        let m = Metrics::new();
        let id = MetricId::register("metrics.test.handle");
        m.incr_id(id, 2);
        m.incr("metrics.test.handle", 3);
        assert_eq!(m.counter_id(id), 5);
        assert_eq!(m.counter("metrics.test.handle"), 5);
        assert_eq!(id, MetricId::register("metrics.test.handle"));
        assert_eq!(MetricId::find("metrics.test.handle"), Some(id));
        assert_eq!(id.name(), "metrics.test.handle");
    }

    #[test]
    fn reads_of_unknown_keys_do_not_grow_the_table() {
        let m = Metrics::new();
        assert_eq!(m.counter("metrics.test.never-written"), 0);
        assert_eq!(m.gauge("metrics.test.never-written"), None);
        assert_eq!(m.samples("metrics.test.never-written").count(), 0);
        assert_eq!(MetricId::find("metrics.test.never-written"), None);
    }

    #[test]
    fn zero_incr_makes_the_key_visible_like_the_old_registry() {
        let m = Metrics::new();
        m.incr("metrics.test.zero", 0);
        assert!(m.keys().contains(&"metrics.test.zero".to_string()));
        assert!(m.report().contains("counter metrics.test.zero = 0"));
    }

    #[test]
    fn report_is_sorted_by_name_within_sections() {
        let m = Metrics::new();
        // Register in reverse order: render must still sort by name.
        m.incr("metrics.test.z", 1);
        m.incr("metrics.test.a", 1);
        let r = m.report();
        let a = r.find("metrics.test.a").unwrap();
        let z = r.find("metrics.test.z").unwrap();
        assert!(a < z, "report:\n{r}");
    }
}

//! A thread-safe metrics registry.
//!
//! Simulation components record counters, gauges, and timing samples under
//! string keys. The registry is `Sync` (std mutexes) so the parallel
//! replica runner can aggregate metrics from worker threads.

use std::collections::BTreeMap;
use std::sync::Arc;

use std::sync::Mutex;

use crate::stats::Samples;
use crate::time::SimDuration;

#[derive(Debug, Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    samples: BTreeMap<String, Samples>,
}

/// Cheap-to-clone handle to a shared metrics store.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    inner: Arc<Mutex<Inner>>,
}

impl Metrics {
    /// Create an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Increment a counter by `n`.
    pub fn incr(&self, key: &str, n: u64) {
        let mut g = self.inner.lock().expect("metrics lock poisoned");
        *g.counters.entry(key.to_string()).or_insert(0) += n;
    }

    /// Read a counter (0 if absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.inner
            .lock()
            .expect("metrics lock poisoned")
            .counters
            .get(key)
            .copied()
            .unwrap_or(0)
    }

    /// Set a gauge to an absolute value.
    pub fn set_gauge(&self, key: &str, value: f64) {
        self.inner
            .lock()
            .expect("metrics lock poisoned")
            .gauges
            .insert(key.to_string(), value);
    }

    /// Read a gauge, if it has been set.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.inner
            .lock()
            .expect("metrics lock poisoned")
            .gauges
            .get(key)
            .copied()
    }

    /// Record a numeric sample under `key`.
    pub fn record(&self, key: &str, value: f64) {
        let mut g = self.inner.lock().expect("metrics lock poisoned");
        g.samples.entry(key.to_string()).or_default().record(value);
    }

    /// Record a duration sample (stored in seconds).
    pub fn record_duration(&self, key: &str, d: SimDuration) {
        self.record(key, d.as_secs_f64());
    }

    /// Snapshot of the samples recorded under `key`.
    pub fn samples(&self, key: &str) -> Samples {
        self.inner
            .lock()
            .expect("metrics lock poisoned")
            .samples
            .get(key)
            .cloned()
            .unwrap_or_default()
    }

    /// All keys that currently have any data, sorted.
    pub fn keys(&self) -> Vec<String> {
        let g = self.inner.lock().expect("metrics lock poisoned");
        let mut keys: Vec<String> = g
            .counters
            .keys()
            .chain(g.gauges.keys())
            .chain(g.samples.keys())
            .cloned()
            .collect();
        keys.sort();
        keys.dedup();
        keys
    }

    /// Merge all data from `other` into `self` (counters add, gauges take the
    /// other's value, samples concatenate).
    pub fn merge(&self, other: &Metrics) {
        // Lock ordering: clone other's state first to avoid holding two locks.
        let snapshot = {
            let g = other.inner.lock().expect("metrics lock poisoned");
            (g.counters.clone(), g.gauges.clone(), g.samples.clone())
        };
        let mut g = self.inner.lock().expect("metrics lock poisoned");
        for (k, v) in snapshot.0 {
            *g.counters.entry(k).or_insert(0) += v;
        }
        for (k, v) in snapshot.1 {
            g.gauges.insert(k, v);
        }
        for (k, v) in snapshot.2 {
            g.samples.entry(k).or_default().merge(&v);
        }
    }

    /// Multi-line human-readable dump (sorted by key).
    pub fn report(&self) -> String {
        let g = self.inner.lock().expect("metrics lock poisoned");
        let mut out = String::new();
        for (k, v) in &g.counters {
            out.push_str(&format!("counter {k} = {v}\n"));
        }
        for (k, v) in &g.gauges {
            out.push_str(&format!("gauge   {k} = {v}\n"));
        }
        for (k, s) in &g.samples {
            out.push_str(&format!("sample  {k}: {}\n", s.summary()));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::new();
        m.incr("jobs", 1);
        m.incr("jobs", 2);
        assert_eq!(m.counter("jobs"), 3);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let m = Metrics::new();
        assert_eq!(m.gauge("load"), None);
        m.set_gauge("load", 0.5);
        m.set_gauge("load", 0.9);
        assert_eq!(m.gauge("load"), Some(0.9));
    }

    #[test]
    fn samples_aggregate() {
        let m = Metrics::new();
        m.record("latency", 1.0);
        m.record("latency", 3.0);
        m.record_duration("latency", SimDuration::from_secs(2));
        let s = m.samples("latency");
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), Some(2.0));
    }

    #[test]
    fn clone_shares_state() {
        let m = Metrics::new();
        let m2 = m.clone();
        m2.incr("x", 5);
        assert_eq!(m.counter("x"), 5);
    }

    #[test]
    fn merge_combines() {
        let a = Metrics::new();
        let b = Metrics::new();
        a.incr("c", 1);
        b.incr("c", 2);
        b.set_gauge("g", 7.0);
        b.record("s", 4.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(7.0));
        assert_eq!(a.samples("s").count(), 1);
    }

    #[test]
    fn keys_are_sorted_and_deduped() {
        let m = Metrics::new();
        m.incr("b", 1);
        m.set_gauge("a", 1.0);
        m.record("b", 1.0);
        assert_eq!(m.keys(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn concurrent_increments_are_safe() {
        let m = Metrics::new();
        thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        m.incr("n", 1);
                    }
                });
            }
        });
        assert_eq!(m.counter("n"), 8000);
    }

    #[test]
    fn report_mentions_everything() {
        let m = Metrics::new();
        m.incr("c", 1);
        m.set_gauge("g", 2.0);
        m.record("s", 3.0);
        let r = m.report();
        assert!(r.contains("counter c = 1"));
        assert!(r.contains("gauge   g = 2"));
        assert!(r.contains("sample  s: n=1"));
    }
}

//! A shared retry/backoff plane for every failure-prone subsystem.
//!
//! Before this module existed each layer owned its own retry knobs: the
//! transfer service had a local exponential-backoff policy, the Condor pool
//! counted evictions ad hoc, and the Galaxy workflow runner had no recovery
//! at all. This module gives them one typed vocabulary:
//!
//! * [`RetryPolicy`] — how many attempts are allowed, how the backoff grows,
//!   optional deterministic seeded jitter, and an optional hard deadline.
//! * [`RetryState`] — the per-operation cursor that consumes failures and
//!   answers *retry after this long* or *dead-letter now*.
//! * [`RetryDecision`] / [`DeadLetterReason`] — the typed verdicts, so
//!   callers can route exhausted work to a terminal dead-letter state
//!   instead of silently dropping it.
//!
//! # Determinism
//!
//! The backoff sequence is a pure function of the policy: the first wait is
//! `base_backoff`, and each subsequent wait is the previous one multiplied
//! by `backoff_factor` — the exact arithmetic the transfer layer has always
//! used, so adapting it onto this module is bitwise semantics-preserving.
//! Jitter, when enabled, is drawn from a named [`RngStream`] derived from a
//! master seed: the same `(seed, name)` pair always yields the same jittered
//! schedule, keeping parallel replica runs byte-identical.
//!
//! # Example
//!
//! ```
//! use cumulus_simkit::retry::{RetryDecision, RetryPolicy};
//! use cumulus_simkit::time::{SimDuration, SimTime};
//!
//! let policy = RetryPolicy::new(3).with_backoff(SimDuration::from_secs(10), 2.0);
//! let mut state = policy.state();
//! let now = SimTime::ZERO;
//! // Failures 1 and 2 retry with growing backoff; failure 3 dead-letters.
//! assert!(matches!(state.on_failure(now), RetryDecision::Retry { attempt: 1, .. }));
//! assert!(matches!(state.on_failure(now), RetryDecision::Retry { attempt: 2, .. }));
//! assert!(matches!(state.on_failure(now), RetryDecision::DeadLetter(_)));
//! ```

use crate::rng::RngStream;
use crate::time::{SimDuration, SimTime};

/// Why a retryable operation was routed to the dead-letter terminal state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadLetterReason {
    /// The operation failed `attempts` times — the policy's full allowance.
    AttemptsExhausted {
        /// Total failures recorded, equal to the policy's `max_attempts`.
        attempts: u32,
    },
    /// The next retry could not be scheduled before the policy's deadline.
    DeadlineExpired {
        /// The deadline that cut the retry schedule short.
        deadline: SimTime,
    },
}

impl std::fmt::Display for DeadLetterReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeadLetterReason::AttemptsExhausted { attempts } => {
                write!(f, "dead-lettered after {attempts} attempts")
            }
            DeadLetterReason::DeadlineExpired { deadline } => {
                write!(f, "dead-lettered at deadline {deadline}")
            }
        }
    }
}

/// The verdict for one recorded failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RetryDecision {
    /// Try again after waiting `after`.
    Retry {
        /// How many failures have been recorded so far (1-based).
        attempt: u32,
        /// Backoff to wait before the next attempt (jitter applied).
        after: SimDuration,
    },
    /// Terminal: stop retrying and dead-letter the operation.
    DeadLetter(DeadLetterReason),
}

/// A typed retry/backoff policy.
///
/// `max_attempts` bounds the total number of *failures* tolerated: the
/// `max_attempts`-th failure dead-letters, so `max_attempts - 1` retries are
/// granted. A policy with `max_attempts <= 1` never retries.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Failures tolerated before dead-lettering (the Nth failure is final).
    pub max_attempts: u32,
    /// Wait before the first retry.
    pub base_backoff: SimDuration,
    /// Multiplier applied to the backoff after each retry.
    pub backoff_factor: f64,
    /// Jitter spread in `[0, 1)`: each wait is scaled by a factor drawn
    /// uniformly from `[1 - jitter, 1 + jitter]`. Zero disables jitter and
    /// needs no random stream.
    pub jitter: f64,
    /// Hard deadline: a retry that would land past it dead-letters instead.
    pub deadline: Option<SimTime>,
}

impl RetryPolicy {
    /// A policy allowing `max_attempts` failures, with the shared defaults
    /// the transfer layer established: 15 s base backoff doubling per retry,
    /// no jitter, no deadline.
    pub fn new(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            base_backoff: SimDuration::from_secs(15),
            backoff_factor: 2.0,
            jitter: 0.0,
            deadline: None,
        }
    }

    /// Set the backoff curve (builder style).
    pub fn with_backoff(mut self, base: SimDuration, factor: f64) -> Self {
        self.base_backoff = base;
        self.backoff_factor = factor;
        self
    }

    /// Set the jitter spread (builder style). Takes effect only on states
    /// built with [`RetryPolicy::seeded_state`].
    pub fn with_jitter(mut self, spread: f64) -> Self {
        self.jitter = spread;
        self
    }

    /// Set the hard deadline (builder style).
    pub fn with_deadline(mut self, deadline: SimTime) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// The un-jittered wait before retry number `attempt` (1-based):
    /// `base_backoff * backoff_factor^(attempt - 1)`, computed by repeated
    /// multiplication so it matches [`RetryState`]'s iterative arithmetic
    /// bit for bit.
    pub fn backoff_for_attempt(&self, attempt: u32) -> SimDuration {
        let mut backoff = self.base_backoff;
        for _ in 1..attempt {
            backoff = backoff.mul_f64(self.backoff_factor);
        }
        backoff
    }

    /// A fresh cursor over this policy without jitter randomness.
    pub fn state(&self) -> RetryState {
        RetryState {
            policy: *self,
            attempts: 0,
            backoff: self.base_backoff,
            jitter_rng: None,
            dead: None,
        }
    }

    /// A fresh cursor whose jitter stream is derived deterministically from
    /// `(seed, name)` — the same pair always replays the same schedule.
    pub fn seeded_state(&self, seed: u64, name: &str) -> RetryState {
        RetryState {
            policy: *self,
            attempts: 0,
            backoff: self.base_backoff,
            jitter_rng: Some(RngStream::derive(seed, name)),
            dead: None,
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 10 retries = 11 tolerated failures: the transfer layer's
        // long-standing default allowance.
        RetryPolicy::new(11)
    }
}

/// Per-operation retry cursor: feed it failures, obey its verdicts.
///
/// Once a state dead-letters it stays dead — further failures keep
/// returning the same [`DeadLetterReason`].
#[derive(Debug, Clone)]
pub struct RetryState {
    policy: RetryPolicy,
    attempts: u32,
    backoff: SimDuration,
    jitter_rng: Option<RngStream>,
    dead: Option<DeadLetterReason>,
}

impl RetryState {
    /// Record a failure observed at `now` and decide what happens next.
    pub fn on_failure(&mut self, now: SimTime) -> RetryDecision {
        if let Some(reason) = self.dead {
            return RetryDecision::DeadLetter(reason);
        }
        self.attempts += 1;
        if self.attempts >= self.policy.max_attempts {
            let reason = DeadLetterReason::AttemptsExhausted {
                attempts: self.attempts,
            };
            self.dead = Some(reason);
            return RetryDecision::DeadLetter(reason);
        }
        let mut wait = self.backoff;
        self.backoff = self.backoff.mul_f64(self.policy.backoff_factor);
        if self.policy.jitter > 0.0 {
            if let Some(rng) = self.jitter_rng.as_mut() {
                wait = wait.mul_f64(rng.jitter(self.policy.jitter));
            }
        }
        if let Some(deadline) = self.policy.deadline {
            if now >= deadline || now + wait > deadline {
                let reason = DeadLetterReason::DeadlineExpired { deadline };
                self.dead = Some(reason);
                return RetryDecision::DeadLetter(reason);
            }
        }
        RetryDecision::Retry {
            attempt: self.attempts,
            after: wait,
        }
    }

    /// Failures recorded so far.
    pub fn attempts(&self) -> u32 {
        self.attempts
    }

    /// Whether the state has reached its terminal dead-letter.
    pub fn is_dead(&self) -> bool {
        self.dead.is_some()
    }

    /// The terminal reason, if the state has dead-lettered.
    pub fn dead_letter(&self) -> Option<DeadLetterReason> {
        self.dead
    }

    /// The policy this cursor follows.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    /// Seeded loop: for many random un-jittered policies the backoff
    /// sequence is monotone non-decreasing whenever the factor is >= 1.
    #[test]
    fn backoff_sequence_is_monotone() {
        let mut rng = RngStream::derive(17, "retry/monotone");
        for case in 0..200u32 {
            let base = SimDuration::from_secs_f64(rng.uniform_range(0.5, 120.0));
            let factor = rng.uniform_range(1.0, 4.0);
            let max = 3 + (rng.next_u64() % 10) as u32;
            let policy = RetryPolicy::new(max).with_backoff(base, factor);
            let mut state = policy.state();
            let mut prev = SimDuration::ZERO;
            while let RetryDecision::Retry { attempt, after } = state.on_failure(t(0)) {
                assert!(
                    after >= prev,
                    "case {case}: backoff shrank at attempt {attempt}"
                );
                assert_eq!(after, policy.backoff_for_attempt(attempt));
                prev = after;
            }
        }
    }

    /// Seeded loop: a retry is never scheduled past the deadline, whatever
    /// the policy or the failure times.
    #[test]
    fn deadline_is_always_respected() {
        let mut rng = RngStream::derive(23, "retry/deadline");
        for case in 0..200u32 {
            let deadline = t(60 + rng.next_u64() % 3600);
            let policy = RetryPolicy::new(50)
                .with_backoff(
                    SimDuration::from_secs_f64(rng.uniform_range(1.0, 90.0)),
                    2.0,
                )
                .with_jitter(0.25)
                .with_deadline(deadline);
            let mut state = policy.seeded_state(case as u64, "retry/deadline-jitter");
            let mut now = t(rng.next_u64() % 120);
            loop {
                match state.on_failure(now) {
                    RetryDecision::Retry { after, .. } => {
                        assert!(
                            now + after <= deadline,
                            "case {case}: retry at {} past deadline {deadline}",
                            now + after
                        );
                        now += after;
                    }
                    RetryDecision::DeadLetter(reason) => {
                        assert!(state.is_dead());
                        if let DeadLetterReason::DeadlineExpired { deadline: d } = reason {
                            assert_eq!(d, deadline);
                        }
                        break;
                    }
                }
            }
        }
    }

    /// Dead-letter lands after exactly `max_attempts` failures, and the
    /// terminal state is sticky.
    #[test]
    fn dead_letter_after_exactly_max_attempts() {
        for max in 1..12u32 {
            let policy = RetryPolicy::new(max).with_backoff(SimDuration::from_secs(1), 2.0);
            let mut state = policy.state();
            for k in 1..max {
                assert!(
                    matches!(state.on_failure(t(0)), RetryDecision::Retry { attempt, .. } if attempt == k),
                    "max={max}: failure {k} should retry"
                );
            }
            let verdict = state.on_failure(t(0));
            assert_eq!(
                verdict,
                RetryDecision::DeadLetter(DeadLetterReason::AttemptsExhausted { attempts: max })
            );
            // Sticky: one more failure reports the same terminal reason.
            assert_eq!(state.on_failure(t(0)), verdict);
            assert_eq!(state.attempts(), max);
        }
    }

    /// Zero tolerated attempts means the first failure is final.
    #[test]
    fn zero_attempts_never_retries() {
        let mut state = RetryPolicy::new(0).state();
        assert!(matches!(
            state.on_failure(t(0)),
            RetryDecision::DeadLetter(DeadLetterReason::AttemptsExhausted { attempts: 1 })
        ));
    }

    /// Bitwise determinism: the same `(seed, name)` replays the identical
    /// jittered schedule; a different seed diverges.
    #[test]
    fn jittered_schedule_is_bitwise_deterministic() {
        let policy = RetryPolicy::new(20)
            .with_backoff(SimDuration::from_secs(10), 1.7)
            .with_jitter(0.3);
        let run = |seed: u64| -> Vec<SimDuration> {
            let mut state = policy.seeded_state(seed, "retry/jitter-test");
            let mut out = Vec::new();
            while let RetryDecision::Retry { after, .. } = state.on_failure(t(5)) {
                out.push(after);
            }
            out
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must replay bit-for-bit");
        assert_eq!(a.len(), 19);
        let c = run(43);
        assert_ne!(a, c, "different seeds should jitter differently");
        // Every jittered wait stays inside the [1-j, 1+j] band around the
        // un-jittered curve.
        for (i, after) in a.iter().enumerate() {
            let raw = policy.backoff_for_attempt(i as u32 + 1).as_secs_f64();
            let f = after.as_secs_f64() / raw;
            assert!((0.7..=1.3).contains(&f), "attempt {i}: factor {f}");
        }
    }

    /// The un-jittered state ignores the jitter knob entirely, so policies
    /// that never ask for jitter stay on the legacy deterministic curve.
    #[test]
    fn unseeded_state_ignores_jitter() {
        let policy = RetryPolicy::new(5)
            .with_backoff(SimDuration::from_secs(8), 2.0)
            .with_jitter(0.5);
        let mut state = policy.state();
        for k in 1..5u32 {
            match state.on_failure(t(0)) {
                RetryDecision::Retry { after, .. } => {
                    assert_eq!(after, policy.backoff_for_attempt(k))
                }
                RetryDecision::DeadLetter(_) => panic!("too early"),
            }
        }
    }
}

//! Parallel replica execution.
//!
//! Monte-Carlo experiments run the same simulation many times under different
//! seeds. Replicas are completely independent, so they parallelize perfectly:
//! this module fans replicas out over `std::thread::scope`, workers claiming
//! replica indices from a shared atomic counter, and collects results in
//! replica order (so results are independent of thread interleaving —
//! determinism survives parallelism).

use crate::rng::SeedFactory;

/// Configuration for a replica sweep.
#[derive(Debug, Clone, Copy)]
pub struct ReplicaPlan {
    /// Master seed; replica `i` receives `SeedFactory::new(master).child(i)`.
    pub master_seed: u64,
    /// Number of replicas to run.
    pub replicas: usize,
    /// Worker threads (`0` means one thread per available CPU).
    pub threads: usize,
}

impl ReplicaPlan {
    /// A plan with explicit seed and replica count, auto-sized thread pool.
    pub fn new(master_seed: u64, replicas: usize) -> Self {
        ReplicaPlan {
            master_seed,
            replicas,
            threads: 0,
        }
    }

    /// Override the thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    fn effective_threads(&self) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            self.threads
        };
        t.clamp(1, self.replicas.max(1))
    }
}

/// Run `f(replica_index, seeds)` for every replica in parallel and return the
/// results **in replica order**, regardless of which thread ran which
/// replica.
///
/// `f` must be `Sync` because multiple threads call it concurrently (each
/// call gets a distinct replica index and seed factory, so a pure simulation
/// function needs no internal synchronization).
pub fn run_replicas<R, F>(plan: ReplicaPlan, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize, SeedFactory) -> R + Sync,
{
    let n = plan.replicas;
    if n == 0 {
        return Vec::new();
    }
    let threads = plan.effective_threads();
    let root = SeedFactory::new(plan.master_seed);

    if threads == 1 {
        return (0..n).map(|i| f(i, root.child(i as u64))).collect();
    }

    let counter = std::sync::atomic::AtomicUsize::new(0);

    // Each worker claims replica indices from the shared atomic counter and
    // keeps its results locally; the merge below re-orders them by replica
    // index. No locks anywhere on the result path.
    let mut slots: Vec<Option<R>> = (0..n).map(|_| None).collect();
    let per_thread: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let f = &f;
        let counter = &counter;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(move || {
                    let mut mine = Vec::new();
                    loop {
                        let i = counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        mine.push((i, f(i, root.child(i as u64))));
                    }
                    mine
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("replica worker panicked"))
            .collect()
    });
    for (i, r) in per_thread.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "replica {i} claimed twice");
        slots[i] = Some(r);
    }

    slots
        .into_iter()
        .map(|s| s.expect("every replica produced a result"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_returns_empty() {
        let out: Vec<u64> = run_replicas(ReplicaPlan::new(1, 0), |_, _| 0);
        assert!(out.is_empty());
    }

    #[test]
    fn results_are_in_replica_order() {
        let out = run_replicas(ReplicaPlan::new(42, 64).with_threads(4), |i, _| i * 10);
        assert_eq!(out, (0..64).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let sim = |i: usize, seeds: SeedFactory| {
            let mut rng = seeds.stream("work");
            let mut acc = i as u64;
            for _ in 0..100 {
                acc = acc.wrapping_add(rng.next_u64());
            }
            acc
        };
        let seq = run_replicas(ReplicaPlan::new(7, 32).with_threads(1), sim);
        let par = run_replicas(ReplicaPlan::new(7, 32).with_threads(8), sim);
        assert_eq!(seq, par);
    }

    #[test]
    fn distinct_replicas_get_distinct_seeds() {
        let out = run_replicas(ReplicaPlan::new(9, 16).with_threads(2), |_, seeds| {
            seeds.stream("x").next_u64()
        });
        let mut dedup = out.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), out.len(), "replica seeds collided");
    }

    #[test]
    fn more_threads_than_replicas_is_fine() {
        let out = run_replicas(ReplicaPlan::new(3, 2).with_threads(16), |i, _| i);
        assert_eq!(out, vec![0, 1]);
    }
}

//! Virtual time for the simulation kernel.
//!
//! Simulated time is a monotonically non-decreasing count of **microseconds**
//! since the start of the simulation. A `u64` of microseconds covers roughly
//! 584,000 years of simulated time, which is comfortably more than any cloud
//! deployment experiment needs, while still resolving sub-millisecond events
//! such as scheduler negotiation cycles.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Raw microseconds since simulation start.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since simulation start (fractional part truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Seconds since simulation start, as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Minutes since simulation start, as a float.
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero rather than
    /// panicking if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60 * 1_000_000)
    }

    /// Construct from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600 * 1_000_000)
    }

    /// Construct from fractional seconds. Negative or non-finite inputs
    /// clamp to zero; values beyond the representable range clamp to `MAX`.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let us = s * 1e6;
        if us >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(us as u64)
        }
    }

    /// Construct from fractional minutes (clamping like [`from_secs_f64`]).
    ///
    /// [`from_secs_f64`]: SimDuration::from_secs_f64
    pub fn from_mins_f64(m: f64) -> Self {
        SimDuration::from_secs_f64(m * 60.0)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Minutes as a float.
    pub fn as_mins_f64(self) -> f64 {
        self.as_secs_f64() / 60.0
    }

    /// Hours as a float.
    pub fn as_hours_f64(self) -> f64 {
        self.as_secs_f64() / 3600.0
    }

    /// True if this span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiply by a non-negative float factor, clamping into range.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_secs = self.0 / 1_000_000;
        let us = self.0 % 1_000_000;
        let h = total_secs / 3600;
        let m = (total_secs % 3600) / 60;
        let s = total_secs % 60;
        write!(f, "{h:02}:{m:02}:{s:02}.{:03}", us / 1000)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.as_secs_f64();
        if s < 1.0 {
            write!(f, "{:.1}ms", s * 1e3)
        } else if s < 120.0 {
            write!(f, "{s:.2}s")
        } else if s < 3600.0 * 2.0 {
            write!(f, "{:.2}min", s / 60.0)
        } else {
            write!(f, "{:.2}h", s / 3600.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimDuration::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimDuration::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_mins(2).as_secs_f64(), 120.0);
        assert_eq!(SimDuration::from_hours(1).as_mins_f64(), 60.0);
        assert_eq!(SimTime::from_micros(42).as_micros(), 42);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_secs(10);
        assert_eq!(t1 - t0, SimDuration::from_secs(10));
        assert_eq!(t1.since(t0).as_secs_f64(), 10.0);
        // since() saturates instead of panicking.
        assert_eq!(t0.since(t1), SimDuration::ZERO);
    }

    #[test]
    fn float_construction_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d.as_micros(), 1_500_000);
    }

    #[test]
    fn mins_f64_round_trip() {
        let d = SimDuration::from_mins_f64(10.7);
        assert!((d.as_mins_f64() - 10.7).abs() < 1e-9);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            format!("{}", SimTime::from_micros(3_661_500_000)),
            "01:01:01.500"
        );
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.0ms");
        assert_eq!(format!("{}", SimDuration::from_secs(90)), "90.00s");
        assert_eq!(format!("{}", SimDuration::from_mins(30)), "30.00min");
        assert_eq!(format!("{}", SimDuration::from_hours(5)), "5.00h");
    }

    #[test]
    fn scaling_operations() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 2, SimDuration::from_secs(5));
        assert_eq!(d.mul_f64(0.5), SimDuration::from_secs(5));
        assert_eq!(
            d.saturating_sub(SimDuration::from_secs(20)),
            SimDuration::ZERO
        );
    }
}

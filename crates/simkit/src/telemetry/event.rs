//! The typed event record.
//!
//! An [`Event`] is what every layer appends to the telemetry log: a
//! simulated timestamp, a static component category (`"htc"`, `"cloud"`,
//! `"autoscale"`, …), an interned [`Key`] naming what happened, and a
//! typed [`Payload`] carrying the numbers — ids, durations, byte counts —
//! instead of a pre-formatted string. Formatting happens only when a
//! human asks for it (the `Display` impl); digests and span assembly work on
//! the typed data directly.

use std::fmt;

use crate::time::{SimDuration, SimTime};

use super::intern::Key;

/// What kind of lifecycle a span tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SpanKind {
    /// A scheduler job: submit → match → stage → run → complete.
    Job,
    /// A Galaxy workflow invocation spanning its jobs.
    Workflow,
    /// A transfer-service task.
    Transfer,
    /// A cloud instance: requested → running → terminated/preempted.
    Instance,
}

impl SpanKind {
    /// Short label used in renders and digests (stable across runs).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Job => "job",
            SpanKind::Workflow => "workflow",
            SpanKind::Transfer => "transfer",
            SpanKind::Instance => "instance",
        }
    }

    /// Stable one-byte encoding for digests.
    pub(crate) fn code(self) -> u8 {
        match self {
            SpanKind::Job => 1,
            SpanKind::Workflow => 2,
            SpanKind::Transfer => 3,
            SpanKind::Instance => 4,
        }
    }
}

/// The typed data an event carries.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// Nothing beyond the key itself.
    None,
    /// A count (events, retries, jobs, …).
    Count(u64),
    /// A byte quantity.
    Bytes(u64),
    /// An instantaneous measurement (gauge-like).
    Value(f64),
    /// A duration.
    Duration(SimDuration),
    /// A `from → to` transition (worker counts, sizes).
    Pair(u64, u64),
    /// Free text — the trace-log compatibility payload.
    Text(Box<str>),
    /// A lifecycle span opens (entity `id` of kind `kind`).
    SpanOpen {
        /// The lifecycle the span tracks.
        kind: SpanKind,
        /// Entity id within the kind's namespace.
        id: u64,
    },
    /// A phase boundary inside an open span, optionally carrying the
    /// phase's own duration (e.g. staging time charged at match time).
    SpanPhase {
        /// The lifecycle the span tracks.
        kind: SpanKind,
        /// Entity id within the kind's namespace.
        id: u64,
        /// Duration attributed to this phase (`ZERO` when the phase is a
        /// pure boundary marker).
        dur: SimDuration,
    },
    /// A lifecycle span closes.
    SpanClose {
        /// The lifecycle the span tracks.
        kind: SpanKind,
        /// Entity id within the kind's namespace.
        id: u64,
    },
}

/// One telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// When it happened (simulated time).
    pub at: SimTime,
    /// Static component category (`"htc"`, `"cloud"`, `"trace"`, …).
    pub category: &'static str,
    /// Interned name of what happened.
    pub key: Key,
    /// The typed data.
    pub payload: Payload,
}

impl Event {
    /// Feed this event's identity into an FNV-1a state. Encodes the key
    /// *name* (never the interning-order-dependent id) so digests are
    /// stable across thread interleavings and processes.
    pub(crate) fn fold_digest(&self, h: &mut Fnv) {
        h.u64(self.at.as_micros());
        h.bytes(self.category.as_bytes());
        h.sep();
        h.bytes(self.key.name().as_bytes());
        h.sep();
        match &self.payload {
            Payload::None => h.u8(0),
            Payload::Count(n) => {
                h.u8(1);
                h.u64(*n);
            }
            Payload::Bytes(n) => {
                h.u8(2);
                h.u64(*n);
            }
            Payload::Value(v) => {
                h.u8(3);
                h.u64(v.to_bits());
            }
            Payload::Duration(d) => {
                h.u8(4);
                h.u64(d.as_micros());
            }
            Payload::Pair(a, b) => {
                h.u8(5);
                h.u64(*a);
                h.u64(*b);
            }
            Payload::Text(s) => {
                h.u8(6);
                h.bytes(s.as_bytes());
                h.sep();
            }
            Payload::SpanOpen { kind, id } => {
                h.u8(7);
                h.u8(kind.code());
                h.u64(*id);
            }
            Payload::SpanPhase { kind, id, dur } => {
                h.u8(8);
                h.u8(kind.code());
                h.u64(*id);
                h.u64(dur.as_micros());
            }
            Payload::SpanClose { kind, id } => {
                h.u8(9);
                h.u8(kind.code());
                h.u64(*id);
            }
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.payload {
            // Text events render exactly like the historical trace-log
            // lines: the key is the old category column.
            Payload::Text(s) => write!(f, "[{}] {:<10} {}", self.at, self.key.name(), s),
            Payload::None => write!(f, "[{}] {:<10} {}", self.at, self.category, self.key),
            Payload::Count(n) => {
                write!(
                    f,
                    "[{}] {:<10} {} n={}",
                    self.at, self.category, self.key, n
                )
            }
            Payload::Bytes(n) => write!(
                f,
                "[{}] {:<10} {} bytes={}",
                self.at, self.category, self.key, n
            ),
            Payload::Value(v) => write!(
                f,
                "[{}] {:<10} {} value={}",
                self.at, self.category, self.key, v
            ),
            Payload::Duration(d) => write!(
                f,
                "[{}] {:<10} {} dur={}s",
                self.at,
                self.category,
                self.key,
                d.as_secs_f64()
            ),
            Payload::Pair(a, b) => write!(
                f,
                "[{}] {:<10} {} {}->{}",
                self.at, self.category, self.key, a, b
            ),
            Payload::SpanOpen { kind, id } => write!(
                f,
                "[{}] {:<10} {} open {}:{}",
                self.at,
                self.category,
                self.key,
                kind.label(),
                id
            ),
            Payload::SpanPhase { kind, id, dur } => write!(
                f,
                "[{}] {:<10} {} phase {}:{} +{}s",
                self.at,
                self.category,
                self.key,
                kind.label(),
                id,
                dur.as_secs_f64()
            ),
            Payload::SpanClose { kind, id } => write!(
                f,
                "[{}] {:<10} {} close {}:{}",
                self.at,
                self.category,
                self.key,
                kind.label(),
                id
            ),
        }
    }
}

/// A streaming FNV-1a hasher: records fold their bytes in directly, so
/// digesting a log never materializes it as one big buffer.
pub(crate) struct Fnv(pub(crate) u64);

pub(crate) const FNV_PRIME: u64 = 0x1000_0000_01b3;
pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    pub(crate) fn u8(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    pub(crate) fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.u8(b);
        }
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    /// A field separator outside the value alphabet of length-prefix-free
    /// byte fields (category/key/text), so `("ab","c")` and `("a","bc")`
    /// hash differently.
    pub(crate) fn sep(&mut self) {
        self.u8(0xFF);
    }
}

impl fmt::Write for Fnv {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.bytes(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(key: &str, payload: Payload) -> Event {
        Event {
            at: SimTime::from_micros(1_500_000),
            category: "test",
            key: Key::intern(key),
            payload,
        }
    }

    #[test]
    fn digest_distinguishes_payload_types_with_equal_bits() {
        let mut a = Fnv::new();
        ev("telemetry.test.k", Payload::Count(42)).fold_digest(&mut a);
        let mut b = Fnv::new();
        ev("telemetry.test.k", Payload::Bytes(42)).fold_digest(&mut b);
        assert_ne!(a.0, b.0, "Count(42) and Bytes(42) must hash apart");
    }

    #[test]
    fn digest_field_boundaries_are_unambiguous() {
        let mut a = Fnv::new();
        Event {
            at: SimTime::ZERO,
            category: "ab",
            key: Key::intern("c.x"),
            payload: Payload::None,
        }
        .fold_digest(&mut a);
        let mut b = Fnv::new();
        Event {
            at: SimTime::ZERO,
            category: "a",
            key: Key::intern("bc.x"),
            payload: Payload::None,
        }
        .fold_digest(&mut b);
        assert_ne!(a.0, b.0, "category/key boundary must be hashed");
    }

    #[test]
    fn text_events_render_like_trace_records() {
        let e = Event {
            at: SimTime::from_micros(1_500_000),
            category: "trace",
            key: Key::intern("net"),
            payload: Payload::Text("link up".into()),
        };
        assert_eq!(e.to_string(), "[00:00:01.500] net        link up");
    }

    #[test]
    fn span_events_render_kind_and_id() {
        let e = ev(
            "job.submitted",
            Payload::SpanOpen {
                kind: SpanKind::Job,
                id: 7,
            },
        );
        assert_eq!(
            e.to_string(),
            "[00:00:01.500] test       job.submitted open job:7"
        );
    }
}

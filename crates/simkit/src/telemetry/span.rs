//! Lifecycle spans assembled from telemetry events.
//!
//! A span is the interval an entity (job, workflow, transfer, instance)
//! spends between its [`Payload::SpanOpen`] and [`Payload::SpanClose`]
//! events, with [`Payload::SpanPhase`] boundaries in between. Spans are
//! not recorded by components — they are *assembled* after the fact from
//! the event log, so there is exactly one source of truth and no parallel
//! bookkeeping to drift.
//!
//! [`JobBreakdown`] decomposes a job span's walltime into queue-wait,
//! disruption-repair, staging, and compute — the four components sum to
//! the walltime *exactly*, by construction, which is what lets an episode
//! report account for every second of its makespan.

use std::collections::BTreeMap;
use std::fmt;

use crate::time::{SimDuration, SimTime};

use super::event::{Event, Payload, SpanKind};
use super::intern::Key;

/// Well-known event key names. Components intern these once; analyzers
/// match against them. Keeping them here (not per-crate) is what makes
/// the span assembler work across layers.
pub mod keys {
    /// Job span opens: submitted to the scheduler.
    pub const JOB_SUBMITTED: &str = "job.submitted";
    /// Job phase: matched to a machine (a run attempt starts).
    pub const JOB_MATCHED: &str = "job.matched";
    /// Job phase: inputs staged; the attached duration is the staging time.
    pub const JOB_STAGED: &str = "job.staged";
    /// Job phase: evicted from its machine and requeued.
    pub const JOB_EVICTED: &str = "job.evicted";
    /// Job span closes: completed.
    pub const JOB_COMPLETED: &str = "job.completed";
    /// Job span closes: removed before completion.
    pub const JOB_REMOVED: &str = "job.removed";
    /// Job phase: held for a retry backoff by the recovery plane; the
    /// attached duration is the backoff wait.
    pub const JOB_RETRY_BACKOFF: &str = "job.retry_backoff";
    /// Job phase: the recovery plane dead-lettered the job (retry budget
    /// exhausted); a `job.removed` close follows.
    pub const JOB_DEAD_LETTERED: &str = "job.dead_lettered";
    /// Instance span opens: capacity requested.
    pub const INSTANCE_REQUESTED: &str = "instance.requested";
    /// Instance phase: allocation + boot finished, instance usable.
    pub const INSTANCE_RUNNING: &str = "instance.running";
    /// Instance span closes: terminated normally.
    pub const INSTANCE_TERMINATED: &str = "instance.terminated";
    /// Instance span closes: preempted by the spot market.
    pub const INSTANCE_PREEMPTED: &str = "instance.preempted";
    /// Transfer span opens: task submitted.
    pub const TRANSFER_STARTED: &str = "transfer.started";
    /// Transfer phase: a fault interrupted the stream (retried).
    pub const TRANSFER_FAULT: &str = "transfer.fault";
    /// Transfer span closes: task reached a terminal status.
    pub const TRANSFER_DONE: &str = "transfer.done";
    /// Workflow span opens: invocation started.
    pub const WORKFLOW_STARTED: &str = "workflow.started";
    /// Workflow phase: one step's job finished.
    pub const WORKFLOW_STEP: &str = "workflow.step";
    /// Workflow span closes: all steps done.
    pub const WORKFLOW_COMPLETED: &str = "workflow.completed";
    /// Workflow phase: a resumed run skipped this step — its checkpointed
    /// outputs were re-staged through the data plane; the attached
    /// duration is the re-staging time.
    pub const WORKFLOW_STEP_RESUMED: &str = "workflow.step_resumed";
    /// Workflow phase: a resumed run re-executes this step (lost suffix).
    pub const WORKFLOW_STEP_RERUN: &str = "workflow.step_rerun";
    /// Autoscale decision: workers added (payload: from → to).
    pub const SCALE_OUT: &str = "autoscale.scale_out";
    /// Autoscale decision: workers released (payload: from → to).
    pub const SCALE_IN: &str = "autoscale.scale_in";
    /// Autoscale decision: tick held (payload: count of the hold reason).
    pub const SCALE_HOLD: &str = "autoscale.hold";
    /// Repair plane: a disrupted worker was observed lost.
    pub const REPAIR_OBSERVED: &str = "repair.observed";
    /// Repair plane: a replacement slot was relaunched.
    pub const REPAIR_RELAUNCHED: &str = "repair.relaunched";
}

/// One phase boundary inside a span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Phase {
    /// What the phase marks (e.g. `job.matched`).
    pub key: Key,
    /// When it happened.
    pub at: SimTime,
    /// Duration attributed to the phase (`ZERO` for pure markers).
    pub dur: SimDuration,
}

/// A closed lifecycle span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// The lifecycle kind.
    pub kind: SpanKind,
    /// Entity id within the kind's namespace.
    pub id: u64,
    /// Component that opened the span.
    pub category: &'static str,
    /// The opening event's key.
    pub open_key: Key,
    /// When the span opened.
    pub opened_at: SimTime,
    /// Phase boundaries, in event order.
    pub phases: Vec<Phase>,
    /// The closing event's key (distinguishes outcomes: completed vs
    /// removed, terminated vs preempted).
    pub close_key: Key,
    /// When the span closed.
    pub closed_at: SimTime,
}

impl Span {
    /// Open → close.
    pub fn duration(&self) -> SimDuration {
        self.closed_at.since(self.opened_at)
    }

    /// Phases matching `key`, in order.
    pub fn phases_named(&self, key: Key) -> impl Iterator<Item = &Phase> {
        self.phases.iter().filter(move |p| p.key == key)
    }

    /// Sum of the attached durations of phases matching `key`.
    pub fn phase_total(&self, key: Key) -> SimDuration {
        self.phases_named(key)
            .fold(SimDuration::ZERO, |acc, p| acc + p.dur)
    }
}

/// Why span assembly rejected an event sequence.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanError {
    /// A second `SpanOpen` arrived for an entity whose span is open.
    Reopened {
        /// Offending entity.
        kind: SpanKind,
        /// Offending entity id.
        id: u64,
        /// When the duplicate open arrived.
        at: SimTime,
    },
    /// A phase or close arrived for an entity with no open span.
    NotOpen {
        /// Offending entity.
        kind: SpanKind,
        /// Offending entity id.
        id: u64,
        /// When the orphan event arrived.
        at: SimTime,
    },
    /// An event inside a span carried a timestamp earlier than the one
    /// before it.
    NonMonotone {
        /// Offending entity.
        kind: SpanKind,
        /// Offending entity id.
        id: u64,
        /// The regressing timestamp.
        at: SimTime,
    },
    /// The log ended with this span still open (strict assembly only).
    NeverClosed {
        /// Offending entity.
        kind: SpanKind,
        /// Offending entity id.
        id: u64,
        /// When it opened.
        opened_at: SimTime,
    },
}

impl fmt::Display for SpanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpanError::Reopened { kind, id, at } => {
                write!(f, "span {}:{id} reopened at {at}", kind.label())
            }
            SpanError::NotOpen { kind, id, at } => write!(
                f,
                "event for {}:{id} at {at} without an open span",
                kind.label()
            ),
            SpanError::NonMonotone { kind, id, at } => write!(
                f,
                "timestamps regress inside span {}:{id} at {at}",
                kind.label()
            ),
            SpanError::NeverClosed {
                kind,
                id,
                opened_at,
            } => write!(
                f,
                "span {}:{id} opened at {opened_at} never closed",
                kind.label()
            ),
        }
    }
}

impl std::error::Error for SpanError {}

/// A partially-built span (open, not yet closed).
#[derive(Debug, Clone)]
struct OpenSpan {
    category: &'static str,
    open_key: Key,
    opened_at: SimTime,
    phases: Vec<Phase>,
    last_at: SimTime,
}

/// The result of lenient assembly: closed spans in close order, plus
/// whatever was still open when the log ended (instances still running at
/// episode teardown, for example).
#[derive(Debug, Clone, Default)]
pub struct SpanSet {
    /// Spans that closed, in close order.
    pub closed: Vec<Span>,
    /// `(kind, id, opened_at)` of spans still open at the end of the log.
    pub open: Vec<(SpanKind, u64, SimTime)>,
}

impl SpanSet {
    /// Closed spans of one kind, in close order.
    pub fn of_kind(&self, kind: SpanKind) -> impl Iterator<Item = &Span> {
        self.closed.iter().filter(move |s| s.kind == kind)
    }
}

/// Assemble spans from an event log, tolerating still-open spans.
///
/// Violations of span structure (reopen, orphan phase/close, timestamp
/// regression) are still hard errors — they indicate an instrumentation
/// bug, not a truncated episode.
pub fn assemble_lenient(events: &[Event]) -> Result<SpanSet, SpanError> {
    let mut open: BTreeMap<(u8, u64), OpenSpan> = BTreeMap::new();
    let mut set = SpanSet::default();
    for e in events {
        match e.payload {
            Payload::SpanOpen { kind, id } => {
                let slot = (kind.code(), id);
                if open.contains_key(&slot) {
                    return Err(SpanError::Reopened { kind, id, at: e.at });
                }
                open.insert(
                    slot,
                    OpenSpan {
                        category: e.category,
                        open_key: e.key,
                        opened_at: e.at,
                        phases: Vec::new(),
                        last_at: e.at,
                    },
                );
            }
            Payload::SpanPhase { kind, id, dur } => {
                let slot = (kind.code(), id);
                let Some(s) = open.get_mut(&slot) else {
                    return Err(SpanError::NotOpen { kind, id, at: e.at });
                };
                if e.at < s.last_at {
                    return Err(SpanError::NonMonotone { kind, id, at: e.at });
                }
                s.last_at = e.at;
                s.phases.push(Phase {
                    key: e.key,
                    at: e.at,
                    dur,
                });
            }
            Payload::SpanClose { kind, id } => {
                let slot = (kind.code(), id);
                let Some(s) = open.remove(&slot) else {
                    return Err(SpanError::NotOpen { kind, id, at: e.at });
                };
                if e.at < s.last_at {
                    return Err(SpanError::NonMonotone { kind, id, at: e.at });
                }
                set.closed.push(Span {
                    kind,
                    id,
                    category: s.category,
                    open_key: s.open_key,
                    opened_at: s.opened_at,
                    phases: s.phases,
                    close_key: e.key,
                    closed_at: e.at,
                });
            }
            _ => {}
        }
    }
    // BTreeMap order: (kind code, id) — deterministic.
    for (&(code, id), s) in &open {
        let kind = match code {
            1 => SpanKind::Job,
            2 => SpanKind::Workflow,
            3 => SpanKind::Transfer,
            _ => SpanKind::Instance,
        };
        set.open.push((kind, id, s.opened_at));
    }
    Ok(set)
}

/// Strict assembly: every opened span must have closed.
pub fn assemble(events: &[Event]) -> Result<Vec<Span>, SpanError> {
    let set = assemble_lenient(events)?;
    if let Some(&(kind, id, opened_at)) = set.open.first() {
        return Err(SpanError::NeverClosed {
            kind,
            id,
            opened_at,
        });
    }
    Ok(set.closed)
}

/// A job span's walltime, decomposed. The four components sum to the
/// span's duration exactly (integer microseconds, no rounding).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct JobBreakdown {
    /// Submission to the *first* match: time spent waiting for capacity.
    pub queue: SimDuration,
    /// First match to the *last* match: run attempts lost to disruptions
    /// plus requeue waits. Zero for a job that ran once.
    pub repair: SimDuration,
    /// Staging charged to the final (surviving) run attempt.
    pub staging: SimDuration,
    /// The final run attempt's execution time net of staging.
    pub compute: SimDuration,
}

impl JobBreakdown {
    /// Sum of the four components — always the span's walltime.
    pub fn total(&self) -> SimDuration {
        self.queue + self.repair + self.staging + self.compute
    }

    /// Decompose a job span. Returns `None` if the span has no
    /// `job.matched` phase (a job that closed without ever running).
    pub fn of(span: &Span) -> Option<JobBreakdown> {
        let matched = Key::find(keys::JOB_MATCHED)?;
        let mut first_match: Option<SimTime> = None;
        let mut last_match: Option<SimTime> = None;
        for p in span.phases_named(matched) {
            if first_match.is_none() {
                first_match = Some(p.at);
            }
            last_match = Some(p.at);
        }
        let (first, last) = (first_match?, last_match?);
        // Staging of the surviving attempt: staged phases at/after the
        // last match. Earlier (aborted) attempts' staging is repair time.
        let staging = Key::find(keys::JOB_STAGED)
            .map(|staged| {
                span.phases_named(staged)
                    .filter(|p| p.at >= last)
                    .fold(SimDuration::ZERO, |acc, p| acc + p.dur)
            })
            .unwrap_or(SimDuration::ZERO);
        let run = span.closed_at.since(last);
        Some(JobBreakdown {
            queue: first.since(span.opened_at),
            repair: last.since(first),
            staging,
            compute: run.saturating_sub(staging),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::super::Telemetry;
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn job_events(tel: &Telemetry) {
        tel.span_open(t(0), "htc", keys::JOB_SUBMITTED, SpanKind::Job, 1);
        tel.span_phase(
            t(40),
            "htc",
            keys::JOB_MATCHED,
            SpanKind::Job,
            1,
            SimDuration::ZERO,
        );
        tel.span_phase(
            t(40),
            "store",
            keys::JOB_STAGED,
            SpanKind::Job,
            1,
            SimDuration::from_secs(10),
        );
        tel.span_close(t(160), "htc", keys::JOB_COMPLETED, SpanKind::Job, 1);
    }

    #[test]
    fn assembles_a_simple_job_span() {
        let tel = Telemetry::enabled();
        job_events(&tel);
        let spans = assemble(&tel.events()).unwrap();
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.kind, SpanKind::Job);
        assert_eq!(s.id, 1);
        assert_eq!(s.duration(), SimDuration::from_secs(160));
        assert_eq!(s.phases.len(), 2);
        assert_eq!(s.close_key.name(), keys::JOB_COMPLETED);
    }

    #[test]
    fn breakdown_components_sum_to_walltime() {
        let tel = Telemetry::enabled();
        job_events(&tel);
        let spans = assemble(&tel.events()).unwrap();
        let b = JobBreakdown::of(&spans[0]).unwrap();
        assert_eq!(b.queue, SimDuration::from_secs(40));
        assert_eq!(b.repair, SimDuration::ZERO);
        assert_eq!(b.staging, SimDuration::from_secs(10));
        assert_eq!(b.compute, SimDuration::from_secs(110));
        assert_eq!(b.total(), spans[0].duration());
    }

    #[test]
    fn eviction_time_lands_in_repair() {
        let tel = Telemetry::enabled();
        tel.span_open(t(0), "htc", keys::JOB_SUBMITTED, SpanKind::Job, 9);
        for (at, key) in [(10, keys::JOB_MATCHED), (50, keys::JOB_EVICTED)] {
            tel.span_phase(t(at), "htc", key, SpanKind::Job, 9, SimDuration::ZERO);
        }
        tel.span_phase(
            t(90),
            "htc",
            keys::JOB_MATCHED,
            SpanKind::Job,
            9,
            SimDuration::ZERO,
        );
        tel.span_close(t(190), "htc", keys::JOB_COMPLETED, SpanKind::Job, 9);
        let spans = assemble(&tel.events()).unwrap();
        let b = JobBreakdown::of(&spans[0]).unwrap();
        assert_eq!(b.queue, SimDuration::from_secs(10));
        assert_eq!(b.repair, SimDuration::from_secs(80), "lost run + requeue");
        assert_eq!(b.compute, SimDuration::from_secs(100));
        assert_eq!(b.total(), spans[0].duration());
    }

    #[test]
    fn strict_assembly_rejects_unclosed_spans() {
        let tel = Telemetry::enabled();
        tel.span_open(
            t(0),
            "cloud",
            keys::INSTANCE_REQUESTED,
            SpanKind::Instance,
            3,
        );
        let events = tel.events();
        assert!(matches!(
            assemble(&events),
            Err(SpanError::NeverClosed {
                kind: SpanKind::Instance,
                id: 3,
                ..
            })
        ));
        let set = assemble_lenient(&events).unwrap();
        assert_eq!(set.closed.len(), 0);
        assert_eq!(set.open, vec![(SpanKind::Instance, 3, t(0))]);
    }

    #[test]
    fn structural_violations_are_errors() {
        let reopen = Telemetry::enabled();
        reopen.span_open(t(0), "htc", keys::JOB_SUBMITTED, SpanKind::Job, 1);
        reopen.span_open(t(1), "htc", keys::JOB_SUBMITTED, SpanKind::Job, 1);
        assert!(matches!(
            assemble(&reopen.events()),
            Err(SpanError::Reopened { .. })
        ));

        let orphan = Telemetry::enabled();
        orphan.span_close(t(1), "htc", keys::JOB_COMPLETED, SpanKind::Job, 2);
        assert!(matches!(
            assemble(&orphan.events()),
            Err(SpanError::NotOpen { .. })
        ));

        let regress = Telemetry::enabled();
        regress.span_open(t(5), "htc", keys::JOB_SUBMITTED, SpanKind::Job, 3);
        regress.span_close(t(4), "htc", keys::JOB_COMPLETED, SpanKind::Job, 3);
        assert!(matches!(
            assemble(&regress.events()),
            Err(SpanError::NonMonotone { .. })
        ));
    }

    #[test]
    fn same_id_different_kinds_do_not_collide() {
        let tel = Telemetry::enabled();
        tel.span_open(t(0), "htc", keys::JOB_SUBMITTED, SpanKind::Job, 5);
        tel.span_open(
            t(0),
            "cloud",
            keys::INSTANCE_REQUESTED,
            SpanKind::Instance,
            5,
        );
        tel.span_close(t(10), "htc", keys::JOB_COMPLETED, SpanKind::Job, 5);
        tel.span_close(
            t(20),
            "cloud",
            keys::INSTANCE_TERMINATED,
            SpanKind::Instance,
            5,
        );
        let spans = assemble(&tel.events()).unwrap();
        assert_eq!(spans.len(), 2);
    }
}

//! The typed telemetry plane.
//!
//! Every layer of the simulator reports what happened through one
//! mechanism: typed [`Event`] records — a simulated timestamp, a static
//! component category, an interned [`Key`], and a typed [`Payload`] —
//! appended to a shared [`Telemetry`] log. Nothing is pre-formatted on
//! the hot path; rendering, digesting, span assembly, and metric
//! derivation all happen after the fact, from the same records.
//!
//! Three consumers sit on top:
//!
//! * [`TraceLog`](crate::trace::TraceLog) — the historical string-trace
//!   API, now a thin adapter that stores its records as `Text` events
//!   (byte-identical renders and digests).
//! * [`Metrics`](crate::metrics::Metrics) — the counter/gauge/sample
//!   registry, integer-indexed by pre-registered
//!   [`MetricId`](crate::metrics::MetricId) handles.
//! * [`span`] — lifecycle spans (job / workflow / transfer / instance)
//!   assembled from `SpanOpen`/`SpanPhase`/`SpanClose` events, with
//!   [`span::JobBreakdown`] decomposing walltime into
//!   queue / repair / staging / compute.
//!
//! # Determinism
//!
//! [`Telemetry::digest`] folds every event into a streaming FNV-1a state
//! — key *names*, never interning-order ids — so two logs digest equal
//! iff they carry the same records, regardless of thread count or what
//! else the process interned first. The determinism suite compares
//! digests across `--threads` settings.
//!
//! # Overhead
//!
//! A disabled handle (the default everywhere) rejects events on a single
//! unsynchronized branch — the enabled flag is immutable after
//! construction, so no lock is touched. The `telemetry` kernel bench
//! measures both sides.

pub mod event;
pub mod intern;
pub mod span;

/// The `wan.*` telemetry vocabulary: cross-site traffic over the
/// federation's wide-area links. Metrics under these keys let a report
/// decompose staging into intra-site bytes (the `store.bytes.*`
/// counters) and cross-site bytes, and events under [`wan::CATEGORY`]
/// carry per-crossing detail (size, link, charge).
pub mod wan {
    /// Event category for cross-site traffic records.
    pub const CATEGORY: &str = "wan";
    /// Counter: bytes that left a site over the WAN (billed egress —
    /// attributed to the *source* site, as clouds bill it).
    pub const BYTES_EGRESS: &str = "wan.bytes.egress";
    /// Counter: bytes that arrived at a site over the WAN (ingress —
    /// free in the 2012 pricing model, counted for symmetry checks).
    pub const BYTES_INGRESS: &str = "wan.bytes.ingress";
    /// Counter: cross-site object crossings (one per remote fetch).
    pub const CROSSINGS: &str = "wan.crossings";
    /// Event: one WAN crossing completed (`Payload::Bytes` — the
    /// object's size; the event's category is [`CATEGORY`]).
    pub const CROSSING_DONE: &str = "wan.crossing.done";
    /// Event: a replica was placed at the destination site after a
    /// crossing (`Payload::Bytes`).
    pub const REPLICATED: &str = "wan.replicated";
    /// Sample: per-crossing transfer seconds.
    pub const CROSSING_SECS: &str = "wan.crossing_secs";
    /// Sample: per-crossing egress dollars.
    pub const EGRESS_USD: &str = "wan.egress_usd";
}

use std::sync::{Arc, Mutex};

use crate::time::{SimDuration, SimTime};

pub use event::{Event, Payload, SpanKind};
pub use intern::Key;
pub use span::{assemble, assemble_lenient, JobBreakdown, Phase, Span, SpanError, SpanSet};

use event::Fnv;

/// A cheap-to-clone handle to a shared, append-only event log.
///
/// Clones share the log (components across layers feed one episode's
/// telemetry). Whether the handle records is fixed at construction:
/// [`Telemetry::enabled`] records everything, [`Telemetry::disabled`]
/// (the [`Default`]) rejects everything on a branch without locking.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    /// Immutable after construction — the no-lock fast path for the
    /// disabled (default) case.
    enabled: bool,
    events: Arc<Mutex<Vec<Event>>>,
}

impl Telemetry {
    /// A handle that records everything.
    pub fn enabled() -> Telemetry {
        Telemetry {
            enabled: true,
            events: Arc::new(Mutex::new(Vec::new())),
        }
    }

    /// A handle that discards everything (zero overhead beyond the
    /// branch). Equivalent to [`Telemetry::default`].
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// Whether events are kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Append an event (no-op when disabled).
    pub fn emit(&self, event: Event) {
        if self.enabled {
            self.events
                .lock()
                .expect("telemetry lock poisoned")
                .push(event);
        }
    }

    /// Build and append an event in one call (no-op when disabled; the
    /// payload is only constructed after the enabled check when the
    /// caller uses a closure-free literal, which is the common case).
    pub fn record(&self, at: SimTime, category: &'static str, key: Key, payload: Payload) {
        self.emit(Event {
            at,
            category,
            key,
            payload,
        });
    }

    /// Open a lifecycle span (interns `key`; no-op when disabled).
    pub fn span_open(
        &self,
        at: SimTime,
        category: &'static str,
        key: &str,
        kind: SpanKind,
        id: u64,
    ) {
        if self.enabled {
            self.record(
                at,
                category,
                Key::intern(key),
                Payload::SpanOpen { kind, id },
            );
        }
    }

    /// Mark a phase boundary inside an open span, attributing `dur` to
    /// the phase (no-op when disabled).
    pub fn span_phase(
        &self,
        at: SimTime,
        category: &'static str,
        key: &str,
        kind: SpanKind,
        id: u64,
        dur: SimDuration,
    ) {
        if self.enabled {
            self.record(
                at,
                category,
                Key::intern(key),
                Payload::SpanPhase { kind, id, dur },
            );
        }
    }

    /// Close a lifecycle span (no-op when disabled).
    pub fn span_close(
        &self,
        at: SimTime,
        category: &'static str,
        key: &str,
        kind: SpanKind,
        id: u64,
    ) {
        if self.enabled {
            self.record(
                at,
                category,
                Key::intern(key),
                Payload::SpanClose { kind, id },
            );
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("telemetry lock poisoned").len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all events, in emission order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().expect("telemetry lock poisoned").clone()
    }

    /// Append all of `other`'s events to `self` (replica merge). The
    /// other log is left untouched.
    pub fn extend(&self, other: &Telemetry) {
        if !self.enabled {
            return;
        }
        let snapshot = other.events();
        self.events
            .lock()
            .expect("telemetry lock poisoned")
            .extend(snapshot);
    }

    /// An independent deep copy (same records, separate storage) that
    /// keeps recording even if `self` keeps growing.
    pub fn snapshot(&self) -> Telemetry {
        Telemetry {
            enabled: self.enabled,
            events: Arc::new(Mutex::new(self.events())),
        }
    }

    /// A stable digest of the log: streaming FNV-1a over every event's
    /// typed encoding, seeded with the record count. Key *names* are
    /// hashed (never interning-order ids), so the digest is invariant
    /// across thread counts and interning orders — the determinism suite
    /// compares it across `--threads` settings.
    pub fn digest(&self) -> u64 {
        let g = self.events.lock().expect("telemetry lock poisoned");
        let mut h = Fnv::new();
        h.u64(g.len() as u64);
        for e in g.iter() {
            e.fold_digest(&mut h);
        }
        h.0
    }

    /// Render the whole log as text, one event per line.
    pub fn render(&self) -> String {
        let g = self.events.lock().expect("telemetry lock poisoned");
        let mut out = String::new();
        for e in g.iter() {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }

    /// Assemble lifecycle spans from the log, tolerating still-open
    /// spans. See [`span::assemble_lenient`].
    pub fn spans(&self) -> Result<SpanSet, SpanError> {
        assemble_lenient(&self.events())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    #[test]
    fn disabled_handle_discards_without_locking_poison() {
        let tel = Telemetry::disabled();
        tel.record(
            t(1),
            "test",
            Key::intern("telemetry.mod.x"),
            Payload::Count(1),
        );
        assert!(tel.is_empty());
        assert!(!tel.is_enabled());
    }

    #[test]
    fn clones_share_the_log() {
        let tel = Telemetry::enabled();
        let other = tel.clone();
        other.record(
            t(1),
            "test",
            Key::intern("telemetry.mod.shared"),
            Payload::None,
        );
        assert_eq!(tel.len(), 1);
    }

    #[test]
    fn snapshot_is_independent() {
        let tel = Telemetry::enabled();
        tel.record(t(1), "test", Key::intern("telemetry.mod.a"), Payload::None);
        let snap = tel.snapshot();
        tel.record(t(2), "test", Key::intern("telemetry.mod.b"), Payload::None);
        assert_eq!(snap.len(), 1);
        assert_eq!(tel.len(), 2);
    }

    #[test]
    fn digest_is_stable_and_sensitive() {
        let build = |n: u64| {
            let tel = Telemetry::enabled();
            for i in 0..n {
                tel.record(
                    t(i),
                    "test",
                    Key::intern("telemetry.mod.tick"),
                    Payload::Count(i),
                );
            }
            tel
        };
        assert_eq!(build(5).digest(), build(5).digest());
        assert_ne!(build(5).digest(), build(6).digest());
    }

    #[test]
    fn extend_appends_in_order() {
        let a = Telemetry::enabled();
        let b = Telemetry::enabled();
        a.record(
            t(1),
            "test",
            Key::intern("telemetry.mod.one"),
            Payload::None,
        );
        b.record(
            t(2),
            "test",
            Key::intern("telemetry.mod.two"),
            Payload::None,
        );
        a.extend(&b);
        assert_eq!(a.len(), 2);
        let all = a.events();
        assert_eq!(all[1].at, t(2));
    }

    #[test]
    fn render_lists_every_event() {
        let tel = Telemetry::enabled();
        tel.record(
            t(1),
            "cloud",
            Key::intern("telemetry.mod.boot"),
            Payload::Duration(SimDuration::from_secs(42)),
        );
        let r = tel.render();
        assert_eq!(r.lines().count(), 1);
        assert!(r.contains("telemetry.mod.boot"));
        assert!(r.contains("dur=42s"));
    }
}

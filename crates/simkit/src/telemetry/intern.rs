//! Process-wide interning of telemetry names.
//!
//! Both event keys ([`Key`]) and metric names
//! ([`MetricId`](crate::metrics::MetricId)) resolve to small integer
//! handles through tables of this shape. Interning happens once per
//! distinct name for the whole process; after that, carrying a name
//! around is a `u32` copy and comparing two names is an integer compare.
//!
//! The numeric ids depend on interning *order*, which differs between
//! runs that touch names in different sequences (parallel sweeps, test
//! interleavings). They are therefore an implementation detail: anything
//! user-visible or digest-relevant resolves the name string instead.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// A shared name-interning table: names in insertion order plus a
/// borrowed-key index, so lookups of existing names never allocate.
pub(crate) struct NameTable {
    names: Vec<&'static str>,
    by_name: HashMap<&'static str, u32>,
}

impl NameTable {
    pub(crate) fn new() -> Self {
        NameTable {
            names: Vec::new(),
            by_name: HashMap::new(),
        }
    }

    /// Id of `name`, interning it on first sight. The borrow-first lookup
    /// means a hit costs one hash probe and zero allocations; only the
    /// first insertion of a name leaks one boxed copy of it.
    pub(crate) fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
        self.names.push(leaked);
        self.by_name.insert(leaked, id);
        id
    }

    /// Id of `name` if it has ever been interned (never grows the table).
    pub(crate) fn find(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// The name behind an id.
    pub(crate) fn name(&self, id: u32) -> &'static str {
        self.names[id as usize]
    }
}

fn key_table() -> &'static Mutex<NameTable> {
    static TABLE: OnceLock<Mutex<NameTable>> = OnceLock::new();
    TABLE.get_or_init(|| Mutex::new(NameTable::new()))
}

/// An interned telemetry event name, e.g. `"job.submitted"`.
///
/// Keys are process-wide and case-sensitive (unlike ClassAd symbols).
/// Comparing keys is an integer compare; rendering resolves the name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(u32);

impl Key {
    /// Intern a name (idempotent; cheap after the first call).
    pub fn intern(name: &str) -> Key {
        let mut tab = key_table().lock().expect("key table poisoned");
        Key(tab.intern(name))
    }

    /// Look up a name without interning it.
    pub fn find(name: &str) -> Option<Key> {
        let tab = key_table().lock().expect("key table poisoned");
        tab.find(name).map(Key)
    }

    /// The interned name.
    pub fn name(self) -> &'static str {
        let tab = key_table().lock().expect("key table poisoned");
        tab.name(self.0)
    }
}

impl fmt::Debug for Key {
    // Show the name, not the interning-order-dependent id.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({:?})", self.name())
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_case_sensitive() {
        let a = Key::intern("telemetry.test.alpha");
        let b = Key::intern("telemetry.test.alpha");
        let c = Key::intern("telemetry.test.Alpha");
        assert_eq!(a, b);
        assert_ne!(a, c, "keys are case-sensitive");
        assert_eq!(a.name(), "telemetry.test.alpha");
        assert_eq!(c.name(), "telemetry.test.Alpha");
    }

    #[test]
    fn find_never_grows_the_table() {
        assert_eq!(Key::find("telemetry.test.never-interned"), None);
        let k = Key::intern("telemetry.test.beta");
        assert_eq!(Key::find("telemetry.test.beta"), Some(k));
    }

    #[test]
    fn debug_and_display_show_the_name() {
        let k = Key::intern("telemetry.test.gamma");
        assert_eq!(format!("{k}"), "telemetry.test.gamma");
        assert_eq!(format!("{k:?}"), "Key(\"telemetry.test.gamma\")");
    }
}

//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulation draws from a named stream
//! derived from a single master seed. Deriving streams by *name* (rather than
//! by creation order) means adding a new random component never perturbs the
//! draws seen by existing components — the classic "common random numbers"
//! discipline for comparable experiments.

/// xoshiro256++ — a small, fast, well-tested PRNG implemented locally so the
/// kernel has zero external dependencies (the build environment is offline).
/// Not cryptographic; plenty for Monte-Carlo simulation.
#[derive(Clone)]
struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed the full 256-bit state from a 64-bit seed via SplitMix64, as
    /// recommended by the xoshiro authors.
    fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
            *slot = splitmix64(z);
        }
        // All-zero state would be a fixed point; splitmix64 of distinct
        // increments cannot produce it, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9e37_79b9_7f4a_7c15;
        }
        Xoshiro256 { s }
    }

    fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }
}

/// A named, seeded random stream.
///
/// Wraps a locally-implemented xoshiro256++ generator and adds the handful
/// of distributions the simulator needs. Cloning snapshots the stream:
/// the clone replays the identical tail independently of the original.
#[derive(Clone)]
pub struct RngStream {
    rng: Xoshiro256,
    name: String,
}

impl std::fmt::Debug for RngStream {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RngStream")
            .field("name", &self.name)
            .finish()
    }
}

/// FNV-1a, used to mix the master seed with a stream name. Stable across
/// platforms and Rust versions (unlike `DefaultHasher`).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer: turns a correlated 64-bit input into a well-mixed
/// seed value.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl RngStream {
    /// Derive a stream from `master_seed` and a stable `name`.
    pub fn derive(master_seed: u64, name: &str) -> Self {
        let mixed = splitmix64(master_seed ^ fnv1a(name.as_bytes()));
        RngStream {
            rng: Xoshiro256::seed_from_u64(mixed),
            name: name.to_string(),
        }
    }

    /// Derive a stream scoped to a site (or any other deterministic
    /// partition): draws under one scope are decorrelated from the same
    /// `name` under every other scope, and — critically for federated
    /// experiments — adding or removing a site never perturbs the streams
    /// of the sites that remain, because each scope mixes its own label
    /// into the seed rather than consuming from a shared sequence.
    pub fn derive_scoped(master_seed: u64, scope: &str, name: &str) -> Self {
        let scoped_seed = splitmix64(master_seed ^ fnv1a(scope.as_bytes()));
        let mixed = splitmix64(scoped_seed ^ fnv1a(name.as_bytes()));
        RngStream {
            rng: Xoshiro256::seed_from_u64(mixed),
            name: format!("{scope}/{name}"),
        }
    }

    /// The stream's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        // 53 high-quality bits into the mantissa: uniform over [0, 1).
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`. Requires `lo <= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "uniform_range requires lo <= hi");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[lo, hi]` inclusive (unbiased via rejection).
    pub fn uniform_int(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi);
        let span = hi - lo;
        if span == u64::MAX {
            return self.rng.next_u64();
        }
        let range = span + 1;
        // Reject draws below the threshold so the modulo is unbiased.
        let threshold = range.wrapping_neg() % range;
        loop {
            let x = self.rng.next_u64();
            if x >= threshold {
                return lo + (x % range);
            }
        }
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Exponential draw with the given mean (inverse rate). A non-positive
    /// mean yields zero.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse CDF; 1 - U avoids ln(0).
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Standard normal draw (Box–Muller; one value per call, the pair's
    /// second value is discarded to keep the stream's consumption pattern
    /// simple and stable).
    pub fn standard_normal(&mut self) -> f64 {
        let u1: f64 = 1.0 - self.uniform(); // (0, 1]
        let u2: f64 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with mean and standard deviation.
    pub fn normal(&mut self, mean: f64, sd: f64) -> f64 {
        mean + sd * self.standard_normal()
    }

    /// Log-normal draw parameterized by the *underlying* normal's mean/sd.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Poisson draw (Knuth's method for small lambda, normal approximation
    /// above 30 to stay O(1)).
    pub fn poisson(&mut self, lambda: f64) -> u64 {
        if lambda <= 0.0 {
            return 0;
        }
        if lambda > 30.0 {
            let x = self.normal(lambda, lambda.sqrt()).round();
            return if x < 0.0 { 0 } else { x as u64 };
        }
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.uniform();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }

    /// Multiplicative jitter: a factor in `[1-spread, 1+spread]`.
    /// `spread = 0` returns exactly 1.0.
    pub fn jitter(&mut self, spread: f64) -> f64 {
        if spread <= 0.0 {
            1.0
        } else {
            self.uniform_range(1.0 - spread, 1.0 + spread)
        }
    }

    /// Choose one element of a non-empty slice uniformly.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "choose from empty slice");
        &items[self.uniform_int(0, items.len() as u64 - 1) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        let n = items.len();
        if n < 2 {
            return;
        }
        for i in (1..n).rev() {
            let j = self.uniform_int(0, i as u64) as usize;
            items.swap(i, j);
        }
    }

    /// Raw 64-bit draw, for components that roll their own distribution.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

/// A factory handing out named [`RngStream`]s from one master seed.
#[derive(Debug, Clone, Copy)]
pub struct SeedFactory {
    master_seed: u64,
}

impl SeedFactory {
    /// Create a factory with the given master seed.
    pub fn new(master_seed: u64) -> Self {
        SeedFactory { master_seed }
    }

    /// The master seed.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Derive the named stream.
    pub fn stream(&self, name: &str) -> RngStream {
        RngStream::derive(self.master_seed, name)
    }

    /// Derive a child factory (useful for per-replica seeding).
    pub fn child(&self, index: u64) -> SeedFactory {
        SeedFactory::new(splitmix64(self.master_seed ^ splitmix64(index)))
    }

    /// Derive a factory scoped to a named partition (a federation site,
    /// a tenant, …). `scoped(s).stream(n)` equals
    /// [`RngStream::derive_scoped`]`(seed, s, n)` up to the stream's
    /// display name, so site-local components can keep using the plain
    /// factory API.
    pub fn scoped(&self, scope: &str) -> SeedFactory {
        SeedFactory::new(splitmix64(self.master_seed ^ fnv1a(scope.as_bytes())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_name_same_draws() {
        let mut a = RngStream::derive(7, "boot");
        let mut b = RngStream::derive(7, "boot");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_names_decorrelate() {
        let mut a = RngStream::derive(7, "boot");
        let mut b = RngStream::derive(7, "transfer");
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_is_in_unit_interval() {
        let mut r = RngStream::derive(1, "u");
        for _ in 0..1000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut r = RngStream::derive(2, "exp");
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean={mean}");
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.exponential(-1.0), 0.0);
    }

    #[test]
    fn normal_moments_are_close() {
        let mut r = RngStream::derive(3, "norm");
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(10.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean={mean}");
        assert!((var - 4.0).abs() < 0.25, "var={var}");
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut r = RngStream::derive(4, "pois");
        for lambda in [0.5, 4.0, 50.0] {
            let n = 10_000;
            let mean: f64 = (0..n).map(|_| r.poisson(lambda) as f64).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.1,
                "lambda={lambda} mean={mean}"
            );
        }
        assert_eq!(r.poisson(0.0), 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::derive(5, "b");
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn jitter_bounds() {
        let mut r = RngStream::derive(6, "j");
        for _ in 0..1000 {
            let f = r.jitter(0.1);
            assert!((0.9..=1.1).contains(&f));
        }
        assert_eq!(r.jitter(0.0), 1.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = RngStream::derive(8, "s");
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn scoped_streams_decorrelate_and_stay_stable() {
        // Same (seed, scope, name) replays identically.
        let mut a = RngStream::derive_scoped(7, "site-east", "arrivals");
        let mut b = RngStream::derive_scoped(7, "site-east", "arrivals");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert_eq!(a.name(), "site-east/arrivals");
        // Different scopes decorrelate the same stream name.
        let mut c = RngStream::derive_scoped(7, "site-west", "arrivals");
        let same = (0..64).filter(|_| b.next_u64() == c.next_u64()).count();
        assert_eq!(same, 0);
        // The factory's scoped() matches derive_scoped draw-for-draw.
        let mut d = SeedFactory::new(7).scoped("site-east").stream("arrivals");
        let mut e = RngStream::derive_scoped(7, "site-east", "arrivals");
        for _ in 0..64 {
            assert_eq!(d.next_u64(), e.next_u64());
        }
    }

    #[test]
    fn factory_children_differ() {
        let f = SeedFactory::new(99);
        let mut a = f.child(0).stream("x");
        let mut b = f.child(1).stream("x");
        assert_ne!(a.next_u64(), b.next_u64());
        // Children are deterministic.
        let mut a2 = f.child(0).stream("x");
        assert_eq!(
            RngStream::derive(f.child(0).master_seed(), "x").next_u64(),
            a2.next_u64()
        );
    }
}

//! Summary statistics over samples collected during a simulation run.

/// Online mean/variance accumulator (Welford's algorithm) that also retains
/// samples for exact percentile queries.
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<f64>,
    mean: f64,
    m2: f64,
}

impl Samples {
    /// An empty accumulator.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Record one sample. Non-finite values are rejected (and counted as
    /// model bugs in debug builds).
    pub fn record(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "non-finite sample: {x}");
        if !x.is_finite() {
            return;
        }
        self.values.push(x);
        let n = self.values.len() as f64;
        let delta = x - self.mean;
        self.mean += delta / n;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.values.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (!self.is_empty()).then_some(self.mean)
    }

    /// Sample variance (n-1 denominator), or `None` with fewer than two
    /// samples.
    pub fn variance(&self) -> Option<f64> {
        (self.values.len() >= 2).then(|| self.m2 / (self.values.len() as f64 - 1.0))
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Minimum sample.
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }

    /// Maximum sample.
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Sum of samples.
    pub fn sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Exact percentile via linear interpolation between order statistics
    /// (the same rule as numpy's default). `q` is in `[0, 100]`.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.values.is_empty() {
            return None;
        }
        assert!((0.0..=100.0).contains(&q), "percentile out of range: {q}");
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite samples"));
        let rank = q / 100.0 * (sorted.len() as f64 - 1.0);
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.percentile(50.0)
    }

    /// Borrow the raw samples in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &Samples) {
        for &v in &other.values {
            self.record(v);
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        match self.mean() {
            None => "n=0".to_string(),
            Some(mean) => format!(
                "n={} mean={:.4} sd={:.4} min={:.4} p50={:.4} p95={:.4} max={:.4}",
                self.count(),
                mean,
                self.std_dev().unwrap_or(0.0),
                self.min().unwrap(),
                self.median().unwrap(),
                self.percentile(95.0).unwrap(),
                self.max().unwrap(),
            ),
        }
    }
}

/// Relative error `|measured - expected| / |expected|`; useful for
/// paper-vs-measured assertions. `expected == 0` falls back to absolute error.
pub fn relative_error(measured: f64, expected: f64) -> f64 {
    if expected == 0.0 {
        measured.abs()
    } else {
        (measured - expected).abs() / expected.abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator_is_all_none() {
        let s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.variance(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.summary(), "n=0");
    }

    #[test]
    fn mean_and_variance_match_formulas() {
        let mut s = Samples::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean().unwrap() - 5.0).abs() < 1e-12);
        // Sample variance with n-1 = 32/7.
        assert!((s.variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let mut s = Samples::new();
        for x in [10.0, 20.0, 30.0, 40.0] {
            s.record(x);
        }
        assert_eq!(s.percentile(0.0), Some(10.0));
        assert_eq!(s.percentile(100.0), Some(40.0));
        assert_eq!(s.median(), Some(25.0));
        assert!((s.percentile(25.0).unwrap() - 17.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_statistics() {
        let mut s = Samples::new();
        s.record(3.0);
        assert_eq!(s.mean(), Some(3.0));
        assert_eq!(s.variance(), None);
        assert_eq!(s.median(), Some(3.0));
    }

    #[test]
    fn merge_is_equivalent_to_recording() {
        let mut a = Samples::new();
        let mut b = Samples::new();
        let mut all = Samples::new();
        for x in 0..10 {
            a.record(x as f64);
            all.record(x as f64);
        }
        for x in 10..20 {
            b.record(x as f64);
            all.record(x as f64);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.mean(), all.mean());
        assert_eq!(a.variance(), all.variance());
    }

    #[test]
    fn relative_error_behaviour() {
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(0.5, 0.0), 0.5);
    }
}

//! `cumulus-simkit` — a deterministic discrete-event simulation (DES) kernel.
//!
//! This crate is the foundation of the `cumulus` reproduction of
//! *"Deploying Bioinformatics Workflows on Clouds with Galaxy and Globus
//! Provision"* (SC 2012). Every higher-level subsystem — the EC2-like cloud,
//! the Chef-like configuration engine, the Condor-like scheduler, the
//! GridFTP/FTP/HTTP transfer models, and the Galaxy-like workflow platform —
//! runs as event handlers inside the [`Sim`] engine defined here.
//!
//! Design pillars:
//!
//! * **Determinism.** Virtual time only ([`SimTime`]), stable tie-breaking in
//!   the event queue, and named random streams ([`RngStream`]) derived from a
//!   single master seed. Two runs with the same seed produce identical event
//!   traces, and the parallel replica runner preserves this property.
//! * **Speed.** The event queue is a slab of reusable handler slots ordered
//!   by a compact index heap, fronted by a near-future bucket ring that
//!   absorbs dense small-delay scheduling (recurring ticks, service chains)
//!   in O(1); cancellation is an O(1) generation-counter flip. See
//!   [`engine`] for the internals.
//! * **Simplicity over framework-ness.** Events are plain `FnOnce(&mut
//!   Sim<W>)` closures; the world `W` is an ordinary struct owned by the
//!   engine. No actor runtime, no async.
//! * **Measurability.** Every subsystem reports what happened through one
//!   typed [`telemetry`] plane: interned-key [`telemetry::Event`] records
//!   feeding lifecycle spans, derived metrics, and episode reports.
//!   [`Metrics`] and [`TraceLog`] are thin adapters over it; [`Samples`]
//!   summarizes.
//!
//! # Quick example
//!
//! ```
//! use cumulus_simkit::prelude::*;
//!
//! struct World { arrivals: u32 }
//!
//! let mut sim = Sim::new(World { arrivals: 0 });
//! sim.schedule_in(SimDuration::from_secs(5), |sim| {
//!     sim.world.arrivals += 1;
//!     sim.schedule_in(SimDuration::from_secs(5), |sim| sim.world.arrivals += 1);
//! });
//! sim.run_to_completion();
//! assert_eq!(sim.world.arrivals, 2);
//! assert_eq!(sim.now().as_secs(), 10);
//! ```

#![warn(missing_docs)]

pub mod disrupt;
pub mod engine;
pub mod metrics;
pub mod retry;
pub mod rng;
pub mod runner;
pub mod stats;
pub mod telemetry;
pub mod time;
pub mod trace;

pub use disrupt::{Disruptable, Disruption, DisruptionKind, DisruptionPlan, InvalidWindow, Window};
pub use engine::{EventId, RunOutcome, Sim};
pub use metrics::{MetricId, Metrics};
pub use retry::{DeadLetterReason, RetryDecision, RetryPolicy, RetryState};
pub use rng::{RngStream, SeedFactory};
pub use runner::{run_replicas, ReplicaPlan};
pub use stats::{relative_error, Samples};
pub use telemetry::{Event, JobBreakdown, Key, Payload, Span, SpanKind, SpanSet, Telemetry};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceLog, TraceRecord};

/// Convenient glob-import of the types nearly every model needs.
pub mod prelude {
    pub use crate::disrupt::{
        Disruptable, Disruption, DisruptionKind, DisruptionPlan, InvalidWindow, Window,
    };
    pub use crate::engine::{EventId, RunOutcome, Sim};
    pub use crate::metrics::{MetricId, Metrics};
    pub use crate::rng::{RngStream, SeedFactory};
    pub use crate::stats::Samples;
    pub use crate::telemetry::{Event, Key, Payload, SpanKind, Telemetry};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::trace::TraceLog;
}

//! The discrete-event simulation engine.
//!
//! A [`Sim<W>`] owns an arbitrary *world* `W` plus a pending-event queue.
//! Event handlers are `FnOnce(&mut Sim<W>)` closures: when an event fires, the
//! handler receives the whole simulation, so it can inspect and mutate the
//! world **and** schedule follow-up events. This is the classic
//! event-scheduling world view of discrete-event simulation.
//!
//! Determinism guarantees:
//! * events at equal timestamps fire in the order they were scheduled
//!   (a monotone sequence number breaks ties);
//! * no wall-clock time or OS entropy is consulted anywhere in the kernel;
//! * cancellation flips a per-slot generation counter, so it cannot perturb
//!   the firing order of the surviving events.
//!
//! # Queue internals
//!
//! Handlers live in a **slab** of reusable slots; the pending order is kept
//! in two side structures that store only compact `(time, seq, slot, gen)`
//! index entries, never the handlers themselves:
//!
//! * a **bucket ring** — a cyclic array of `RING_BUCKETS` one-microsecond
//!   buckets that absorbs every event scheduled less than `RING_BUCKETS` µs
//!   ahead of the clock in O(1) (the dominant pattern: recurring controller
//!   ticks, service-completion chains, back-to-back `schedule_now` work);
//! * a **far heap** — a binary min-heap of the same 24-byte entries for
//!   everything beyond the ring's window.
//!
//! Firing pops the earlier of the two tiers (ties broken by sequence
//! number, so FIFO-within-timestamp holds across tiers). Cancellation bumps
//! the slot's generation counter and drops the handler immediately; index
//! entries whose generation no longer matches are purged lazily when the
//! scan or the heap reaches them. See DESIGN.md "Event-queue internals".

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Number of one-microsecond buckets in the near-future ring. Must be a
/// power of two. Events scheduled less than this many microseconds ahead
/// of the clock go to the ring; everything else goes to the far heap.
const RING_BUCKETS: usize = 1024;
const RING_MASK: u64 = (RING_BUCKETS - 1) as u64;
const RING_SPAN_US: u64 = RING_BUCKETS as u64;

/// Opaque handle to a scheduled event; used for cancellation.
///
/// Ordering follows schedule order (the internal sequence number), so ids
/// can be sorted to recover the order in which events were scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId {
    seq: u64,
    slot: u32,
    gen: u32,
}

impl EventId {
    /// The raw sequence number (unique per simulation run).
    pub fn raw(self) -> u64 {
        self.seq
    }
}

type Handler<W> = Box<dyn FnOnce(&mut Sim<W>)>;

/// One slab slot: the boxed handler plus the generation counter that makes
/// stale index entries (fired or cancelled) detectable in O(1).
struct Slot<W> {
    gen: u32,
    handler: Option<Handler<W>>,
}

/// A compact index entry: everything the ordering tiers need to know about
/// a pending event, without touching the handler.
#[derive(Debug, Clone, Copy)]
struct Entry {
    at_us: u64,
    seq: u64,
    slot: u32,
    gen: u32,
}

/// Far-heap wrapper: `BinaryHeap` is a max-heap, so invert the comparison
/// to pop the earliest `(time, seq)` first.
struct FarEntry(Entry);

impl PartialEq for FarEntry {
    fn eq(&self, other: &Self) -> bool {
        self.0.at_us == other.0.at_us && self.0.seq == other.0.seq
    }
}
impl Eq for FarEntry {}
impl PartialOrd for FarEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for FarEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .0
            .at_us
            .cmp(&self.0.at_us)
            .then_with(|| other.0.seq.cmp(&self.0.seq))
    }
}

/// One ring bucket: entries in insertion (= sequence) order, consumed from
/// `head`. All live entries in a bucket share the same firing time, because
/// live ring entries always lie within one window-length of the clock and
/// the window maps injectively onto the ring.
#[derive(Default)]
struct Bucket {
    entries: Vec<Entry>,
    head: usize,
}

impl Bucket {
    #[inline]
    fn exhausted(&self) -> bool {
        self.head == self.entries.len()
    }

    #[inline]
    fn reset_if_exhausted(&mut self) {
        if self.head > 0 && self.exhausted() {
            self.entries.clear();
            self.head = 0;
        }
    }
}

/// Which tier holds the next event (result of a successful peek).
#[derive(Clone, Copy, PartialEq, Eq)]
enum Tier {
    Ring,
    Far,
}

/// Why [`Sim::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    QueueEmpty,
    /// The time horizon passed; later events remain queued.
    HorizonReached,
    /// An event handler requested a halt via [`Sim::halt`].
    Halted,
    /// The step budget was exhausted (runaway-loop protection).
    StepBudgetExhausted,
}

/// A discrete-event simulation over world state `W`.
pub struct Sim<W> {
    now: SimTime,
    slots: Vec<Slot<W>>,
    free: Vec<u32>,
    ring: Vec<Bucket>,
    /// Entries (live + stale) currently in the ring.
    ring_len: usize,
    /// Ring scan cursor, in absolute microseconds. Invariant: no live ring
    /// entry fires before `max(scan_us, now)`.
    scan_us: u64,
    far: BinaryHeap<FarEntry>,
    next_seq: u64,
    /// Pending (scheduled, not yet fired, not cancelled) events.
    live: usize,
    /// Cancelled entries still lingering in the ring or the far heap.
    /// Fired entries leave their tier immediately, so when this is zero
    /// every queued index entry is live and generation checks can be
    /// skipped on the peek path.
    stale: usize,
    steps_executed: u64,
    halt: bool,
    /// The world under simulation. Public: event handlers and drivers
    /// manipulate it directly.
    pub world: W,
}

impl<W> Sim<W> {
    /// Create a simulation at time zero around `world`.
    pub fn new(world: W) -> Self {
        Sim {
            now: SimTime::ZERO,
            slots: Vec::new(),
            free: Vec::new(),
            ring: (0..RING_BUCKETS).map(|_| Bucket::default()).collect(),
            ring_len: 0,
            scan_us: 0,
            far: BinaryHeap::new(),
            next_seq: 0,
            live: 0,
            stale: 0,
            steps_executed: 0,
            halt: false,
            world,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    /// Number of events currently pending (scheduled, not yet fired, not
    /// cancelled). Exact: cancelled events leave no tombstone behind.
    pub fn pending_events(&self) -> usize {
        self.live
    }

    /// Schedule `handler` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling into the past would break
    /// causality and always indicates a model bug.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut Sim<W>) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        self.insert(at, Box::new(handler))
    }

    fn insert(&mut self, at: SimTime, handler: Handler<W>) -> EventId {
        let at_us = at.as_micros();
        let seq = self.next_seq;
        self.next_seq += 1;

        // Claim a slab slot, reusing a freed one when available.
        let slot = match self.free.pop() {
            Some(idx) => {
                self.slots[idx as usize].handler = Some(handler);
                idx
            }
            None => {
                assert!(
                    self.slots.len() < u32::MAX as usize,
                    "event slab exhausted (u32::MAX concurrent events)"
                );
                self.slots.push(Slot {
                    gen: 0,
                    handler: Some(handler),
                });
                (self.slots.len() - 1) as u32
            }
        };
        let gen = self.slots[slot as usize].gen;
        self.live += 1;

        let entry = Entry {
            at_us,
            seq,
            slot,
            gen,
        };
        if at_us - self.now.as_micros() < RING_SPAN_US {
            let bucket = &mut self.ring[(at_us & RING_MASK) as usize];
            bucket.reset_if_exhausted();
            bucket.entries.push(entry);
            self.ring_len += 1;
            if at_us < self.scan_us {
                self.scan_us = at_us;
            }
        } else {
            self.far.push(FarEntry(entry));
        }
        EventId { seq, slot, gen }
    }

    /// Schedule `handler` to fire `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        handler: impl FnOnce(&mut Sim<W>) + 'static,
    ) -> EventId {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, handler)
    }

    /// Schedule `handler` to fire at the current time, after all events
    /// already scheduled for this instant.
    pub fn schedule_now(&mut self, handler: impl FnOnce(&mut Sim<W>) + 'static) -> EventId {
        self.schedule_at(self.now, handler)
    }

    /// Schedule `handler` to fire at `start` and then every `interval`
    /// thereafter, for as long as it returns `true`. Returning `false`
    /// stops the recurrence (no further firing is queued).
    ///
    /// This is the standard shape of a periodic control loop — a metrics
    /// scraper, a Condor negotiator cycle, an autoscaler tick — written as
    /// a self-rescheduling event so it composes with ordinary events under
    /// the same determinism guarantees.
    ///
    /// Returns the [`EventId`] of the *first* firing; cancelling it before
    /// it fires cancels the whole recurrence.
    ///
    /// # Panics
    /// Panics if `interval` is zero (the recurrence would never advance
    /// time and instantly exhaust any step budget).
    pub fn schedule_every(
        &mut self,
        start: SimTime,
        interval: SimDuration,
        handler: impl FnMut(&mut Sim<W>) -> bool + 'static,
    ) -> EventId
    where
        W: 'static,
    {
        assert!(
            interval > SimDuration::ZERO,
            "recurring events need a positive interval"
        );
        /// A boxed recurring handler: fires, and re-queues while it
        /// returns `true`.
        type Recurring<W> = Box<dyn FnMut(&mut Sim<W>) -> bool>;
        fn fire<W: 'static>(sim: &mut Sim<W>, interval: SimDuration, mut handler: Recurring<W>) {
            if handler(sim) {
                sim.schedule_in(interval, move |sim| fire(sim, interval, handler));
            }
        }
        let boxed: Recurring<W> = Box::new(handler);
        self.schedule_at(start, move |sim| fire(sim, interval, boxed))
    }

    /// Cancel a pending event. Returns `true` if the event had not yet fired
    /// or been cancelled. Cancelling an already-fired event is a no-op (and
    /// reports `false`).
    ///
    /// Cancellation is O(1): the handler is dropped immediately and the
    /// slot's generation counter is bumped, which invalidates whatever
    /// index entry still points at the slot.
    pub fn cancel(&mut self, id: EventId) -> bool {
        let Some(slot) = self.slots.get_mut(id.slot as usize) else {
            return false;
        };
        if slot.gen != id.gen || slot.handler.is_none() {
            return false; // already fired, already cancelled, or foreign id
        }
        slot.handler = None;
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(id.slot);
        self.live -= 1;
        self.stale += 1;
        true
    }

    /// Request that the run loop stop after the current event completes.
    pub fn halt(&mut self) {
        self.halt = true;
    }

    /// Position [`scan_us`](Sim::scan_us) on the ring bucket holding the
    /// earliest live ring entry and return its `(time, seq)`, purging stale
    /// entries on the way. `None` when the ring holds no live entry.
    fn ring_peek(&mut self) -> Option<(u64, u64)> {
        if self.ring_len == 0 {
            return None;
        }
        let now_us = self.now.as_micros();
        if self.scan_us < now_us {
            self.scan_us = now_us;
        }
        // Every live ring entry fires within [now, now + RING_SPAN_US), so
        // one full sweep of the ring must find one (or purge everything).
        for _ in 0..=RING_BUCKETS {
            let bucket = &mut self.ring[(self.scan_us & RING_MASK) as usize];
            while let Some(entry) = bucket.entries.get(bucket.head) {
                if self.stale == 0 || self.slots[entry.slot as usize].gen == entry.gen {
                    debug_assert_eq!(
                        entry.at_us, self.scan_us,
                        "live ring entry outside its bucket's time"
                    );
                    return Some((entry.at_us, entry.seq));
                }
                bucket.head += 1; // stale: purge lazily
                self.ring_len -= 1;
                self.stale -= 1;
            }
            bucket.reset_if_exhausted();
            if self.ring_len == 0 {
                return None;
            }
            self.scan_us += 1;
        }
        unreachable!("ring scan swept the full window without finding a live entry");
    }

    /// Peek the earliest live far-heap entry, popping stale ones.
    fn far_peek(&mut self) -> Option<(u64, u64)> {
        while let Some(top) = self.far.peek() {
            let entry = top.0;
            if self.stale == 0 || self.slots[entry.slot as usize].gen == entry.gen {
                return Some((entry.at_us, entry.seq));
            }
            self.far.pop();
            self.stale -= 1;
        }
        None
    }

    /// The earliest pending event across both tiers, without consuming it.
    fn peek_next(&mut self) -> Option<(u64, u64, Tier)> {
        let ring = self.ring_peek();
        let far = self.far_peek();
        match (ring, far) {
            (None, None) => None,
            (Some((at, seq)), None) => Some((at, seq, Tier::Ring)),
            (None, Some((at, seq))) => Some((at, seq, Tier::Far)),
            (Some((rat, rseq)), Some((fat, fseq))) => {
                if (rat, rseq) < (fat, fseq) {
                    Some((rat, rseq, Tier::Ring))
                } else {
                    Some((fat, fseq, Tier::Far))
                }
            }
        }
    }

    /// Remove the entry a successful [`peek_next`](Sim::peek_next) found.
    /// Must be called with no intervening queue mutation.
    fn take_peeked(&mut self, tier: Tier) -> Entry {
        match tier {
            Tier::Ring => {
                let bucket = &mut self.ring[(self.scan_us & RING_MASK) as usize];
                let entry = bucket.entries[bucket.head];
                bucket.head += 1;
                self.ring_len -= 1;
                entry
            }
            Tier::Far => self.far.pop().expect("peeked").0,
        }
    }

    /// Fire one popped entry: release its slot, advance the clock, run the
    /// handler.
    fn execute(&mut self, entry: Entry) {
        let slot = &mut self.slots[entry.slot as usize];
        debug_assert_eq!(slot.gen, entry.gen, "popped a stale entry");
        let handler = slot.handler.take().expect("live slot holds a handler");
        slot.gen = slot.gen.wrapping_add(1);
        self.free.push(entry.slot);
        self.live -= 1;
        debug_assert!(
            entry.at_us >= self.now.as_micros(),
            "event queue time went backwards"
        );
        self.now = SimTime::from_micros(entry.at_us);
        self.steps_executed += 1;
        handler(self);
    }

    /// Execute the single next event, if any. Returns `false` when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        let Some((_, _, tier)) = self.peek_next() else {
            return false;
        };
        let entry = self.take_peeked(tier);
        self.execute(entry);
        true
    }

    /// Run until the queue drains, `horizon` passes, a handler calls
    /// [`halt`](Sim::halt), or `max_steps` events have executed.
    pub fn run(&mut self, horizon: SimTime, max_steps: u64) -> RunOutcome {
        self.halt = false;
        let mut budget = max_steps;
        loop {
            if self.halt {
                return RunOutcome::Halted;
            }
            if budget == 0 {
                return RunOutcome::StepBudgetExhausted;
            }
            // Peek to honour the horizon without consuming the event; the
            // same peek positions the pop, so each event is located once.
            match self.peek_next() {
                None => return RunOutcome::QueueEmpty,
                Some((at_us, _, _)) if at_us > horizon.as_micros() => {
                    return RunOutcome::HorizonReached;
                }
                Some((_, _, tier)) => {
                    let entry = self.take_peeked(tier);
                    self.execute(entry);
                    budget -= 1;
                }
            }
        }
    }

    /// Run until the queue drains (with a generous step budget).
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run(SimTime::MAX, u64::MAX)
    }

    /// Advance simulated time to `at` even if no event is scheduled there.
    /// Useful for "the experiment ends at t" bookkeeping. Events scheduled
    /// before `at` are *not* executed; prefer [`run`](Sim::run) first.
    pub fn fast_forward(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot fast-forward into the past");
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    fn s(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(World::default());
        sim.schedule_at(s(30), |sim| {
            sim.world.log.push((sim.now().as_micros(), "c"))
        });
        sim.schedule_at(s(10), |sim| {
            sim.world.log.push((sim.now().as_micros(), "a"))
        });
        sim.schedule_at(s(20), |sim| {
            sim.world.log.push((sim.now().as_micros(), "b"))
        });
        assert_eq!(sim.run_to_completion(), RunOutcome::QueueEmpty);
        assert_eq!(sim.world.log, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut sim = Sim::new(World::default());
        for (i, name) in ["first", "second", "third"].into_iter().enumerate() {
            let _ = i;
            sim.schedule_at(s(5), move |sim| sim.world.log.push((5, name)));
        }
        sim.run_to_completion();
        let names: Vec<_> = sim.world.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn ties_break_by_schedule_order_across_tiers() {
        // The same timestamp reached through the ring (scheduled when it
        // was near) and the far heap (scheduled when it was far) must still
        // fire in schedule order.
        let mut sim = Sim::new(World::default());
        let t = RING_SPAN_US + 50;
        sim.schedule_at(s(t), |sim| sim.world.log.push((0, "far-first"))); // far tier
        sim.schedule_at(s(1), move |sim| {
            // now = 1: t is still beyond the window? t - 1 > RING_SPAN_US,
            // so this one lands in the far heap too...
            sim.world.log.push((1, "early"));
            sim.schedule_at(s(t), |sim| sim.world.log.push((0, "far-second")));
        });
        sim.schedule_at(s(t - 10), move |sim| {
            // now = t-10: t is 10 µs ahead → ring tier.
            sim.world.log.push((2, "near"));
            sim.schedule_at(s(t), |sim| sim.world.log.push((0, "ring-third")));
        });
        sim.run_to_completion();
        let names: Vec<_> = sim.world.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(
            names,
            vec!["early", "near", "far-first", "far-second", "ring-third"]
        );
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut sim = Sim::new(World::default());
        sim.schedule_at(s(10), |sim| {
            sim.world.log.push((sim.now().as_micros(), "start"));
            sim.schedule_in(SimDuration::from_micros(15), |sim| {
                sim.world.log.push((sim.now().as_micros(), "end"));
            });
        });
        sim.run_to_completion();
        assert_eq!(sim.world.log, vec![(10, "start"), (25, "end")]);
    }

    #[test]
    fn cancellation_prevents_firing() {
        let mut sim = Sim::new(World::default());
        let id = sim.schedule_at(s(10), |sim| sim.world.log.push((10, "cancelled")));
        sim.schedule_at(s(20), |sim| sim.world.log.push((20, "kept")));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel reports false");
        sim.run_to_completion();
        assert_eq!(sim.world.log, vec![(20, "kept")]);
    }

    #[test]
    fn cancel_far_event_prevents_firing() {
        let mut sim = Sim::new(World::default());
        let id = sim.schedule_at(s(10_000_000), |sim| sim.world.log.push((0, "cancelled")));
        sim.schedule_at(s(20_000_000), |sim| sim.world.log.push((0, "kept")));
        assert!(sim.cancel(id));
        sim.run_to_completion();
        assert_eq!(sim.world.log, vec![(0, "kept")]);
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim: Sim<World> = Sim::new(World::default());
        let foreign = EventId {
            seq: 999,
            slot: 999,
            gen: 0,
        };
        assert!(!sim.cancel(foreign));
    }

    #[test]
    fn cancel_after_fire_is_a_reported_noop() {
        // Regression: cancelling an already-fired event used to insert a
        // permanent tombstone, making pending_events() drift (and underflow
        // once the drift exceeded the queue length). The slab generation
        // check makes the cancel a true no-op.
        let mut sim = Sim::new(World::default());
        let id = sim.schedule_at(s(10), |sim| sim.world.log.push((10, "fired")));
        sim.run_to_completion();
        assert_eq!(sim.pending_events(), 0);
        assert!(!sim.cancel(id), "cancel after fire must report false");
        assert_eq!(sim.pending_events(), 0, "no tombstone drift");
        // The count must stay exact afterwards — this underflowed before.
        sim.schedule_at(s(20), |_| {});
        assert_eq!(sim.pending_events(), 1);
        sim.run_to_completion();
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn slot_reuse_does_not_confuse_cancellation() {
        // A stale EventId whose slot has been recycled must not cancel the
        // new occupant.
        let mut sim = Sim::new(World::default());
        let old = sim.schedule_at(s(10), |sim| sim.world.log.push((10, "old")));
        assert!(sim.cancel(old));
        // The freed slot is reused by the next schedule.
        let _new = sim.schedule_at(s(20), |sim| sim.world.log.push((20, "new")));
        assert!(!sim.cancel(old), "stale id must not hit the recycled slot");
        sim.run_to_completion();
        assert_eq!(sim.world.log, vec![(20, "new")]);
    }

    #[test]
    fn horizon_stops_without_consuming() {
        let mut sim = Sim::new(World::default());
        sim.schedule_at(s(10), |sim| sim.world.log.push((10, "early")));
        sim.schedule_at(s(100), |sim| sim.world.log.push((100, "late")));
        assert_eq!(sim.run(s(50), u64::MAX), RunOutcome::HorizonReached);
        assert_eq!(sim.world.log, vec![(10, "early")]);
        assert_eq!(sim.pending_events(), 1);
        assert_eq!(sim.run_to_completion(), RunOutcome::QueueEmpty);
        assert_eq!(sim.world.log, vec![(10, "early"), (100, "late")]);
    }

    #[test]
    fn halt_stops_the_loop() {
        let mut sim = Sim::new(World::default());
        sim.schedule_at(s(10), |sim| {
            sim.world.log.push((10, "stop"));
            sim.halt();
        });
        sim.schedule_at(s(20), |sim| sim.world.log.push((20, "never")));
        assert_eq!(sim.run_to_completion(), RunOutcome::Halted);
        assert_eq!(sim.world.log, vec![(10, "stop")]);
    }

    #[test]
    fn step_budget_guards_runaway_loops() {
        let mut sim = Sim::new(World::default());
        // An event that perpetually reschedules itself.
        fn tick(sim: &mut Sim<World>) {
            sim.schedule_in(SimDuration::from_micros(1), tick);
        }
        sim.schedule_at(s(0), tick);
        assert_eq!(sim.run(SimTime::MAX, 1000), RunOutcome::StepBudgetExhausted);
        assert_eq!(sim.steps_executed(), 1000);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Sim::new(World::default());
        sim.schedule_at(s(10), |sim| {
            sim.schedule_at(s(5), |_| {});
        });
        sim.run_to_completion();
    }

    #[test]
    fn shared_state_via_rc_refcell_works() {
        // Handlers may capture external shared state too.
        let hits = Rc::new(RefCell::new(0));
        let mut sim = Sim::new(());
        for i in 0..5u64 {
            let hits = Rc::clone(&hits);
            sim.schedule_at(s(i), move |_| *hits.borrow_mut() += 1);
        }
        sim.run_to_completion();
        assert_eq!(*hits.borrow(), 5);
    }

    #[test]
    fn schedule_every_repeats_until_false() {
        let mut sim = Sim::new(World::default());
        sim.schedule_every(s(10), SimDuration::from_micros(5), |sim| {
            sim.world.log.push((sim.now().as_micros(), "tick"));
            sim.world.log.len() < 4
        });
        assert_eq!(sim.run_to_completion(), RunOutcome::QueueEmpty);
        let times: Vec<u64> = sim.world.log.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![10, 15, 20, 25]);
    }

    #[test]
    fn schedule_every_interleaves_with_other_events() {
        let mut sim = Sim::new(World::default());
        sim.schedule_every(s(0), SimDuration::from_micros(10), |sim| {
            sim.world.log.push((sim.now().as_micros(), "tick"));
            sim.now().as_micros() < 20
        });
        sim.schedule_at(s(15), |sim| sim.world.log.push((15, "mid")));
        sim.run_to_completion();
        assert_eq!(
            sim.world.log,
            vec![(0, "tick"), (10, "tick"), (15, "mid"), (20, "tick")]
        );
    }

    #[test]
    fn cancelling_first_firing_stops_recurrence() {
        let mut sim = Sim::new(World::default());
        let id = sim.schedule_every(s(10), SimDuration::from_micros(5), |sim| {
            sim.world.log.push((sim.now().as_micros(), "tick"));
            true
        });
        assert!(sim.cancel(id));
        assert_eq!(sim.run_to_completion(), RunOutcome::QueueEmpty);
        assert!(sim.world.log.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive interval")]
    fn zero_interval_recurrence_panics() {
        let mut sim: Sim<World> = Sim::new(World::default());
        sim.schedule_every(s(0), SimDuration::ZERO, |_| true);
    }

    #[test]
    fn fast_forward_advances_clock() {
        let mut sim: Sim<World> = Sim::new(World::default());
        sim.fast_forward(s(500));
        assert_eq!(sim.now(), s(500));
    }

    #[test]
    fn ring_wraps_across_its_window() {
        // Chain far past the ring span so buckets are reused many times.
        let mut sim = Sim::new((0u64, 5 * RING_SPAN_US));
        fn tick(sim: &mut Sim<(u64, u64)>) {
            sim.world.0 += 1;
            if sim.world.0 < sim.world.1 {
                sim.schedule_in(SimDuration::from_micros(3), tick);
            }
        }
        sim.schedule_now(tick);
        assert_eq!(sim.run_to_completion(), RunOutcome::QueueEmpty);
        assert_eq!(sim.world.0, 5 * RING_SPAN_US);
        assert_eq!(sim.now().as_micros(), (5 * RING_SPAN_US - 1) * 3);
    }

    #[test]
    fn events_exactly_on_the_window_boundary_fire_in_order() {
        let mut sim = Sim::new(World::default());
        // One event just inside the ring window, one exactly on the
        // boundary (far tier), one beyond — all from time zero.
        sim.schedule_at(s(RING_SPAN_US - 1), |sim| sim.world.log.push((0, "in")));
        sim.schedule_at(s(RING_SPAN_US), |sim| sim.world.log.push((0, "edge")));
        sim.schedule_at(s(RING_SPAN_US + 1), |sim| sim.world.log.push((0, "out")));
        sim.run_to_completion();
        let names: Vec<_> = sim.world.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["in", "edge", "out"]);
    }

    #[test]
    fn late_insert_behind_the_scan_cursor_still_fires() {
        // After the engine has peeked ahead (advancing the scan cursor), an
        // insert between `now` and the cursor must still be found.
        let mut sim = Sim::new(World::default());
        sim.schedule_at(s(0), |sim| sim.world.log.push((0, "first")));
        sim.schedule_at(s(100), |sim| sim.world.log.push((100, "later")));
        // Run past the first event; the ring scan has advanced toward 100.
        assert_eq!(sim.run(s(50), u64::MAX), RunOutcome::HorizonReached);
        // Insert behind the cursor.
        sim.schedule_at(s(30), |sim| sim.world.log.push((30, "behind")));
        sim.run_to_completion();
        assert_eq!(
            sim.world.log,
            vec![(0, "first"), (30, "behind"), (100, "later")]
        );
    }

    #[test]
    fn pending_count_stays_exact_under_churn() {
        let mut sim = Sim::new(0u32);
        let ids: Vec<EventId> = (0..100)
            .map(|i| sim.schedule_at(s(i), |sim: &mut Sim<u32>| sim.world += 1))
            .collect();
        assert_eq!(sim.pending_events(), 100);
        for id in ids.iter().take(50) {
            assert!(sim.cancel(*id));
        }
        assert_eq!(sim.pending_events(), 50);
        sim.run_to_completion();
        assert_eq!(sim.pending_events(), 0);
        assert_eq!(sim.world, 50);
        // Cancelling everything again (fired or cancelled) changes nothing.
        for id in &ids {
            assert!(!sim.cancel(*id));
        }
        assert_eq!(sim.pending_events(), 0);
    }
}

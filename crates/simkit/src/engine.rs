//! The discrete-event simulation engine.
//!
//! A [`Sim<W>`] owns an arbitrary *world* `W` plus a pending-event queue.
//! Event handlers are `FnOnce(&mut Sim<W>)` closures: when an event fires, the
//! handler receives the whole simulation, so it can inspect and mutate the
//! world **and** schedule follow-up events. This is the classic
//! event-scheduling world view of discrete-event simulation.
//!
//! Determinism guarantees:
//! * events at equal timestamps fire in the order they were scheduled
//!   (a monotone sequence number breaks ties);
//! * no wall-clock time or OS entropy is consulted anywhere in the kernel;
//! * cancellation is tombstone-based, so it cannot perturb heap order.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

use crate::time::{SimDuration, SimTime};

/// Opaque handle to a scheduled event; used for cancellation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

impl EventId {
    /// The raw sequence number (unique per simulation run).
    pub fn raw(self) -> u64 {
        self.0
    }
}

type Handler<W> = Box<dyn FnOnce(&mut Sim<W>)>;

struct Scheduled<W> {
    at: SimTime,
    id: EventId,
    handler: Handler<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.id == other.id
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    // BinaryHeap is a max-heap: invert so the earliest (time, id) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other.at.cmp(&self.at).then_with(|| other.id.cmp(&self.id))
    }
}

/// Why [`Sim::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The event queue drained completely.
    QueueEmpty,
    /// The time horizon passed; later events remain queued.
    HorizonReached,
    /// An event handler requested a halt via [`Sim::halt`].
    Halted,
    /// The step budget was exhausted (runaway-loop protection).
    StepBudgetExhausted,
}

/// A discrete-event simulation over world state `W`.
pub struct Sim<W> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<W>>,
    cancelled: HashSet<EventId>,
    next_id: u64,
    steps_executed: u64,
    halt: bool,
    /// The world under simulation. Public: event handlers and drivers
    /// manipulate it directly.
    pub world: W,
}

impl<W> Sim<W> {
    /// Create a simulation at time zero around `world`.
    pub fn new(world: W) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_id: 0,
            steps_executed: 0,
            halt: false,
            world,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn steps_executed(&self) -> u64 {
        self.steps_executed
    }

    /// Number of events currently pending (including cancelled tombstones).
    pub fn pending_events(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Schedule `handler` to fire at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past — scheduling into the past would break
    /// causality and always indicates a model bug.
    pub fn schedule_at(
        &mut self,
        at: SimTime,
        handler: impl FnOnce(&mut Sim<W>) + 'static,
    ) -> EventId {
        assert!(
            at >= self.now,
            "cannot schedule into the past: now={} at={}",
            self.now,
            at
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.queue.push(Scheduled {
            at,
            id,
            handler: Box::new(handler),
        });
        id
    }

    /// Schedule `handler` to fire `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimDuration,
        handler: impl FnOnce(&mut Sim<W>) + 'static,
    ) -> EventId {
        let at = self.now.saturating_add(delay);
        self.schedule_at(at, handler)
    }

    /// Schedule `handler` to fire at the current time, after all events
    /// already scheduled for this instant.
    pub fn schedule_now(&mut self, handler: impl FnOnce(&mut Sim<W>) + 'static) -> EventId {
        self.schedule_at(self.now, handler)
    }

    /// Schedule `handler` to fire at `start` and then every `interval`
    /// thereafter, for as long as it returns `true`. Returning `false`
    /// stops the recurrence (no further firing is queued).
    ///
    /// This is the standard shape of a periodic control loop — a metrics
    /// scraper, a Condor negotiator cycle, an autoscaler tick — written as
    /// a self-rescheduling event so it composes with ordinary events under
    /// the same determinism guarantees.
    ///
    /// Returns the [`EventId`] of the *first* firing; cancelling it before
    /// it fires cancels the whole recurrence.
    ///
    /// # Panics
    /// Panics if `interval` is zero (the recurrence would never advance
    /// time and instantly exhaust any step budget).
    pub fn schedule_every(
        &mut self,
        start: SimTime,
        interval: SimDuration,
        handler: impl FnMut(&mut Sim<W>) -> bool + 'static,
    ) -> EventId
    where
        W: 'static,
    {
        assert!(
            interval > SimDuration::ZERO,
            "recurring events need a positive interval"
        );
        /// A boxed recurring handler: fires, and re-queues while it
        /// returns `true`.
        type Recurring<W> = Box<dyn FnMut(&mut Sim<W>) -> bool>;
        fn fire<W: 'static>(sim: &mut Sim<W>, interval: SimDuration, mut handler: Recurring<W>) {
            if handler(sim) {
                sim.schedule_in(interval, move |sim| fire(sim, interval, handler));
            }
        }
        let boxed: Recurring<W> = Box::new(handler);
        self.schedule_at(start, move |sim| fire(sim, interval, boxed))
    }

    /// Cancel a pending event. Returns `true` if the event had not yet fired
    /// or been cancelled. Cancelling an already-fired event is a no-op.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_id {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// Request that the run loop stop after the current event completes.
    pub fn halt(&mut self) {
        self.halt = true;
    }

    /// Execute the single next event, if any. Returns `false` when the queue
    /// is empty.
    pub fn step(&mut self) -> bool {
        loop {
            let Some(ev) = self.queue.pop() else {
                return false;
            };
            if self.cancelled.remove(&ev.id) {
                continue; // tombstone
            }
            debug_assert!(ev.at >= self.now, "event queue time went backwards");
            self.now = ev.at;
            self.steps_executed += 1;
            (ev.handler)(self);
            return true;
        }
    }

    /// Run until the queue drains, `horizon` passes, a handler calls
    /// [`halt`](Sim::halt), or `max_steps` events have executed.
    pub fn run(&mut self, horizon: SimTime, max_steps: u64) -> RunOutcome {
        self.halt = false;
        let mut budget = max_steps;
        loop {
            if self.halt {
                return RunOutcome::Halted;
            }
            if budget == 0 {
                return RunOutcome::StepBudgetExhausted;
            }
            // Peek (skipping tombstones) to honour the horizon without
            // consuming the event.
            loop {
                match self.queue.peek() {
                    None => return RunOutcome::QueueEmpty,
                    Some(ev) if self.cancelled.contains(&ev.id) => {
                        let ev = self.queue.pop().expect("peeked");
                        self.cancelled.remove(&ev.id);
                    }
                    Some(ev) => {
                        if ev.at > horizon {
                            return RunOutcome::HorizonReached;
                        }
                        break;
                    }
                }
            }
            self.step();
            budget -= 1;
        }
    }

    /// Run until the queue drains (with a generous step budget).
    pub fn run_to_completion(&mut self) -> RunOutcome {
        self.run(SimTime::MAX, u64::MAX)
    }

    /// Advance simulated time to `at` even if no event is scheduled there.
    /// Useful for "the experiment ends at t" bookkeeping. Events scheduled
    /// before `at` are *not* executed; prefer [`run`](Sim::run) first.
    pub fn fast_forward(&mut self, at: SimTime) {
        assert!(at >= self.now, "cannot fast-forward into the past");
        self.now = at;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Default)]
    struct World {
        log: Vec<(u64, &'static str)>,
    }

    fn s(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(World::default());
        sim.schedule_at(s(30), |sim| {
            sim.world.log.push((sim.now().as_micros(), "c"))
        });
        sim.schedule_at(s(10), |sim| {
            sim.world.log.push((sim.now().as_micros(), "a"))
        });
        sim.schedule_at(s(20), |sim| {
            sim.world.log.push((sim.now().as_micros(), "b"))
        });
        assert_eq!(sim.run_to_completion(), RunOutcome::QueueEmpty);
        assert_eq!(sim.world.log, vec![(10, "a"), (20, "b"), (30, "c")]);
    }

    #[test]
    fn ties_break_by_schedule_order() {
        let mut sim = Sim::new(World::default());
        for (i, name) in ["first", "second", "third"].into_iter().enumerate() {
            let _ = i;
            sim.schedule_at(s(5), move |sim| sim.world.log.push((5, name)));
        }
        sim.run_to_completion();
        let names: Vec<_> = sim.world.log.iter().map(|(_, n)| *n).collect();
        assert_eq!(names, vec!["first", "second", "third"]);
    }

    #[test]
    fn handlers_can_schedule_follow_ups() {
        let mut sim = Sim::new(World::default());
        sim.schedule_at(s(10), |sim| {
            sim.world.log.push((sim.now().as_micros(), "start"));
            sim.schedule_in(SimDuration::from_micros(15), |sim| {
                sim.world.log.push((sim.now().as_micros(), "end"));
            });
        });
        sim.run_to_completion();
        assert_eq!(sim.world.log, vec![(10, "start"), (25, "end")]);
    }

    #[test]
    fn cancellation_prevents_firing() {
        let mut sim = Sim::new(World::default());
        let id = sim.schedule_at(s(10), |sim| sim.world.log.push((10, "cancelled")));
        sim.schedule_at(s(20), |sim| sim.world.log.push((20, "kept")));
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double-cancel reports false");
        sim.run_to_completion();
        assert_eq!(sim.world.log, vec![(20, "kept")]);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim: Sim<World> = Sim::new(World::default());
        assert!(!sim.cancel(EventId(999)));
    }

    #[test]
    fn horizon_stops_without_consuming() {
        let mut sim = Sim::new(World::default());
        sim.schedule_at(s(10), |sim| sim.world.log.push((10, "early")));
        sim.schedule_at(s(100), |sim| sim.world.log.push((100, "late")));
        assert_eq!(sim.run(s(50), u64::MAX), RunOutcome::HorizonReached);
        assert_eq!(sim.world.log, vec![(10, "early")]);
        assert_eq!(sim.pending_events(), 1);
        assert_eq!(sim.run_to_completion(), RunOutcome::QueueEmpty);
        assert_eq!(sim.world.log, vec![(10, "early"), (100, "late")]);
    }

    #[test]
    fn halt_stops_the_loop() {
        let mut sim = Sim::new(World::default());
        sim.schedule_at(s(10), |sim| {
            sim.world.log.push((10, "stop"));
            sim.halt();
        });
        sim.schedule_at(s(20), |sim| sim.world.log.push((20, "never")));
        assert_eq!(sim.run_to_completion(), RunOutcome::Halted);
        assert_eq!(sim.world.log, vec![(10, "stop")]);
    }

    #[test]
    fn step_budget_guards_runaway_loops() {
        let mut sim = Sim::new(World::default());
        // An event that perpetually reschedules itself.
        fn tick(sim: &mut Sim<World>) {
            sim.schedule_in(SimDuration::from_micros(1), tick);
        }
        sim.schedule_at(s(0), tick);
        assert_eq!(sim.run(SimTime::MAX, 1000), RunOutcome::StepBudgetExhausted);
        assert_eq!(sim.steps_executed(), 1000);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Sim::new(World::default());
        sim.schedule_at(s(10), |sim| {
            sim.schedule_at(s(5), |_| {});
        });
        sim.run_to_completion();
    }

    #[test]
    fn shared_state_via_rc_refcell_works() {
        // Handlers may capture external shared state too.
        let hits = Rc::new(RefCell::new(0));
        let mut sim = Sim::new(());
        for i in 0..5u64 {
            let hits = Rc::clone(&hits);
            sim.schedule_at(s(i), move |_| *hits.borrow_mut() += 1);
        }
        sim.run_to_completion();
        assert_eq!(*hits.borrow(), 5);
    }

    #[test]
    fn schedule_every_repeats_until_false() {
        let mut sim = Sim::new(World::default());
        sim.schedule_every(s(10), SimDuration::from_micros(5), |sim| {
            sim.world.log.push((sim.now().as_micros(), "tick"));
            sim.world.log.len() < 4
        });
        assert_eq!(sim.run_to_completion(), RunOutcome::QueueEmpty);
        let times: Vec<u64> = sim.world.log.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![10, 15, 20, 25]);
    }

    #[test]
    fn schedule_every_interleaves_with_other_events() {
        let mut sim = Sim::new(World::default());
        sim.schedule_every(s(0), SimDuration::from_micros(10), |sim| {
            sim.world.log.push((sim.now().as_micros(), "tick"));
            sim.now().as_micros() < 20
        });
        sim.schedule_at(s(15), |sim| sim.world.log.push((15, "mid")));
        sim.run_to_completion();
        assert_eq!(
            sim.world.log,
            vec![(0, "tick"), (10, "tick"), (15, "mid"), (20, "tick")]
        );
    }

    #[test]
    fn cancelling_first_firing_stops_recurrence() {
        let mut sim = Sim::new(World::default());
        let id = sim.schedule_every(s(10), SimDuration::from_micros(5), |sim| {
            sim.world.log.push((sim.now().as_micros(), "tick"));
            true
        });
        assert!(sim.cancel(id));
        assert_eq!(sim.run_to_completion(), RunOutcome::QueueEmpty);
        assert!(sim.world.log.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive interval")]
    fn zero_interval_recurrence_panics() {
        let mut sim: Sim<World> = Sim::new(World::default());
        sim.schedule_every(s(0), SimDuration::ZERO, |_| true);
    }

    #[test]
    fn fast_forward_advances_clock() {
        let mut sim: Sim<World> = Sim::new(World::default());
        sim.fast_forward(s(500));
        assert_eq!(sim.now(), s(500));
    }
}

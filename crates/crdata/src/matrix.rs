//! A labelled dense matrix — the core data structure for expression
//! analysis (probes/genes × samples).

/// A row-major dense matrix with row and column labels.
#[derive(Debug, Clone, PartialEq)]
pub struct LabelledMatrix {
    /// Row labels (probes/genes).
    pub row_names: Vec<String>,
    /// Column labels (samples).
    pub col_names: Vec<String>,
    /// Row-major values; `values[r * ncols + c]`.
    pub values: Vec<f64>,
}

impl LabelledMatrix {
    /// Build from parts; panics when dimensions disagree.
    pub fn new(row_names: Vec<String>, col_names: Vec<String>, values: Vec<f64>) -> Self {
        assert_eq!(
            values.len(),
            row_names.len() * col_names.len(),
            "matrix dimensions disagree with labels"
        );
        LabelledMatrix {
            row_names,
            col_names,
            values,
        }
    }

    /// A zero matrix.
    pub fn zeros(row_names: Vec<String>, col_names: Vec<String>) -> Self {
        let n = row_names.len() * col_names.len();
        LabelledMatrix {
            row_names,
            col_names,
            values: vec![0.0; n],
        }
    }

    /// Rows.
    pub fn nrows(&self) -> usize {
        self.row_names.len()
    }

    /// Columns.
    pub fn ncols(&self) -> usize {
        self.col_names.len()
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        debug_assert!(r < self.nrows() && c < self.ncols());
        self.values[r * self.ncols() + c]
    }

    /// Element update.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        debug_assert!(r < self.nrows() && c < self.ncols());
        let ncols = self.ncols();
        self.values[r * ncols + c] = v;
    }

    /// Borrow a row slice.
    pub fn row(&self, r: usize) -> &[f64] {
        let ncols = self.ncols();
        &self.values[r * ncols..(r + 1) * ncols]
    }

    /// Copy a column out.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.nrows()).map(|r| self.get(r, c)).collect()
    }

    /// Index of a column by name.
    pub fn col_index(&self, name: &str) -> Option<usize> {
        self.col_names.iter().position(|n| n == name)
    }

    /// Index of a row by name.
    pub fn row_index(&self, name: &str) -> Option<usize> {
        self.row_names.iter().position(|n| n == name)
    }

    /// New matrix keeping only the given row indices (in the given order).
    pub fn select_rows(&self, rows: &[usize]) -> LabelledMatrix {
        let mut values = Vec::with_capacity(rows.len() * self.ncols());
        let mut row_names = Vec::with_capacity(rows.len());
        for &r in rows {
            values.extend_from_slice(self.row(r));
            row_names.push(self.row_names[r].clone());
        }
        LabelledMatrix {
            row_names,
            col_names: self.col_names.clone(),
            values,
        }
    }

    /// New matrix keeping only the given column indices.
    pub fn select_cols(&self, cols: &[usize]) -> LabelledMatrix {
        let mut values = Vec::with_capacity(self.nrows() * cols.len());
        for r in 0..self.nrows() {
            for &c in cols {
                values.push(self.get(r, c));
            }
        }
        LabelledMatrix {
            row_names: self.row_names.clone(),
            col_names: cols.iter().map(|&c| self.col_names[c].clone()).collect(),
            values,
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> LabelledMatrix {
        let mut values = Vec::with_capacity(self.values.len());
        for c in 0..self.ncols() {
            for r in 0..self.nrows() {
                values.push(self.get(r, c));
            }
        }
        LabelledMatrix {
            row_names: self.col_names.clone(),
            col_names: self.row_names.clone(),
            values,
        }
    }

    /// Apply a function element-wise in place.
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.values {
            *v = f(*v);
        }
    }

    /// Column means.
    pub fn col_means(&self) -> Vec<f64> {
        let mut means = vec![0.0; self.ncols()];
        for r in 0..self.nrows() {
            for (c, m) in means.iter_mut().enumerate() {
                *m += self.get(r, c);
            }
        }
        let n = self.nrows().max(1) as f64;
        for m in &mut means {
            *m /= n;
        }
        means
    }

    /// Row means.
    pub fn row_means(&self) -> Vec<f64> {
        (0..self.nrows())
            .map(|r| {
                let row = self.row(r);
                row.iter().sum::<f64>() / row.len().max(1) as f64
            })
            .collect()
    }

    /// Split column indices into groups by a prefix of the sample name up
    /// to the first `_` (the convention used by the synthetic CEL bundles:
    /// `groupA_1`, `groupB_2`, …). Returns `(group names, per-group column
    /// indices)` with groups in first-appearance order.
    pub fn groups_from_col_names(&self) -> (Vec<String>, Vec<Vec<usize>>) {
        let mut names: Vec<String> = Vec::new();
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (c, col) in self.col_names.iter().enumerate() {
            let g = col.split('_').next().unwrap_or(col).to_string();
            match names.iter().position(|n| *n == g) {
                Some(i) => groups[i].push(c),
                None => {
                    names.push(g);
                    groups.push(vec![c]);
                }
            }
        }
        (names, groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> LabelledMatrix {
        LabelledMatrix::new(
            vec!["g1".to_string(), "g2".to_string()],
            vec!["a_1".to_string(), "a_2".to_string(), "b_1".to_string()],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
    }

    #[test]
    fn indexing_and_slices() {
        let m = m();
        assert_eq!(m.nrows(), 2);
        assert_eq!(m.ncols(), 3);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
        assert_eq!(m.col_index("b_1"), Some(2));
        assert_eq!(m.row_index("g2"), Some(1));
        assert_eq!(m.row_index("nope"), None);
    }

    #[test]
    #[should_panic(expected = "dimensions disagree")]
    fn dimension_mismatch_panics() {
        LabelledMatrix::new(vec!["r".to_string()], vec!["c".to_string()], vec![1.0, 2.0]);
    }

    #[test]
    fn selection() {
        let m = m();
        let top = m.select_rows(&[1]);
        assert_eq!(top.row_names, vec!["g2"]);
        assert_eq!(top.values, vec![4.0, 5.0, 6.0]);
        let cols = m.select_cols(&[2, 0]);
        assert_eq!(cols.col_names, vec!["b_1", "a_1"]);
        assert_eq!(cols.row(0), &[3.0, 1.0]);
    }

    #[test]
    fn transpose_round_trips() {
        let m = m();
        let t = m.transpose();
        assert_eq!(t.nrows(), 3);
        assert_eq!(t.get(2, 0), 3.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn means() {
        let m = m();
        assert_eq!(m.col_means(), vec![2.5, 3.5, 4.5]);
        assert_eq!(m.row_means(), vec![2.0, 5.0]);
    }

    #[test]
    fn map_in_place_applies() {
        let mut m = m();
        m.map_in_place(|v| v * 2.0);
        assert_eq!(m.get(0, 0), 2.0);
    }

    #[test]
    fn group_parsing_from_names() {
        let m = m();
        let (names, groups) = m.groups_from_col_names();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(groups, vec![vec![0, 1], vec![2]]);
    }

    #[test]
    fn zeros_shape() {
        let z = LabelledMatrix::zeros(
            vec!["r".to_string()],
            vec!["c1".to_string(), "c2".to_string()],
        );
        assert_eq!(z.values, vec![0.0, 0.0]);
    }
}

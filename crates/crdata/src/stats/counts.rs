//! Count-based tests — `sequenceDifferentialExpression.R` "performs a
//! two-sample test for RNA-sequence differential expression".
//!
//! For a feature with counts `(x, y)` in two libraries of sizes `(N1, N2)`,
//! the classic exact-style test conditions on the total `x + y`: under the
//! null, `x ~ Binomial(x + y, N1 / (N1 + N2))`. We use the normal
//! approximation with continuity correction, which is accurate for the
//! totals RNA-seq produces, plus CPM normalization and fold-change
//! utilities.

use super::special::normal_cdf;

/// Result of a per-feature two-sample count test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CountTestResult {
    /// The z statistic.
    pub z: f64,
    /// Two-sided p-value.
    pub p: f64,
    /// log₂ fold change (sample 1 over sample 2, CPM-normalized with a
    /// 0.5 pseudo-count).
    pub log2_fc: f64,
}

/// Two-sample proportion/count test for one feature.
///
/// `x1`, `x2` are the feature's counts; `n1`, `n2` the library sizes.
pub fn two_sample_count_test(x1: u64, n1: u64, x2: u64, n2: u64) -> CountTestResult {
    assert!(n1 > 0 && n2 > 0, "library sizes must be positive");
    let total = (x1 + x2) as f64;
    let p_null = n1 as f64 / (n1 + n2) as f64;
    let log2_fc = log2_fold_change(x1, n1, x2, n2);
    if total == 0.0 {
        return CountTestResult {
            z: 0.0,
            p: 1.0,
            log2_fc,
        };
    }
    let mean = total * p_null;
    let var = total * p_null * (1.0 - p_null);
    if var == 0.0 {
        return CountTestResult {
            z: 0.0,
            p: 1.0,
            log2_fc,
        };
    }
    // Continuity-corrected z.
    let x = x1 as f64;
    let diff = x - mean;
    let corrected = (diff.abs() - 0.5).max(0.0);
    let z = (corrected / var.sqrt()) * diff.signum();
    let p = 2.0 * (1.0 - normal_cdf(z.abs()));
    CountTestResult {
        z,
        p: p.clamp(0.0, 1.0),
        log2_fc,
    }
}

/// Counts-per-million normalization of one count.
pub fn cpm(count: u64, library_size: u64) -> f64 {
    assert!(library_size > 0);
    count as f64 / library_size as f64 * 1e6
}

/// log₂ fold change of CPM values with a 0.5 pseudo-count.
pub fn log2_fold_change(x1: u64, n1: u64, x2: u64, n2: u64) -> f64 {
    let a = cpm(x1, n1) + 0.5;
    let b = cpm(x2, n2) + 0.5;
    (a / b).log2()
}

/// Filter features whose total CPM across samples falls below a
/// threshold. Returns kept indices.
pub fn filter_low_counts(
    counts: &[Vec<u64>],
    library_sizes: &[u64],
    min_cpm: f64,
    min_samples: usize,
) -> Vec<usize> {
    counts
        .iter()
        .enumerate()
        .filter(|(_, row)| {
            let passing = row
                .iter()
                .zip(library_sizes)
                .filter(|(c, n)| cpm(**c, **n) >= min_cpm)
                .count();
            passing >= min_samples
        })
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_counts_are_null() {
        // Equal counts in equal libraries: no evidence.
        let r = two_sample_count_test(100, 1_000_000, 100, 1_000_000);
        assert!(r.p > 0.9, "p={}", r.p);
        assert!(r.z.abs() < 0.2);
        assert!(r.log2_fc.abs() < 0.01);
    }

    #[test]
    fn strong_difference_is_significant() {
        let r = two_sample_count_test(500, 1_000_000, 50, 1_000_000);
        assert!(r.p < 1e-10, "p={}", r.p);
        assert!(r.z > 0.0);
        assert!((r.log2_fc - (500.5f64 / 50.5).log2()).abs() < 0.01);
    }

    #[test]
    fn library_size_normalization_matters() {
        // 200 vs 100 counts, but the first library is twice as deep:
        // identical rates, not significant.
        let r = two_sample_count_test(200, 2_000_000, 100, 1_000_000);
        assert!(r.p > 0.8, "p={}", r.p);
        assert!(r.log2_fc.abs() < 0.01);
    }

    #[test]
    fn zero_counts_are_null() {
        let r = two_sample_count_test(0, 1_000_000, 0, 2_000_000);
        assert_eq!(r.p, 1.0);
        assert_eq!(r.z, 0.0);
    }

    #[test]
    fn direction_is_symmetric() {
        let up = two_sample_count_test(300, 1_000_000, 100, 1_000_000);
        let down = two_sample_count_test(100, 1_000_000, 300, 1_000_000);
        assert!((up.p - down.p).abs() < 1e-12);
        assert!((up.z + down.z).abs() < 1e-12);
        assert!((up.log2_fc + down.log2_fc).abs() < 1e-9);
    }

    #[test]
    fn cpm_arithmetic() {
        assert_eq!(cpm(100, 1_000_000), 100.0);
        assert_eq!(cpm(5, 10_000_000), 0.5);
    }

    #[test]
    fn low_count_filter() {
        let counts = vec![
            vec![1000, 1200], // high in both
            vec![0, 1],       // low everywhere
            vec![1000, 0],    // high in one
        ];
        let libs = vec![1_000_000u64, 1_000_000];
        let kept = filter_low_counts(&counts, &libs, 10.0, 2);
        assert_eq!(kept, vec![0]);
        let kept = filter_low_counts(&counts, &libs, 10.0, 1);
        assert_eq!(kept, vec![0, 2]);
    }
}

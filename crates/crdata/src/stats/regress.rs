//! Simple linear regression and PCA (power iteration).

use super::describe::mean;
use super::special::t_two_sided_p;

/// Ordinary-least-squares fit of `y = intercept + slope·x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept.
    pub intercept: f64,
    /// Slope.
    pub slope: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
    /// Two-sided p-value for the slope (t test with n − 2 df).
    pub slope_p: f64,
}

/// Fit OLS; `None` for degenerate input (n < 3 or zero x-variance).
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> Option<LinearFit> {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len();
    if n < 3 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxx += (x - mx) * (x - mx);
        sxy += (x - mx) * (y - my);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| {
            let fit = intercept + slope * x;
            (y - fit) * (y - fit)
        })
        .sum();
    let r_squared = if syy == 0.0 { 1.0 } else { 1.0 - ss_res / syy };
    let df = (n - 2) as f64;
    let se = (ss_res / df / sxx).sqrt();
    let slope_p = if se == 0.0 {
        0.0
    } else {
        t_two_sided_p(slope / se, df)
    };
    Some(LinearFit {
        intercept,
        slope,
        r_squared,
        slope_p,
    })
}

/// First `k` principal components of row-observations `items`, via power
/// iteration with deflation on the covariance. Returns `(components,
/// explained_variance)`, each component a unit vector.
pub fn principal_components(items: &[Vec<f64>], k: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let n = items.len();
    if n < 2 || k == 0 {
        return (Vec::new(), Vec::new());
    }
    let dim = items[0].len();
    // Center.
    let mut means = vec![0.0; dim];
    for item in items {
        for (m, v) in means.iter_mut().zip(item) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    let centered: Vec<Vec<f64>> = items
        .iter()
        .map(|item| item.iter().zip(&means).map(|(v, m)| v - m).collect())
        .collect();
    // Covariance (dim × dim).
    let mut cov = vec![0.0; dim * dim];
    for row in &centered {
        for i in 0..dim {
            for j in 0..dim {
                cov[i * dim + j] += row[i] * row[j];
            }
        }
    }
    for v in &mut cov {
        *v /= (n - 1) as f64;
    }

    let mut components = Vec::new();
    let mut variances = Vec::new();
    let mut work = cov;
    for pc in 0..k.min(dim) {
        // Power iteration with a deterministic start.
        let mut v: Vec<f64> = (0..dim)
            .map(|i| if i == pc % dim { 1.0 } else { 0.1 })
            .collect();
        let mut eigenvalue = 0.0;
        for _ in 0..500 {
            let mut next = vec![0.0; dim];
            for i in 0..dim {
                for j in 0..dim {
                    next[i] += work[i * dim + j] * v[j];
                }
            }
            let norm = next.iter().map(|x| x * x).sum::<f64>().sqrt();
            if norm < 1e-12 {
                break;
            }
            for x in &mut next {
                *x /= norm;
            }
            let delta: f64 = next.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
            v = next;
            eigenvalue = norm;
            if delta < 1e-12 {
                break;
            }
        }
        // Deflate.
        for i in 0..dim {
            for j in 0..dim {
                work[i * dim + j] -= eigenvalue * v[i] * v[j];
            }
        }
        components.push(v);
        variances.push(eigenvalue);
    }
    (components, variances)
}

/// Project observations onto components, producing score vectors.
pub fn pca_scores(items: &[Vec<f64>], components: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let dim = items[0].len();
    let mut means = vec![0.0; dim];
    for item in items {
        for (m, v) in means.iter_mut().zip(item) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    items
        .iter()
        .map(|item| {
            components
                .iter()
                .map(|comp| {
                    item.iter()
                        .zip(&means)
                        .zip(comp)
                        .map(|((v, m), c)| (v - m) * c)
                        .sum()
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_recovers_coefficients() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 + 2.0 * x).collect();
        let fit = linear_regression(&xs, &ys).unwrap();
        assert!((fit.intercept - 3.0).abs() < 1e-10);
        assert!((fit.slope - 2.0).abs() < 1e-10);
        assert!((fit.r_squared - 1.0).abs() < 1e-10);
        assert!(fit.slope_p < 1e-10);
    }

    #[test]
    fn noisy_line_still_detected() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 5.0).collect();
        // Deterministic "noise".
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 1.0 + 0.8 * x + ((i * 7919 % 13) as f64 - 6.0) / 20.0)
            .collect();
        let fit = linear_regression(&xs, &ys).unwrap();
        assert!((fit.slope - 0.8).abs() < 0.05, "slope={}", fit.slope);
        assert!(fit.r_squared > 0.95);
        assert!(fit.slope_p < 1e-10);
    }

    #[test]
    fn flat_relationship_is_insignificant() {
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..20).map(|i| (i * 31 % 7) as f64).collect();
        let fit = linear_regression(&xs, &ys).unwrap();
        assert!(fit.slope_p > 0.05, "p={}", fit.slope_p);
    }

    #[test]
    fn degenerate_regression_inputs() {
        assert!(linear_regression(&[1.0, 2.0], &[1.0, 2.0]).is_none());
        assert!(linear_regression(&[1.0; 5], &[1.0, 2.0, 3.0, 4.0, 5.0]).is_none());
    }

    #[test]
    fn pca_finds_the_dominant_axis() {
        // Points along the (1, 1) diagonal with small orthogonal noise.
        let items: Vec<Vec<f64>> = (0..40)
            .map(|i| {
                let t = i as f64 / 4.0;
                let noise = ((i * 13 % 5) as f64 - 2.0) / 50.0;
                vec![t + noise, t - noise]
            })
            .collect();
        let (comps, vars) = principal_components(&items, 2);
        assert_eq!(comps.len(), 2);
        let pc1 = &comps[0];
        // PC1 ∝ (1/√2, 1/√2).
        let expected = 1.0 / 2.0f64.sqrt();
        assert!(
            (pc1[0].abs() - expected).abs() < 0.02 && (pc1[1].abs() - expected).abs() < 0.02,
            "pc1={pc1:?}"
        );
        assert!(vars[0] > 10.0 * vars[1], "vars={vars:?}");
    }

    #[test]
    fn pca_scores_separate_groups() {
        let mut items: Vec<Vec<f64>> = Vec::new();
        for i in 0..5 {
            items.push(vec![i as f64 * 0.01, 0.0]);
        }
        for i in 0..5 {
            items.push(vec![10.0 + i as f64 * 0.01, 0.0]);
        }
        let (comps, _) = principal_components(&items, 1);
        let scores = pca_scores(&items, &comps);
        let a = scores[0][0];
        let b = scores[9][0];
        assert!((a - b).abs() > 5.0, "groups separate on PC1");
    }

    #[test]
    fn pca_empty_and_unit_cases() {
        let (c, v) = principal_components(&[], 2);
        assert!(c.is_empty() && v.is_empty());
        let (c, _) = principal_components(&[vec![1.0, 2.0]], 2);
        assert!(c.is_empty(), "single observation has no covariance");
    }
}

//! Normalization: the pre-processing applied to raw probe intensities
//! before testing (RMA-style background correction, quantile
//! normalization, log₂ transform).

use crate::matrix::LabelledMatrix;

use super::describe::median;

/// log₂-transform all values (values are clamped to ≥ 1 first, as raw
/// intensities are positive).
pub fn log2_transform(m: &mut LabelledMatrix) {
    m.map_in_place(|v| v.max(1.0).log2());
}

/// Simple RMA-style background correction: subtract a per-column
/// background (the 2nd percentile) and clamp at a small positive floor.
pub fn background_correct(m: &mut LabelledMatrix) {
    let ncols = m.ncols();
    for c in 0..ncols {
        let col = m.col(c);
        let bg = super::describe::quantile(&col, 0.02).unwrap_or(0.0);
        for r in 0..m.nrows() {
            let v = (m.get(r, c) - bg).max(1.0);
            m.set(r, c, v);
        }
    }
}

/// Quantile normalization: force every column to share the same empirical
/// distribution (the mean of the per-rank values), the standard Affymetrix
/// between-array normalization.
pub fn quantile_normalize(m: &mut LabelledMatrix) {
    let nrows = m.nrows();
    let ncols = m.ncols();
    if nrows == 0 || ncols < 2 {
        return;
    }
    // Rank each column.
    let mut orders: Vec<Vec<usize>> = Vec::with_capacity(ncols);
    for c in 0..ncols {
        let col = m.col(c);
        let mut idx: Vec<usize> = (0..nrows).collect();
        idx.sort_by(|&a, &b| col[a].partial_cmp(&col[b]).expect("finite values"));
        orders.push(idx);
    }
    // Mean of each rank across columns.
    let mut rank_means = vec![0.0; nrows];
    for (c, order) in orders.iter().enumerate() {
        for (rank, &row) in order.iter().enumerate() {
            rank_means[rank] += m.get(row, c);
        }
    }
    for v in &mut rank_means {
        *v /= ncols as f64;
    }
    // Assign rank means back.
    for (c, order) in orders.iter().enumerate() {
        for (rank, &row) in order.iter().enumerate() {
            m.set(row, c, rank_means[rank]);
        }
    }
}

/// Per-row z-score normalization (gene-wise standardization for
/// heatmaps).
pub fn zscore_rows(m: &mut LabelledMatrix) {
    let ncols = m.ncols();
    for r in 0..m.nrows() {
        let row: Vec<f64> = m.row(r).to_vec();
        let mean = super::describe::mean(&row);
        let sd = super::describe::std_dev(&row).unwrap_or(0.0);
        for c in 0..ncols {
            let z = if sd > 0.0 {
                (m.get(r, c) - mean) / sd
            } else {
                0.0
            };
            m.set(r, c, z);
        }
    }
}

/// Median-center each column (a light between-array normalization).
pub fn median_center_cols(m: &mut LabelledMatrix) {
    let ncols = m.ncols();
    for c in 0..ncols {
        let col = m.col(c);
        let med = median(&col).unwrap_or(0.0);
        for r in 0..m.nrows() {
            let v = m.get(r, c) - med;
            m.set(r, c, v);
        }
    }
}

/// The full RMA-like pipeline used by `affyNormalize`: background
/// correction → quantile normalization → log₂.
pub fn rma_like(m: &mut LabelledMatrix) {
    background_correct(m);
    quantile_normalize(m);
    log2_transform(m);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: usize, cols: usize, f: impl Fn(usize, usize) -> f64) -> LabelledMatrix {
        let row_names = (0..rows).map(|r| format!("g{r}")).collect();
        let col_names = (0..cols).map(|c| format!("s_{c}")).collect();
        let mut values = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                values.push(f(r, c));
            }
        }
        LabelledMatrix::new(row_names, col_names, values)
    }

    #[test]
    fn quantile_normalization_equalizes_distributions() {
        // Column 1 is a scaled/shifted version of column 0.
        let mut m = matrix(50, 3, |r, c| {
            (r as f64 + 1.0) * (c as f64 + 1.0) + c as f64 * 10.0
        });
        quantile_normalize(&mut m);
        // After normalization all columns have identical sorted values.
        let mut c0 = m.col(0);
        c0.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for c in 1..3 {
            let mut cc = m.col(c);
            cc.sort_by(|a, b| a.partial_cmp(b).unwrap());
            for (a, b) in c0.iter().zip(&cc) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn quantile_normalization_preserves_within_column_order() {
        let mut m = matrix(20, 2, |r, c| ((r * 7 + 3) % 20) as f64 + c as f64);
        let before = m.col(0);
        quantile_normalize(&mut m);
        let after = m.col(0);
        // Ranks preserved.
        for i in 0..before.len() {
            for j in 0..before.len() {
                if before[i] < before[j] {
                    assert!(after[i] <= after[j]);
                }
            }
        }
    }

    #[test]
    fn log2_handles_small_values() {
        let mut m = matrix(2, 2, |r, c| if r == 0 && c == 0 { 0.25 } else { 8.0 });
        log2_transform(&mut m);
        assert_eq!(m.get(0, 0), 0.0, "clamped to 1 before log");
        assert_eq!(m.get(1, 1), 3.0);
    }

    #[test]
    fn background_correction_floors_at_one() {
        let mut m = matrix(100, 2, |r, _| r as f64);
        background_correct(&mut m);
        for &v in &m.values {
            assert!(v >= 1.0);
        }
    }

    #[test]
    fn zscore_rows_standardizes() {
        let mut m = matrix(3, 4, |r, c| (r * 10 + c * 2) as f64);
        zscore_rows(&mut m);
        for r in 0..3 {
            let row: Vec<f64> = m.row(r).to_vec();
            assert!(super::super::describe::mean(&row).abs() < 1e-12);
            assert!((super::super::describe::std_dev(&row).unwrap() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn zscore_constant_row_is_zero() {
        let mut m = matrix(1, 3, |_, _| 5.0);
        zscore_rows(&mut m);
        assert_eq!(m.values, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn median_centering_zeroes_medians() {
        let mut m = matrix(5, 2, |r, c| r as f64 + c as f64 * 100.0);
        median_center_cols(&mut m);
        for c in 0..2 {
            let col = m.col(c);
            assert!(median(&col).unwrap().abs() < 1e-12);
        }
    }

    #[test]
    fn rma_pipeline_runs() {
        let mut m = matrix(100, 4, |r, c| ((r * 13 + c * 7) % 97) as f64 * 50.0 + 20.0);
        rma_like(&mut m);
        // log2 range sanity.
        for &v in &m.values {
            assert!((0.0..=16.0).contains(&v), "v={v}");
        }
    }

    #[test]
    fn single_column_normalization_is_noop() {
        let mut m = matrix(5, 1, |r, _| r as f64);
        let before = m.clone();
        quantile_normalize(&mut m);
        assert_eq!(m, before);
    }
}

//! Descriptive statistics over slices.

/// Arithmetic mean (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample variance (n−1 denominator); `None` with fewer than two values.
pub fn variance(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs);
    Some(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() as f64 - 1.0))
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    variance(xs).map(f64::sqrt)
}

/// Quantile with linear interpolation, `q ∈ [0, 1]`.
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let rank = q * (sorted.len() as f64 - 1.0);
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median.
pub fn median(xs: &[f64]) -> Option<f64> {
    quantile(xs, 0.5)
}

/// Median absolute deviation (scaled by 1.4826 for normal consistency).
pub fn mad(xs: &[f64]) -> Option<f64> {
    let med = median(xs)?;
    let deviations: Vec<f64> = xs.iter().map(|x| (x - med).abs()).collect();
    median(&deviations).map(|m| m * 1.4826)
}

/// Pearson correlation of two equal-length slices; `None` for degenerate
/// input (length < 2 or zero variance).
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    assert_eq!(xs.len(), ys.len(), "pearson requires equal lengths");
    if xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

/// Min and max (None for empty input).
pub fn min_max(xs: &[f64]) -> Option<(f64, f64)> {
    if xs.is_empty() {
        return None;
    }
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &x in xs {
        lo = lo.min(x);
        hi = hi.max(x);
    }
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    const XS: [f64; 8] = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];

    #[test]
    fn basic_moments() {
        assert_eq!(mean(&XS), 5.0);
        assert!((variance(&XS).unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!((std_dev(&XS).unwrap() - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), None);
    }

    #[test]
    fn quantiles() {
        let xs = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&xs, 0.0), Some(10.0));
        assert_eq!(quantile(&xs, 1.0), Some(40.0));
        assert_eq!(median(&xs), Some(25.0));
        assert_eq!(median(&[]), None);
    }

    #[test]
    fn mad_is_robust() {
        let clean = [1.0, 2.0, 3.0, 4.0, 5.0];
        let outlier = [1.0, 2.0, 3.0, 4.0, 500.0];
        let m1 = mad(&clean).unwrap();
        let m2 = mad(&outlier).unwrap();
        // MAD barely moves; SD explodes.
        assert!((m1 - m2).abs() / m1 < 0.5);
        assert!(std_dev(&outlier).unwrap() > 10.0 * std_dev(&clean).unwrap());
    }

    #[test]
    fn pearson_reference() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 4.0, 6.0, 8.0, 10.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg: Vec<f64> = ys.iter().map(|y| -y).collect();
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
        let flat = [3.0; 5];
        assert_eq!(pearson(&xs, &flat), None);
    }

    #[test]
    fn min_max_works() {
        assert_eq!(min_max(&XS), Some((2.0, 9.0)));
        assert_eq!(min_max(&[]), None);
    }
}

//! t-tests: the statistical engine behind `affyDifferentialExpression.R`
//! ("conducts two-group differential expression on Affymetrix CEL files").

use super::describe::{mean, variance};
use super::special::t_two_sided_p;

/// A test result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TTestResult {
    /// The t statistic.
    pub t: f64,
    /// Degrees of freedom (Welch–Satterthwaite for the unequal-variance
    /// test).
    pub df: f64,
    /// Two-sided p-value.
    pub p: f64,
    /// Mean difference (group1 − group2).
    pub mean_diff: f64,
}

/// Welch's unequal-variance two-sample t-test.
///
/// Returns `None` when either group has fewer than two observations or
/// both variances are zero.
pub fn welch_t_test(group1: &[f64], group2: &[f64]) -> Option<TTestResult> {
    if group1.len() < 2 || group2.len() < 2 {
        return None;
    }
    let m1 = mean(group1);
    let m2 = mean(group2);
    let v1 = variance(group1)?;
    let v2 = variance(group2)?;
    let n1 = group1.len() as f64;
    let n2 = group2.len() as f64;
    let se2 = v1 / n1 + v2 / n2;
    if se2 == 0.0 {
        return None;
    }
    let t = (m1 - m2) / se2.sqrt();
    let df = se2 * se2 / ((v1 / n1).powi(2) / (n1 - 1.0) + (v2 / n2).powi(2) / (n2 - 1.0));
    Some(TTestResult {
        t,
        df,
        p: t_two_sided_p(t, df),
        mean_diff: m1 - m2,
    })
}

/// Pooled-variance (Student's) two-sample t-test.
pub fn pooled_t_test(group1: &[f64], group2: &[f64]) -> Option<TTestResult> {
    if group1.len() < 2 || group2.len() < 2 {
        return None;
    }
    let m1 = mean(group1);
    let m2 = mean(group2);
    let v1 = variance(group1)?;
    let v2 = variance(group2)?;
    let n1 = group1.len() as f64;
    let n2 = group2.len() as f64;
    let df = n1 + n2 - 2.0;
    let sp2 = ((n1 - 1.0) * v1 + (n2 - 1.0) * v2) / df;
    let se2 = sp2 * (1.0 / n1 + 1.0 / n2);
    if se2 == 0.0 {
        return None;
    }
    let t = (m1 - m2) / se2.sqrt();
    Some(TTestResult {
        t,
        df,
        p: t_two_sided_p(t, df),
        mean_diff: m1 - m2,
    })
}

/// Paired t-test on matched observations.
pub fn paired_t_test(before: &[f64], after: &[f64]) -> Option<TTestResult> {
    assert_eq!(before.len(), after.len(), "paired test needs matched data");
    if before.len() < 2 {
        return None;
    }
    let diffs: Vec<f64> = before.iter().zip(after).map(|(a, b)| a - b).collect();
    let md = mean(&diffs);
    let vd = variance(&diffs)?;
    if vd == 0.0 {
        return None;
    }
    let n = diffs.len() as f64;
    let t = md / (vd / n).sqrt();
    let df = n - 1.0;
    Some(TTestResult {
        t,
        df,
        p: t_two_sided_p(t, df),
        mean_diff: md,
    })
}

/// One-sample t-test against a hypothesized mean.
pub fn one_sample_t_test(xs: &[f64], mu0: f64) -> Option<TTestResult> {
    if xs.len() < 2 {
        return None;
    }
    let m = mean(xs);
    let v = variance(xs)?;
    if v == 0.0 {
        return None;
    }
    let n = xs.len() as f64;
    let t = (m - mu0) / (v / n).sqrt();
    let df = n - 1.0;
    Some(TTestResult {
        t,
        df,
        p: t_two_sided_p(t, df),
        mean_diff: m - mu0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welch_reference_example() {
        // Classic Welch example (unequal variances).
        let a = [
            27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7,
            21.4,
        ];
        let b = [
            27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5,
            25.9,
        ];
        let r = welch_t_test(&a, &b).unwrap();
        // R: t.test(a, b) gives t = -2.9232, df = 27.951, p = 0.006794.
        assert!((r.t + 2.9232).abs() < 0.001, "t={}", r.t);
        assert!((r.df - 27.951).abs() < 0.01, "df={}", r.df);
        assert!((r.p - 0.006794).abs() < 0.0002, "p={}", r.p);
    }

    #[test]
    fn pooled_reference_example() {
        let a = [30.02, 29.99, 30.11, 29.97, 30.01, 29.99];
        let b = [29.89, 29.93, 29.72, 29.98, 30.02, 29.98];
        let r = pooled_t_test(&a, &b).unwrap();
        // R: t = 1.959, df = 10, p = 0.07857 (two-sided, var.equal=TRUE).
        assert!((r.t - 1.959).abs() < 0.01, "t={}", r.t);
        assert_eq!(r.df, 10.0);
        assert!((r.p - 0.0786).abs() < 0.002, "p={}", r.p);
    }

    #[test]
    fn paired_detects_shift() {
        let before = [100.0, 102.0, 98.0, 101.0, 99.0, 103.0];
        let after: Vec<f64> = before.iter().map(|x| x + 5.0 + 0.1 * (x - 100.0)).collect();
        let r = paired_t_test(&before, &after).unwrap();
        assert!(r.p < 0.001, "clear shift: p={}", r.p);
        assert!(r.mean_diff < 0.0, "after is larger");
    }

    #[test]
    fn one_sample_against_true_mean_is_insignificant() {
        let xs = [4.9, 5.1, 5.0, 4.8, 5.2, 5.0, 5.05, 4.95];
        let r = one_sample_t_test(&xs, 5.0).unwrap();
        assert!(r.p > 0.5, "p={}", r.p);
        let r2 = one_sample_t_test(&xs, 4.0).unwrap();
        assert!(r2.p < 1e-6);
    }

    #[test]
    fn degenerate_inputs_return_none() {
        assert!(welch_t_test(&[1.0], &[1.0, 2.0]).is_none());
        assert!(
            welch_t_test(&[1.0, 1.0], &[2.0, 2.0]).is_none(),
            "zero variance"
        );
        assert!(pooled_t_test(&[], &[]).is_none());
        assert!(
            paired_t_test(&[1.0, 2.0], &[1.0, 2.0]).is_none(),
            "zero diffs"
        );
        assert!(one_sample_t_test(&[5.0, 5.0], 5.0).is_none());
    }

    #[test]
    fn symmetric_groups_give_symmetric_t() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 3.0, 4.0, 5.0];
        let ab = welch_t_test(&a, &b).unwrap();
        let ba = welch_t_test(&b, &a).unwrap();
        assert!((ab.t + ba.t).abs() < 1e-12);
        assert!((ab.p - ba.p).abs() < 1e-12);
    }
}

//! Kaplan–Meier survival estimation (the CVRG is a *cardiovascular*
//! research grid; survival analysis is a staple of its R toolbox).

/// One subject: follow-up time and whether the event occurred (`true`) or
/// the observation was censored (`false`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Subject {
    /// Follow-up time.
    pub time: f64,
    /// Event indicator (false = censored).
    pub event: bool,
}

/// One step of the Kaplan–Meier curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KmPoint {
    /// Event time.
    pub time: f64,
    /// Number at risk just before this time.
    pub at_risk: usize,
    /// Events at this time.
    pub events: usize,
    /// Survival estimate after this time.
    pub survival: f64,
}

/// Compute the Kaplan–Meier curve. Returns points at distinct event times
/// in increasing order.
pub fn kaplan_meier(subjects: &[Subject]) -> Vec<KmPoint> {
    let mut sorted: Vec<Subject> = subjects.to_vec();
    sorted.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
    let n = sorted.len();
    let mut curve = Vec::new();
    let mut survival = 1.0;
    let mut i = 0;
    while i < n {
        let t = sorted[i].time;
        let at_risk = n - i;
        let mut events = 0;
        let mut j = i;
        while j < n && sorted[j].time == t {
            if sorted[j].event {
                events += 1;
            }
            j += 1;
        }
        if events > 0 {
            survival *= 1.0 - events as f64 / at_risk as f64;
            curve.push(KmPoint {
                time: t,
                at_risk,
                events,
                survival,
            });
        }
        i = j;
    }
    curve
}

/// Median survival time: the first time the curve drops to ≤ 0.5, if it
/// does.
pub fn median_survival(curve: &[KmPoint]) -> Option<f64> {
    curve.iter().find(|p| p.survival <= 0.5).map(|p| p.time)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(time: f64, event: bool) -> Subject {
        Subject { time, event }
    }

    #[test]
    fn textbook_km_example() {
        // Classic example: times 6, 6, 6, 7, 10 (events) with censoring at
        // 6+, 9+, 10+, ... — use a compact version:
        // events at 6 (3 of 7 at risk after 0 censored) etc.
        let subjects = vec![
            s(6.0, true),
            s(6.0, true),
            s(6.0, true),
            s(6.0, false),
            s(7.0, true),
            s(9.0, false),
            s(10.0, true),
            s(10.0, false),
            s(11.0, false),
            s(13.0, true),
        ];
        let curve = kaplan_meier(&subjects);
        // First step: 3 events among 10 at risk → S = 0.7.
        assert_eq!(curve[0].time, 6.0);
        assert_eq!(curve[0].at_risk, 10);
        assert_eq!(curve[0].events, 3);
        assert!((curve[0].survival - 0.7).abs() < 1e-12);
        // Second step at 7: 1 event among 6 at risk → S = 0.7 × 5/6.
        assert_eq!(curve[1].at_risk, 6);
        assert!((curve[1].survival - 0.7 * 5.0 / 6.0).abs() < 1e-12);
        // Monotone non-increasing survival.
        for pair in curve.windows(2) {
            assert!(pair[1].survival <= pair[0].survival);
        }
    }

    #[test]
    fn censoring_only_produces_empty_curve() {
        let subjects = vec![s(1.0, false), s(2.0, false)];
        assert!(kaplan_meier(&subjects).is_empty());
        assert_eq!(median_survival(&[]), None);
    }

    #[test]
    fn all_events_reaches_zero() {
        let subjects: Vec<Subject> = (1..=4).map(|i| s(i as f64, true)).collect();
        let curve = kaplan_meier(&subjects);
        assert_eq!(curve.len(), 4);
        assert!(curve.last().unwrap().survival.abs() < 1e-12);
        assert_eq!(median_survival(&curve), Some(2.0));
    }

    #[test]
    fn median_none_when_curve_stays_high() {
        let subjects = vec![s(1.0, true), s(2.0, false), s(3.0, false), s(4.0, false)];
        let curve = kaplan_meier(&subjects);
        assert!(curve[0].survival > 0.5);
        assert_eq!(median_survival(&curve), None);
    }
}

//! Special functions: log-gamma, incomplete beta, and the distribution
//! CDFs the statistical tools need (normal, Student's t, chi-square, F).
//!
//! Implementations follow the classic Numerical-Recipes formulations
//! (Lanczos log-gamma, continued-fraction incomplete beta, series/CF
//! incomplete gamma), accurate to ~1e-10 over the ranges used here.

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized incomplete beta function `I_x(a, b)` via the continued
/// fraction (Lentz's method).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    assert!(a > 0.0 && b > 0.0, "incomplete_beta requires a,b > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    // Evaluate the continued fraction on whichever side converges fast
    // (Numerical Recipes' symmetric form — no recursion).
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;

    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Regularized lower incomplete gamma `P(a, x)`.
pub fn incomplete_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "incomplete_gamma requires a > 0");
    if x <= 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..300 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 3e-14 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q, then P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1e300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..300 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 3e-14 {
                break;
            }
        }
        1.0 - h * (-x + a * x.ln() - ln_gamma(a)).exp()
    }
}

/// Standard normal CDF (via `erf`-style expansion of the incomplete
/// gamma).
pub fn normal_cdf(z: f64) -> f64 {
    if z == 0.0 {
        return 0.5;
    }
    let p = incomplete_gamma_p(0.5, z * z / 2.0);
    if z > 0.0 {
        0.5 + 0.5 * p
    } else {
        0.5 - 0.5 * p
    }
}

/// Student's t CDF with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    assert!(df > 0.0, "t_cdf requires df > 0");
    let x = df / (df + t * t);
    let p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
    if t > 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided p-value for a t statistic.
pub fn t_two_sided_p(t: f64, df: f64) -> f64 {
    let tail = 1.0 - t_cdf(t.abs(), df);
    (2.0 * tail).clamp(0.0, 1.0)
}

/// Chi-square CDF with `df` degrees of freedom.
pub fn chi_square_cdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0);
    if x <= 0.0 {
        return 0.0;
    }
    incomplete_gamma_p(df / 2.0, x / 2.0)
}

/// F-distribution CDF.
pub fn f_cdf(x: f64, d1: f64, d2: f64) -> f64 {
    assert!(d1 > 0.0 && d2 > 0.0);
    if x <= 0.0 {
        return 0.0;
    }
    incomplete_beta(d1 / 2.0, d2 / 2.0, d1 * x / (d1 * x + d2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_known_values() {
        // Γ(1) = Γ(2) = 1; Γ(5) = 24; Γ(0.5) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_bounds_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 - I_{1-x}(b,a).
        let a = 2.5;
        let b = 1.5;
        let x = 0.3;
        let lhs = incomplete_beta(a, b, x);
        let rhs = 1.0 - incomplete_beta(b, a, 1.0 - x);
        assert!((lhs - rhs).abs() < 1e-12);
        // I_x(1,1) = x (uniform).
        assert!((incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-12);
    }

    #[test]
    fn normal_cdf_reference_points() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-12);
        assert!((normal_cdf(1.959_963_985) - 0.975).abs() < 1e-6);
        assert!((normal_cdf(-1.959_963_985) - 0.025).abs() < 1e-6);
        assert!((normal_cdf(1.0) - 0.841_344_746).abs() < 1e-6);
        assert!(normal_cdf(8.0) > 0.999_999);
    }

    #[test]
    fn t_cdf_reference_points() {
        // t(df=∞) → normal; t(df=1) is Cauchy: CDF(1) = 0.75.
        assert!((t_cdf(1.0, 1.0) - 0.75).abs() < 1e-9);
        assert!((t_cdf(0.0, 7.0) - 0.5).abs() < 1e-12);
        // Critical value: t_{0.975, 10} ≈ 2.228139.
        assert!((t_cdf(2.228_139, 10.0) - 0.975).abs() < 1e-5);
        // Large df approaches the normal.
        assert!((t_cdf(1.96, 1e6) - normal_cdf(1.96)).abs() < 1e-4);
    }

    #[test]
    fn two_sided_p_behaviour() {
        assert!((t_two_sided_p(2.228_139, 10.0) - 0.05).abs() < 1e-4);
        assert!((t_two_sided_p(-2.228_139, 10.0) - 0.05).abs() < 1e-4);
        assert!((t_two_sided_p(0.0, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chi_square_reference_points() {
        // χ²(df=2) CDF(x) = 1 - e^{-x/2}.
        let x = 3.0;
        assert!((chi_square_cdf(x, 2.0) - (1.0 - (-x / 2.0f64).exp())).abs() < 1e-10);
        assert_eq!(chi_square_cdf(0.0, 4.0), 0.0);
        // 95th percentile of χ²(1) ≈ 3.841459.
        assert!((chi_square_cdf(3.841_459, 1.0) - 0.95).abs() < 1e-5);
    }

    #[test]
    fn f_cdf_reference_points() {
        // F(1, d2) relates to t²: P(F ≤ t²) = P(|T| ≤ t).
        let t = 2.228_139;
        let df = 10.0;
        let f = f_cdf(t * t, 1.0, df);
        assert!((f - 0.95).abs() < 1e-4);
        assert_eq!(f_cdf(0.0, 3.0, 4.0), 0.0);
    }

    #[test]
    fn incomplete_gamma_bounds() {
        assert_eq!(incomplete_gamma_p(1.5, 0.0), 0.0);
        assert!(incomplete_gamma_p(1.5, 100.0) > 0.999_999);
        // P(1, x) = 1 - e^{-x}.
        assert!((incomplete_gamma_p(1.0, 2.0) - (1.0 - (-2.0f64).exp())).abs() < 1e-10);
    }
}

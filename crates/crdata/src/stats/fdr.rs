//! Multiple-testing correction.
//!
//! The "top table of probe sets that are differentially expressed" (§V.A)
//! is ranked by adjusted p-values; Benjamini–Hochberg is the default, with
//! Bonferroni and Holm available as alternatives.

/// The available correction methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adjustment {
    /// Benjamini–Hochberg false-discovery-rate control.
    BenjaminiHochberg,
    /// Bonferroni family-wise control.
    Bonferroni,
    /// Holm step-down family-wise control.
    Holm,
    /// No adjustment.
    None,
}

impl Adjustment {
    /// Parse from the R-style method name.
    pub fn parse(s: &str) -> Option<Adjustment> {
        match s.to_ascii_lowercase().as_str() {
            "bh" | "fdr" | "benjamini-hochberg" => Some(Adjustment::BenjaminiHochberg),
            "bonferroni" => Some(Adjustment::Bonferroni),
            "holm" => Some(Adjustment::Holm),
            "none" => Some(Adjustment::None),
            _ => None,
        }
    }
}

/// Adjust a vector of p-values; the result is positionally aligned with
/// the input.
pub fn adjust(pvalues: &[f64], method: Adjustment) -> Vec<f64> {
    let n = pvalues.len();
    if n == 0 {
        return Vec::new();
    }
    match method {
        Adjustment::None => pvalues.to_vec(),
        Adjustment::Bonferroni => pvalues.iter().map(|p| (p * n as f64).min(1.0)).collect(),
        Adjustment::Holm => {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| pvalues[a].partial_cmp(&pvalues[b]).expect("finite p"));
            let mut out = vec![0.0; n];
            let mut running_max: f64 = 0.0;
            for (rank, &idx) in order.iter().enumerate() {
                let factor = (n - rank) as f64;
                let adj = (pvalues[idx] * factor).min(1.0);
                running_max = running_max.max(adj);
                out[idx] = running_max;
            }
            out
        }
        Adjustment::BenjaminiHochberg => {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_by(|&a, &b| pvalues[a].partial_cmp(&pvalues[b]).expect("finite p"));
            let mut out = vec![0.0; n];
            let mut running_min = 1.0f64;
            // Walk from the largest p down, taking the cumulative minimum.
            for rank in (0..n).rev() {
                let idx = order[rank];
                let adj = pvalues[idx] * n as f64 / (rank + 1) as f64;
                running_min = running_min.min(adj).min(1.0);
                out[idx] = running_min;
            }
            out
        }
    }
}

/// Count of discoveries at level `alpha` after adjustment.
pub fn discoveries(pvalues: &[f64], method: Adjustment, alpha: f64) -> usize {
    adjust(pvalues, method)
        .into_iter()
        .filter(|p| *p <= alpha)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bh_matches_r_reference() {
        // R: p.adjust(c(0.01, 0.02, 0.03, 0.04, 0.05), method="BH")
        //    = 0.05 0.05 0.05 0.05 0.05
        let p = [0.01, 0.02, 0.03, 0.04, 0.05];
        let adj = adjust(&p, Adjustment::BenjaminiHochberg);
        for a in &adj {
            assert!((a - 0.05).abs() < 1e-12, "{adj:?}");
        }
        // R: p.adjust(c(0.001, 0.008, 0.039, 0.041, 0.042, 0.06, 0.074, 0.205),
        //    method="BH") = 0.008 0.032 0.0672 0.0672 0.0672 0.08 0.08457 0.205
        let p = [0.001, 0.008, 0.039, 0.041, 0.042, 0.06, 0.074, 0.205];
        let adj = adjust(&p, Adjustment::BenjaminiHochberg);
        let expect = [
            0.008,
            0.032,
            0.0672,
            0.0672,
            0.0672,
            0.08,
            0.084_571_43,
            0.205,
        ];
        for (a, e) in adj.iter().zip(&expect) {
            assert!((a - e).abs() < 1e-6, "{adj:?}");
        }
    }

    #[test]
    fn bonferroni_multiplies_and_caps() {
        let p = [0.01, 0.3, 0.9];
        let adj = adjust(&p, Adjustment::Bonferroni);
        assert!((adj[0] - 0.03).abs() < 1e-12);
        assert!((adj[1] - 0.9).abs() < 1e-12);
        assert_eq!(adj[2], 1.0);
    }

    #[test]
    fn holm_matches_r_reference() {
        // R: p.adjust(c(0.01, 0.02, 0.03), method="holm") = 0.03 0.04 0.04
        let adj = adjust(&[0.01, 0.02, 0.03], Adjustment::Holm);
        let expect = [0.03, 0.04, 0.04];
        for (a, e) in adj.iter().zip(&expect) {
            assert!((a - e).abs() < 1e-12, "{adj:?}");
        }
    }

    #[test]
    fn adjustment_preserves_order_and_bounds() {
        let p = [0.5, 0.001, 0.2, 0.04, 0.9];
        for method in [
            Adjustment::BenjaminiHochberg,
            Adjustment::Bonferroni,
            Adjustment::Holm,
        ] {
            let adj = adjust(&p, method);
            for (raw, a) in p.iter().zip(&adj) {
                assert!(*a >= *raw - 1e-15, "{method:?} reduced a p-value");
                assert!(*a <= 1.0);
            }
            // Adjusted ordering is consistent with raw ordering.
            let mut idx: Vec<usize> = (0..p.len()).collect();
            idx.sort_by(|&a, &b| p[a].partial_cmp(&p[b]).unwrap());
            for pair in idx.windows(2) {
                assert!(adj[pair[0]] <= adj[pair[1]] + 1e-15, "{method:?}");
            }
        }
    }

    #[test]
    fn none_is_identity_and_empty_is_empty() {
        let p = [0.1, 0.2];
        assert_eq!(adjust(&p, Adjustment::None), p.to_vec());
        assert!(adjust(&[], Adjustment::BenjaminiHochberg).is_empty());
    }

    #[test]
    fn discoveries_counts() {
        let p = [0.001, 0.008, 0.039, 0.041, 0.042, 0.06, 0.074, 0.205];
        assert_eq!(discoveries(&p, Adjustment::BenjaminiHochberg, 0.05), 2);
        assert_eq!(discoveries(&p, Adjustment::None, 0.05), 5);
    }

    #[test]
    fn method_names_parse() {
        assert_eq!(Adjustment::parse("BH"), Some(Adjustment::BenjaminiHochberg));
        assert_eq!(
            Adjustment::parse("fdr"),
            Some(Adjustment::BenjaminiHochberg)
        );
        assert_eq!(Adjustment::parse("holm"), Some(Adjustment::Holm));
        assert_eq!(
            Adjustment::parse("bonferroni"),
            Some(Adjustment::Bonferroni)
        );
        assert_eq!(Adjustment::parse("none"), Some(Adjustment::None));
        assert_eq!(Adjustment::parse("magic"), None);
    }
}

//! The statistical substrate behind the CRData tools.
//!
//! Every CRData `.R` script reduces to calls into this layer: descriptive
//! statistics, special functions and distribution CDFs, t-tests with
//! multiple-testing correction, normalization, clustering, classification,
//! count tests, regression/PCA, and survival curves — all implemented from
//! scratch and validated against R reference values in the unit tests.

pub mod classify;
pub mod cluster;
pub mod counts;
pub mod describe;
pub mod distance;
pub mod fdr;
pub mod norm;
pub mod regress;
pub mod special;
pub mod survival;
pub mod ttest;

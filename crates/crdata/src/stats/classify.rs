//! Classification — `affyClassify.R` "conducts statistical classification
//! of affymetrix CEL Files into groups".

use std::collections::BTreeMap;

use super::distance::Metric;

/// A labelled training example.
#[derive(Debug, Clone)]
pub struct Example {
    /// Feature vector.
    pub features: Vec<f64>,
    /// Class label.
    pub label: String,
}

/// Nearest-centroid classifier.
#[derive(Debug, Clone)]
pub struct NearestCentroid {
    centroids: Vec<(String, Vec<f64>)>,
    metric: Metric,
}

impl NearestCentroid {
    /// Fit per-class mean profiles.
    pub fn fit(examples: &[Example], metric: Metric) -> Result<Self, String> {
        if examples.is_empty() {
            return Err("no training examples".to_string());
        }
        let dim = examples[0].features.len();
        let mut sums: BTreeMap<String, (Vec<f64>, usize)> = BTreeMap::new();
        for ex in examples {
            if ex.features.len() != dim {
                return Err("inconsistent feature dimensions".to_string());
            }
            let entry = sums
                .entry(ex.label.clone())
                .or_insert_with(|| (vec![0.0; dim], 0));
            for (s, f) in entry.0.iter_mut().zip(&ex.features) {
                *s += f;
            }
            entry.1 += 1;
        }
        let centroids = sums
            .into_iter()
            .map(|(label, (mut sum, count))| {
                for s in &mut sum {
                    *s /= count as f64;
                }
                (label, sum)
            })
            .collect();
        Ok(NearestCentroid { centroids, metric })
    }

    /// Class labels known to the model.
    pub fn classes(&self) -> Vec<&str> {
        self.centroids.iter().map(|(l, _)| l.as_str()).collect()
    }

    /// Predict the label for a feature vector, with the distance to the
    /// winning centroid.
    pub fn predict(&self, features: &[f64]) -> (String, f64) {
        let mut best: Option<(&str, f64)> = None;
        for (label, centroid) in &self.centroids {
            let d = self.metric.distance(features, centroid);
            if best.map(|(_, bd)| d < bd).unwrap_or(true) {
                best = Some((label, d));
            }
        }
        let (label, d) = best.expect("fit guarantees at least one class");
        (label.to_string(), d)
    }
}

/// k-nearest-neighbour prediction (majority vote; ties broken by summed
/// distance, then label order for determinism).
pub fn knn_predict(train: &[Example], features: &[f64], k: usize, metric: Metric) -> String {
    assert!(k >= 1, "k must be at least 1");
    assert!(!train.is_empty(), "knn needs training data");
    let mut scored: Vec<(f64, &str)> = train
        .iter()
        .map(|ex| (metric.distance(features, &ex.features), ex.label.as_str()))
        .collect();
    scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
    let k = k.min(scored.len());
    let mut votes: BTreeMap<&str, (usize, f64)> = BTreeMap::new();
    for (d, label) in &scored[..k] {
        let e = votes.entry(label).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += d;
    }
    votes
        .into_iter()
        .max_by(|a, b| {
            a.1 .0
                .cmp(&b.1 .0)
                .then_with(|| b.1 .1.partial_cmp(&a.1 .1).expect("finite"))
                .then_with(|| b.0.cmp(a.0))
        })
        .map(|(label, _)| label.to_string())
        .expect("at least one vote")
}

/// Leave-one-out cross-validated accuracy of k-NN on a training set.
pub fn knn_loocv_accuracy(examples: &[Example], k: usize, metric: Metric) -> f64 {
    if examples.len() < 2 {
        return 0.0;
    }
    let mut correct = 0;
    for i in 0..examples.len() {
        let rest: Vec<Example> = examples
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, e)| e.clone())
            .collect();
        let predicted = knn_predict(&rest, &examples[i].features, k, metric);
        if predicted == examples[i].label {
            correct += 1;
        }
    }
    correct as f64 / examples.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn training() -> Vec<Example> {
        vec![
            Example {
                features: vec![0.0, 0.0],
                label: "control".to_string(),
            },
            Example {
                features: vec![0.2, 0.1],
                label: "control".to_string(),
            },
            Example {
                features: vec![0.1, 0.2],
                label: "control".to_string(),
            },
            Example {
                features: vec![5.0, 5.0],
                label: "disease".to_string(),
            },
            Example {
                features: vec![5.2, 4.9],
                label: "disease".to_string(),
            },
            Example {
                features: vec![4.9, 5.1],
                label: "disease".to_string(),
            },
        ]
    }

    #[test]
    fn nearest_centroid_classifies_blobs() {
        let model = NearestCentroid::fit(&training(), Metric::Euclidean).unwrap();
        assert_eq!(model.classes(), vec!["control", "disease"]);
        let (label, d) = model.predict(&[0.1, 0.1]);
        assert_eq!(label, "control");
        assert!(d < 1.0);
        let (label, _) = model.predict(&[4.8, 5.3]);
        assert_eq!(label, "disease");
    }

    #[test]
    fn centroid_is_the_class_mean() {
        let model = NearestCentroid::fit(&training(), Metric::Euclidean).unwrap();
        let control = &model.centroids[0];
        assert!((control.1[0] - 0.1).abs() < 1e-12);
        assert!((control.1[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn fit_rejects_bad_input() {
        assert!(NearestCentroid::fit(&[], Metric::Euclidean).is_err());
        let bad = vec![
            Example {
                features: vec![1.0],
                label: "a".to_string(),
            },
            Example {
                features: vec![1.0, 2.0],
                label: "b".to_string(),
            },
        ];
        assert!(NearestCentroid::fit(&bad, Metric::Euclidean).is_err());
    }

    #[test]
    fn knn_majority_vote() {
        let label = knn_predict(&training(), &[0.3, 0.3], 3, Metric::Euclidean);
        assert_eq!(label, "control");
        let label = knn_predict(&training(), &[4.0, 4.0], 3, Metric::Euclidean);
        assert_eq!(label, "disease");
    }

    #[test]
    fn knn_k_one_is_nearest_neighbour() {
        let label = knn_predict(&training(), &[2.4, 2.4], 1, Metric::Euclidean);
        assert_eq!(label, "control", "slightly nearer the control blob");
    }

    #[test]
    fn loocv_accuracy_is_perfect_on_separated_blobs() {
        let acc = knn_loocv_accuracy(&training(), 3, Metric::Euclidean);
        assert_eq!(acc, 1.0);
    }

    #[test]
    fn loocv_on_mixed_data_is_imperfect() {
        let mixed: Vec<Example> = (0..10)
            .map(|i| Example {
                features: vec![(i % 2) as f64 * 0.001],
                label: if i < 5 {
                    "a".to_string()
                } else {
                    "b".to_string()
                },
            })
            .collect();
        let acc = knn_loocv_accuracy(&mixed, 3, Metric::Euclidean);
        assert!(acc < 1.0);
    }
}

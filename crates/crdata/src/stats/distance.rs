//! Distance metrics over expression profiles.

use super::describe::pearson;

/// Available metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Euclidean (L2).
    Euclidean,
    /// Manhattan (L1).
    Manhattan,
    /// `1 − r` correlation distance.
    Correlation,
}

impl Metric {
    /// Parse from an R-style name.
    pub fn parse(s: &str) -> Option<Metric> {
        match s.to_ascii_lowercase().as_str() {
            "euclidean" => Some(Metric::Euclidean),
            "manhattan" => Some(Metric::Manhattan),
            "correlation" | "pearson" => Some(Metric::Correlation),
            _ => None,
        }
    }

    /// Distance between two equal-length vectors.
    pub fn distance(self, a: &[f64], b: &[f64]) -> f64 {
        assert_eq!(a.len(), b.len(), "distance requires equal lengths");
        match self {
            Metric::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f64>()
                .sqrt(),
            Metric::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Metric::Correlation => 1.0 - pearson(a, b).unwrap_or(0.0),
        }
    }
}

/// Condensed pairwise distance matrix over `items` (each a feature
/// vector). Returned as a full symmetric `n × n` row-major matrix.
pub fn pairwise(items: &[Vec<f64>], metric: Metric) -> Vec<f64> {
    let n = items.len();
    let mut d = vec![0.0; n * n];
    for i in 0..n {
        for j in (i + 1)..n {
            let dist = metric.distance(&items[i], &items[j]);
            d[i * n + j] = dist;
            d[j * n + i] = dist;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_and_manhattan() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(Metric::Euclidean.distance(&a, &b), 5.0);
        assert_eq!(Metric::Manhattan.distance(&a, &b), 7.0);
        assert_eq!(Metric::Euclidean.distance(&a, &a), 0.0);
    }

    #[test]
    fn correlation_distance() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!(Metric::Correlation.distance(&a, &up).abs() < 1e-12);
        assert!((Metric::Correlation.distance(&a, &down) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pairwise_is_symmetric_with_zero_diagonal() {
        let items = vec![vec![0.0, 0.0], vec![1.0, 0.0], vec![0.0, 2.0]];
        let d = pairwise(&items, Metric::Euclidean);
        let n = 3;
        for i in 0..n {
            assert_eq!(d[i * n + i], 0.0);
            for j in 0..n {
                assert_eq!(d[i * n + j], d[j * n + i]);
            }
        }
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 2.0);
    }

    #[test]
    fn metric_names_parse() {
        assert_eq!(Metric::parse("euclidean"), Some(Metric::Euclidean));
        assert_eq!(Metric::parse("Pearson"), Some(Metric::Correlation));
        assert_eq!(Metric::parse("hamming"), None);
    }
}

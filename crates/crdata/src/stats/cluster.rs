//! Clustering: agglomerative hierarchical clustering (the engine behind
//! `heatmap_plot_demo.R`'s "hierarchical clustering by genes or samples")
//! and k-means.

use super::distance::{pairwise, Metric};

/// Linkage criteria for hierarchical clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Unweighted average (UPGMA).
    Average,
}

impl Linkage {
    /// Parse from an R-style name.
    pub fn parse(s: &str) -> Option<Linkage> {
        match s.to_ascii_lowercase().as_str() {
            "single" => Some(Linkage::Single),
            "complete" => Some(Linkage::Complete),
            "average" | "upgma" => Some(Linkage::Average),
            _ => None,
        }
    }
}

/// One merge step: clusters `a` and `b` (node ids) merge at `height` into
/// node `n_leaves + step`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Merge {
    /// First child node id.
    pub a: usize,
    /// Second child node id.
    pub b: usize,
    /// Merge height (cluster distance).
    pub height: f64,
}

/// A dendrogram over `n` leaves: `n − 1` merges. Leaf ids are
/// `0..n`; internal node `i` (0-based) has id `n + i`.
#[derive(Debug, Clone)]
pub struct Dendrogram {
    /// Number of leaves.
    pub n_leaves: usize,
    /// Merge list, in order of increasing height.
    pub merges: Vec<Merge>,
}

impl Dendrogram {
    /// The leaf ordering obtained by an in-order walk of the tree — the
    /// order in which heatmap rows/columns are drawn.
    pub fn leaf_order(&self) -> Vec<usize> {
        if self.n_leaves == 0 {
            return Vec::new();
        }
        if self.merges.is_empty() {
            return (0..self.n_leaves).collect();
        }
        let root = self.n_leaves + self.merges.len() - 1;
        let mut order = Vec::with_capacity(self.n_leaves);
        let mut stack = vec![root];
        while let Some(node) = stack.pop() {
            if node < self.n_leaves {
                order.push(node);
            } else {
                let m = &self.merges[node - self.n_leaves];
                // Push b first so a is visited first.
                stack.push(m.b);
                stack.push(m.a);
            }
        }
        order
    }

    /// Cut the tree into `k` clusters; returns a cluster label per leaf
    /// (labels are arbitrary but consistent).
    pub fn cut(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1, "cut needs k >= 1");
        let n = self.n_leaves;
        if n == 0 {
            return Vec::new();
        }
        let k = k.min(n);
        // Union-find over leaves, applying merges until k clusters remain.
        let mut parent: Vec<usize> = (0..n + self.merges.len()).collect();
        fn find(parent: &mut Vec<usize>, x: usize) -> usize {
            if parent[x] != x {
                let root = find(parent, parent[x]);
                parent[x] = root;
            }
            parent[x]
        }
        let merges_to_apply = n - k;
        for (i, m) in self.merges.iter().take(merges_to_apply).enumerate() {
            let node = n + i;
            let ra = find(&mut parent, m.a);
            let rb = find(&mut parent, m.b);
            parent[ra] = node;
            parent[rb] = node;
        }
        // Later merge nodes map to themselves; label leaves by root.
        let mut label_of_root = std::collections::BTreeMap::new();
        let mut labels = Vec::with_capacity(n);
        for leaf in 0..n {
            let root = find(&mut parent, leaf);
            let next = label_of_root.len();
            let label = *label_of_root.entry(root).or_insert(next);
            labels.push(label);
        }
        labels
    }
}

/// Agglomerative hierarchical clustering of `items` (feature vectors).
pub fn hierarchical(items: &[Vec<f64>], metric: Metric, linkage: Linkage) -> Dendrogram {
    let n = items.len();
    if n == 0 {
        return Dendrogram {
            n_leaves: 0,
            merges: Vec::new(),
        };
    }
    let base = pairwise(items, metric);
    // Active cluster list: (node id, member leaf indices).
    let mut clusters: Vec<(usize, Vec<usize>)> = (0..n).map(|i| (i, vec![i])).collect();
    let mut merges = Vec::with_capacity(n.saturating_sub(1));
    let mut next_node = n;

    let cluster_distance = |a: &[usize], b: &[usize]| -> f64 {
        let mut best = match linkage {
            Linkage::Single => f64::INFINITY,
            Linkage::Complete => f64::NEG_INFINITY,
            Linkage::Average => 0.0,
        };
        let mut sum = 0.0;
        for &i in a {
            for &j in b {
                let d = base[i * n + j];
                match linkage {
                    Linkage::Single => best = best.min(d),
                    Linkage::Complete => best = best.max(d),
                    Linkage::Average => sum += d,
                }
            }
        }
        match linkage {
            Linkage::Average => sum / (a.len() * b.len()) as f64,
            _ => best,
        }
    };

    while clusters.len() > 1 {
        // Find the closest pair (deterministic tie-break by index).
        let mut best = (0usize, 1usize, f64::INFINITY);
        for i in 0..clusters.len() {
            for j in (i + 1)..clusters.len() {
                let d = cluster_distance(&clusters[i].1, &clusters[j].1);
                if d < best.2 {
                    best = (i, j, d);
                }
            }
        }
        let (i, j, height) = best;
        let (id_b, members_b) = clusters.remove(j);
        let (id_a, members_a) = clusters.remove(i);
        merges.push(Merge {
            a: id_a,
            b: id_b,
            height,
        });
        let mut members = members_a;
        members.extend(members_b);
        clusters.push((next_node, members));
        next_node += 1;
    }

    Dendrogram {
        n_leaves: n,
        merges,
    }
}

/// k-means clustering with deterministic initialization (evenly spaced
/// seeds over the input order). Returns `(assignments, centroids)`.
pub fn kmeans(items: &[Vec<f64>], k: usize, max_iter: usize) -> (Vec<usize>, Vec<Vec<f64>>) {
    assert!(k >= 1);
    let n = items.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let k = k.min(n);
    let dim = items[0].len();
    // Deterministic seeding: evenly spaced items.
    let mut centroids: Vec<Vec<f64>> = (0..k).map(|i| items[i * n / k].clone()).collect();
    let mut assignments = vec![0usize; n];
    for _ in 0..max_iter {
        // Assign.
        let mut changed = false;
        for (idx, item) in items.iter().enumerate() {
            let mut best = (0usize, f64::INFINITY);
            for (c, centroid) in centroids.iter().enumerate() {
                let d = Metric::Euclidean.distance(item, centroid);
                if d < best.1 {
                    best = (c, d);
                }
            }
            if assignments[idx] != best.0 {
                assignments[idx] = best.0;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (idx, item) in items.iter().enumerate() {
            let c = assignments[idx];
            counts[c] += 1;
            for (s, v) in sums[c].iter_mut().zip(item) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                for s in &mut sums[c] {
                    *s /= counts[c] as f64;
                }
                centroids[c] = sums[c].clone();
            }
        }
        if !changed {
            break;
        }
    }
    (assignments, centroids)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two well-separated blobs of three points each.
    fn blobs() -> Vec<Vec<f64>> {
        vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![10.0, 10.1],
        ]
    }

    #[test]
    fn hierarchical_separates_blobs() {
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dend = hierarchical(&blobs(), Metric::Euclidean, linkage);
            assert_eq!(dend.merges.len(), 5);
            let labels = dend.cut(2);
            assert_eq!(labels[0], labels[1]);
            assert_eq!(labels[0], labels[2]);
            assert_eq!(labels[3], labels[4]);
            assert_eq!(labels[3], labels[5]);
            assert_ne!(labels[0], labels[3], "{linkage:?}");
        }
    }

    #[test]
    fn merge_heights_are_nondecreasing_for_average() {
        let dend = hierarchical(&blobs(), Metric::Euclidean, Linkage::Average);
        for pair in dend.merges.windows(2) {
            assert!(pair[0].height <= pair[1].height + 1e-12);
        }
        // The last merge joins the two blobs at a large height.
        assert!(dend.merges.last().unwrap().height > 5.0);
    }

    #[test]
    fn leaf_order_is_a_permutation_grouping_blobs() {
        let dend = hierarchical(&blobs(), Metric::Euclidean, Linkage::Average);
        let order = dend.leaf_order();
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4, 5]);
        // The first three drawn leaves are one blob (order within may vary).
        let first: std::collections::BTreeSet<usize> = order[..3].iter().copied().collect();
        assert!(
            first == [0, 1, 2].into_iter().collect() || first == [3, 4, 5].into_iter().collect()
        );
    }

    #[test]
    fn cut_extremes() {
        let dend = hierarchical(&blobs(), Metric::Euclidean, Linkage::Complete);
        let all_one = dend.cut(1);
        assert!(all_one.iter().all(|&l| l == all_one[0]));
        let all_own = dend.cut(6);
        let distinct: std::collections::BTreeSet<_> = all_own.iter().collect();
        assert_eq!(distinct.len(), 6);
        // k larger than n clamps.
        assert_eq!(dend.cut(99).len(), 6);
    }

    #[test]
    fn singleton_and_empty_input() {
        let dend = hierarchical(&[], Metric::Euclidean, Linkage::Single);
        assert!(dend.leaf_order().is_empty());
        assert!(dend.cut(1).is_empty());
        let one = hierarchical(&[vec![1.0]], Metric::Euclidean, Linkage::Single);
        assert_eq!(one.leaf_order(), vec![0]);
        assert_eq!(one.cut(1), vec![0]);
    }

    #[test]
    fn kmeans_separates_blobs() {
        let (labels, centroids) = kmeans(&blobs(), 2, 50);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[3]);
        assert_eq!(centroids.len(), 2);
        // Centroids land near the blob centers.
        let near_origin = centroids.iter().any(|c| c[0] < 1.0 && c[1] < 1.0);
        let near_ten = centroids.iter().any(|c| c[0] > 9.0 && c[1] > 9.0);
        assert!(near_origin && near_ten, "{centroids:?}");
    }

    #[test]
    fn kmeans_k_clamps_to_n() {
        let items = vec![vec![1.0], vec![2.0]];
        let (labels, centroids) = kmeans(&items, 10, 10);
        assert_eq!(labels.len(), 2);
        assert_eq!(centroids.len(), 2);
    }

    #[test]
    fn linkage_names_parse() {
        assert_eq!(Linkage::parse("complete"), Some(Linkage::Complete));
        assert_eq!(Linkage::parse("UPGMA"), Some(Linkage::Average));
        assert_eq!(Linkage::parse("ward"), None);
    }
}

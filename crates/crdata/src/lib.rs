//! `cumulus-crdata` — the CRData statistical toolset and its substrate.
//!
//! CRData.org "is a web-based computational tool designed to execute
//! BioConductor scripts, written in R" (§IV.B); the paper integrates its 35
//! tools into Galaxy for the CardioVascular Research Grid. This crate
//! reimplements the whole stack natively in Rust:
//!
//! * [`matrix`] — labelled expression matrices;
//! * [`stats`] — descriptive statistics, special functions / distribution
//!   CDFs, t-tests, multiple-testing correction, normalization, clustering,
//!   classification, count tests, regression/PCA, survival (validated
//!   against R reference values);
//! * [`genomics`] — intervals, an indexed feature set, and read counting;
//! * [`svg`] — real SVG figure rendering (volcano/MA/PCA plots, heatmaps,
//!   boxplots);
//! * [`datagen`] — synthetic CEL bundles and RNA-seq read sets with
//!   planted ground truth, standing in for the paper's proprietary CVRG
//!   datasets (`fourCelFileSamples.zip` 10.7 MB, `affyCelFileSamples.zip`
//!   190.3 MB);
//! * [`tools`] — the 35 CRData tools as complete Galaxy tool definitions,
//!   each computing real artifacts with the calibrated R-tool cost model.

#![warn(missing_docs)]

pub mod datagen;
pub mod genomics;
pub mod matrix;
pub mod stats;
pub mod svg;
pub mod tools;

pub use datagen::{
    generate_cel_bundle, generate_read_set, CelBundle, CelBundleSpec, ReadSet, ReadSetSpec,
};
pub use matrix::LabelledMatrix;
pub use tools::{catalog, register_all, TOOL_COUNT};

use cumulus_galaxy::Content;

/// Convert a labelled matrix into Galaxy dataset content.
pub fn matrix_to_content(m: LabelledMatrix) -> Content {
    Content::Matrix {
        row_names: m.row_names,
        col_names: m.col_names,
        values: m.values,
    }
}

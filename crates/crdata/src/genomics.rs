//! Genomic intervals, an interval index, and read counting —
//! the substrate behind `sequenceCountsPerTranscript.R`, which
//! "summarizes the number of reads (presented in one or more BAM files)
//! aligning to different genomic features retrieved from the UCSC genome
//! browser".

use std::collections::BTreeMap;

/// A half-open genomic interval `[start, end)` on a named chromosome.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Interval {
    /// Chromosome name, e.g. `chr1`.
    pub chrom: String,
    /// 0-based inclusive start.
    pub start: u64,
    /// Exclusive end.
    pub end: u64,
}

impl Interval {
    /// Construct; panics when `end <= start`.
    pub fn new(chrom: &str, start: u64, end: u64) -> Self {
        assert!(end > start, "interval must be non-empty: {start}..{end}");
        Interval {
            chrom: chrom.to_string(),
            start,
            end,
        }
    }

    /// Length in bases.
    pub fn len(&self) -> u64 {
        self.end - self.start
    }

    /// Intervals are never empty (enforced at construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Do two intervals overlap (same chromosome, ranges intersect)?
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.chrom == other.chrom && self.start < other.end && other.start < self.end
    }
}

/// A transcript: a named set of exons on one chromosome (the "genomic
/// feature" rows of a UCSC table).
#[derive(Debug, Clone)]
pub struct Transcript {
    /// Transcript / gene name.
    pub name: String,
    /// Exons, non-overlapping and sorted by start.
    pub exons: Vec<Interval>,
}

impl Transcript {
    /// Build from exons (sorted defensively).
    pub fn new(name: &str, mut exons: Vec<Interval>) -> Self {
        exons.sort_by_key(|e| e.start);
        Transcript {
            name: name.to_string(),
            exons,
        }
    }

    /// Total exonic length.
    pub fn exonic_length(&self) -> u64 {
        self.exons.iter().map(Interval::len).sum()
    }

    /// Does a read interval overlap any exon?
    pub fn overlaps(&self, read: &Interval) -> bool {
        self.exons.iter().any(|e| e.overlaps(read))
    }
}

/// An aligned read (a BAM record reduced to what counting needs).
#[derive(Debug, Clone, PartialEq)]
pub struct Read {
    /// Alignment interval.
    pub span: Interval,
}

/// An indexed feature set supporting fast overlap queries.
///
/// Per chromosome, exon intervals are sorted by start with a running
/// maximum of ends, giving O(log n + k) stab queries without a full
/// augmented tree.
#[derive(Debug, Default)]
pub struct FeatureIndex {
    /// Transcripts by insertion order.
    transcripts: Vec<Transcript>,
    /// chrom → sorted (start, end, transcript index).
    per_chrom: BTreeMap<String, Vec<(u64, u64, usize)>>,
    /// chrom → running max of `end` aligned with `per_chrom`.
    max_end_prefix: BTreeMap<String, Vec<u64>>,
}

impl FeatureIndex {
    /// Build an index over transcripts.
    pub fn build(transcripts: Vec<Transcript>) -> Self {
        let mut per_chrom: BTreeMap<String, Vec<(u64, u64, usize)>> = BTreeMap::new();
        for (t_idx, t) in transcripts.iter().enumerate() {
            for exon in &t.exons {
                per_chrom
                    .entry(exon.chrom.clone())
                    .or_default()
                    .push((exon.start, exon.end, t_idx));
            }
        }
        let mut max_end_prefix = BTreeMap::new();
        for (chrom, exons) in per_chrom.iter_mut() {
            exons.sort_unstable();
            let mut running = 0u64;
            let prefix: Vec<u64> = exons
                .iter()
                .map(|(_, end, _)| {
                    running = running.max(*end);
                    running
                })
                .collect();
            max_end_prefix.insert(chrom.clone(), prefix);
        }
        FeatureIndex {
            transcripts,
            per_chrom,
            max_end_prefix,
        }
    }

    /// Number of indexed transcripts.
    pub fn len(&self) -> usize {
        self.transcripts.len()
    }

    /// True when no transcripts are indexed.
    pub fn is_empty(&self) -> bool {
        self.transcripts.is_empty()
    }

    /// Transcript names in order.
    pub fn names(&self) -> Vec<&str> {
        self.transcripts.iter().map(|t| t.name.as_str()).collect()
    }

    /// Indices of transcripts overlapping `read` (deduplicated, sorted).
    pub fn overlapping(&self, read: &Interval) -> Vec<usize> {
        let Some(exons) = self.per_chrom.get(&read.chrom) else {
            return Vec::new();
        };
        let prefix = &self.max_end_prefix[&read.chrom];
        // Binary search for the first exon whose start >= read.end; all
        // candidates are before that point.
        let upper = exons.partition_point(|(start, _, _)| *start < read.end);
        let mut hits = Vec::new();
        // Walk backwards; stop when the running max end can no longer reach
        // the read.
        for i in (0..upper).rev() {
            if prefix[i] <= read.start {
                break;
            }
            let (start, end, t_idx) = exons[i];
            if start < read.end && read.start < end {
                hits.push(t_idx);
            }
        }
        hits.sort_unstable();
        hits.dedup();
        hits
    }

    /// Count reads per transcript. A read overlapping several transcripts
    /// counts toward each (union counting, like `countOverlaps`).
    pub fn count_reads(&self, reads: &[Read]) -> Vec<(String, u64)> {
        let mut counts = vec![0u64; self.transcripts.len()];
        for read in reads {
            for t_idx in self.overlapping(&read.span) {
                counts[t_idx] += 1;
            }
        }
        self.transcripts
            .iter()
            .zip(counts)
            .map(|(t, c)| (t.name.clone(), c))
            .collect()
    }
}

/// Generate a small UCSC-style gene annotation: `n` transcripts of 2–4
/// exons laid out along one synthetic chromosome.
pub fn synthetic_annotation(n: usize) -> Vec<Transcript> {
    let mut out = Vec::with_capacity(n);
    let mut cursor = 1_000u64;
    for i in 0..n {
        let exon_count = 2 + (i % 3) as u64;
        let mut exons = Vec::new();
        for e in 0..exon_count {
            let len = 200 + (i as u64 * 37 + e * 101) % 800;
            exons.push(Interval::new("chrS", cursor, cursor + len));
            cursor += len + 300; // intron
        }
        out.push(Transcript::new(&format!("TX{i:04}"), exons));
        cursor += 2_000; // intergenic gap
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(start: u64, end: u64) -> Interval {
        Interval::new("chr1", start, end)
    }

    #[test]
    fn interval_basics() {
        let a = iv(100, 200);
        assert_eq!(a.len(), 100);
        assert!(a.overlaps(&iv(150, 250)));
        assert!(a.overlaps(&iv(199, 300)));
        assert!(!a.overlaps(&iv(200, 300)), "half-open");
        assert!(!a.overlaps(&Interval::new("chr2", 100, 200)), "chrom");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_interval_panics() {
        Interval::new("chr1", 5, 5);
    }

    #[test]
    fn transcript_exonic_length_and_overlap() {
        let t = Transcript::new("TP53", vec![iv(100, 200), iv(500, 700)]);
        assert_eq!(t.exonic_length(), 300);
        assert!(t.overlaps(&iv(150, 160)));
        assert!(t.overlaps(&iv(690, 800)));
        assert!(!t.overlaps(&iv(300, 400)), "intron");
    }

    #[test]
    fn index_overlap_queries() {
        let transcripts = vec![
            Transcript::new("A", vec![iv(100, 200)]),
            Transcript::new("B", vec![iv(150, 300)]),
            Transcript::new("C", vec![iv(1000, 1100)]),
        ];
        let index = FeatureIndex::build(transcripts);
        assert_eq!(index.len(), 3);
        assert_eq!(index.overlapping(&iv(160, 170)), vec![0, 1]);
        assert_eq!(index.overlapping(&iv(250, 260)), vec![1]);
        assert_eq!(index.overlapping(&iv(1050, 1060)), vec![2]);
        assert!(index.overlapping(&iv(400, 500)).is_empty());
        assert!(index
            .overlapping(&Interval::new("chrX", 160, 170))
            .is_empty());
    }

    #[test]
    fn counting_assigns_to_all_overlaps() {
        let transcripts = vec![
            Transcript::new("A", vec![iv(100, 200)]),
            Transcript::new("B", vec![iv(150, 300)]),
        ];
        let index = FeatureIndex::build(transcripts);
        let reads = vec![
            Read { span: iv(110, 140) }, // A only
            Read { span: iv(160, 190) }, // A and B
            Read { span: iv(250, 280) }, // B only
            Read { span: iv(400, 430) }, // neither
        ];
        let counts = index.count_reads(&reads);
        assert_eq!(counts, vec![("A".to_string(), 2), ("B".to_string(), 2)]);
    }

    #[test]
    fn multi_exon_transcript_counts_once_per_read() {
        let t = Transcript::new("M", vec![iv(0, 50), iv(100, 150)]);
        let index = FeatureIndex::build(vec![t]);
        // A read spanning the intron junction overlaps both exons but must
        // count once.
        let reads = vec![Read { span: iv(40, 110) }];
        assert_eq!(index.count_reads(&reads)[0].1, 1);
    }

    #[test]
    fn synthetic_annotation_is_well_formed() {
        let ann = synthetic_annotation(20);
        assert_eq!(ann.len(), 20);
        for t in &ann {
            assert!(!t.exons.is_empty());
            for pair in t.exons.windows(2) {
                assert!(pair[0].end < pair[1].start, "exons are disjoint");
            }
        }
        // Transcripts are disjoint along the chromosome.
        for pair in ann.windows(2) {
            let last = pair[0].exons.last().unwrap();
            let first = &pair[1].exons[0];
            assert!(last.end < first.start);
        }
    }

    #[test]
    fn large_index_stab_query_is_correct() {
        // Compare against brute force on a bigger annotation.
        let ann = synthetic_annotation(200);
        let index = FeatureIndex::build(ann.clone());
        for probe_start in (0..200_000u64).step_by(997) {
            let read = Interval::new("chrS", probe_start, probe_start + 120);
            let fast = index.overlapping(&read);
            let brute: Vec<usize> = ann
                .iter()
                .enumerate()
                .filter(|(_, t)| t.overlaps(&read))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(fast, brute, "at {probe_start}");
        }
    }
}

//! Expression-array (Affymetrix) tools.

use std::sync::Arc;

use cumulus_galaxy::{CostModel, OutputSpec, ParamSpec, ToolDefinition, ToolError, ToolInvocation};

use crate::matrix::LabelledMatrix;
use crate::stats::classify::{knn_loocv_accuracy, Example, NearestCentroid};
use crate::stats::cluster::{hierarchical, kmeans, Linkage};
use crate::stats::describe;
use crate::stats::distance::Metric;
use crate::stats::fdr::{adjust, Adjustment};
use crate::stats::norm;
use crate::stats::regress::{pca_scores, principal_components};
use crate::stats::ttest::welch_t_test;
use crate::svg::{self, PlotPoint};

use super::{fmt, int_param, matrix_content, matrix_input, svg_output, table_output};

/// All expression tools.
pub fn tools() -> Vec<ToolDefinition> {
    vec![
        affy_differential_expression(),
        affy_classify(),
        affy_normalize(),
        affy_qc(),
        heatmap_plot_demo(),
        affy_boxplot(),
        affy_ma_plot(),
        affy_volcano_plot(),
        affy_pca(),
        affy_correlation_matrix(),
        affy_gene_filter(),
        affy_cluster_samples(),
        affy_kmeans_genes(),
    ]
}

fn out(name: &str, dtype: &str) -> OutputSpec {
    OutputSpec {
        name: name.to_string(),
        dtype: dtype.to_string(),
    }
}

/// Normalize (RMA-like) then split a matrix into the two groups encoded in
/// its sample names.
#[allow(clippy::type_complexity)]
fn normalized_groups(
    inv: &ToolInvocation,
) -> Result<(LabelledMatrix, Vec<String>, Vec<Vec<usize>>), ToolError> {
    let mut m = matrix_input(inv, "input")?;
    if inv.param("normalize") != Some("no") {
        norm::rma_like(&mut m);
    } else {
        norm::log2_transform(&mut m);
    }
    let (names, groups) = m.groups_from_col_names();
    Ok((m, names, groups))
}

/// The per-probe differential-expression table shared by several tools.
struct DiffExpr {
    probes: Vec<String>,
    log_fc: Vec<f64>,
    t: Vec<f64>,
    p: Vec<f64>,
    adj_p: Vec<f64>,
}

fn differential_expression(inv: &ToolInvocation) -> Result<DiffExpr, ToolError> {
    let (m, names, groups) = normalized_groups(inv)?;
    if names.len() != 2 {
        return Err(ToolError(format!(
            "two-group test requires exactly 2 groups in sample names, found {names:?}"
        )));
    }
    let method = Adjustment::parse(inv.param("adjust").unwrap_or("BH"))
        .ok_or_else(|| ToolError("unknown adjustment method".to_string()))?;
    let mut probes = Vec::with_capacity(m.nrows());
    let mut log_fc = Vec::with_capacity(m.nrows());
    let mut t_stats = Vec::with_capacity(m.nrows());
    let mut p_values = Vec::with_capacity(m.nrows());
    for r in 0..m.nrows() {
        let row = m.row(r);
        let g1: Vec<f64> = groups[0].iter().map(|&c| row[c]).collect();
        let g2: Vec<f64> = groups[1].iter().map(|&c| row[c]).collect();
        let result = welch_t_test(&g2, &g1);
        let (t, p, diff) = match result {
            Some(r) => (r.t, r.p, r.mean_diff),
            None => (0.0, 1.0, describe::mean(&g2) - describe::mean(&g1)),
        };
        probes.push(m.row_names[r].clone());
        log_fc.push(diff); // already log2 scale
        t_stats.push(t);
        p_values.push(p);
    }
    let adj_p = adjust(&p_values, method);
    Ok(DiffExpr {
        probes,
        log_fc,
        t: t_stats,
        p: p_values,
        adj_p,
    })
}

/// `affyDifferentialExpression.R` — "conducts two-group differential
/// expression on Affymetrix CEL files … creates a top table of probe sets
/// that are differentially expressed" (§V.A, Figures 7–9).
fn affy_differential_expression() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_affyDifferentialExpression".to_string(),
        name: "affyDifferentialExpression.R".to_string(),
        version: "1.0".to_string(),
        description: "two-group differential expression on Affymetrix CEL files".to_string(),
        params: vec![
            ParamSpec::dataset("input", "CEL file archive"),
            ParamSpec::select("normalize", "Normalize first", &["yes", "no"], "yes"),
            ParamSpec::select(
                "adjust",
                "P-value adjustment",
                &["BH", "holm", "bonferroni", "none"],
                "BH",
            ),
            ParamSpec::integer("top", "Top table size", 50, Some(1), Some(100_000)),
        ],
        outputs: vec![out("toptable", "tabular"), out("plot", "svg")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let de = differential_expression(inv)?;
            let top = int_param(inv, "top")? as usize;
            // Rank by adjusted p.
            let mut order: Vec<usize> = (0..de.probes.len()).collect();
            order.sort_by(|&a, &b| de.adj_p[a].partial_cmp(&de.adj_p[b]).expect("finite p"));
            order.truncate(top);
            let rows: Vec<Vec<String>> = order
                .iter()
                .map(|&i| {
                    vec![
                        de.probes[i].clone(),
                        fmt(de.log_fc[i]),
                        fmt(de.t[i]),
                        fmt(de.p[i]),
                        fmt(de.adj_p[i]),
                    ]
                })
                .collect();
            let columns = ["ID", "logFC", "t", "P.Value", "adj.P.Val"]
                .iter()
                .map(|s| s.to_string())
                .collect();
            // Volcano figure of all probes, significant ones highlighted.
            let points: Vec<PlotPoint> = (0..de.probes.len())
                .map(|i| PlotPoint {
                    x: de.log_fc[i],
                    y: -de.p[i].max(1e-300).log10(),
                    highlight: de.adj_p[i] <= 0.05,
                })
                .collect();
            Ok(vec![
                table_output(
                    "toptable",
                    "top table (differential expression)",
                    columns,
                    rows,
                ),
                svg_output(
                    "plot",
                    "volcano plot",
                    svg::scatter_plot(
                        "affyDifferentialExpression",
                        "log2 fold change",
                        "-log10 p",
                        &points,
                    ),
                ),
            ])
        }),
    }
}

/// `affyClassify.R` — "statistical classification of affymetrix CEL Files
/// into groups".
fn affy_classify() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_affyClassify".to_string(),
        name: "affyClassify.R".to_string(),
        version: "1.0".to_string(),
        description: "statistical classification of Affymetrix CEL files into groups".to_string(),
        params: vec![
            ParamSpec::dataset("input", "CEL file archive (training groups in names)"),
            ParamSpec::select("method", "Classifier", &["centroid", "knn"], "centroid"),
            ParamSpec::integer("k", "k (for knn)", 3, Some(1), Some(25)),
        ],
        outputs: vec![out("assignments", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (m, _names, _groups) = normalized_groups(inv)?;
            // Each sample is an example; label = group prefix.
            let examples: Vec<Example> = (0..m.ncols())
                .map(|c| Example {
                    features: m.col(c),
                    label: m.col_names[c].split('_').next().unwrap_or("?").to_string(),
                })
                .collect();
            let method = inv.param("method").unwrap_or("centroid").to_string();
            let k = int_param(inv, "k")? as usize;
            let mut rows = Vec::with_capacity(examples.len());
            match method.as_str() {
                "centroid" => {
                    let model =
                        NearestCentroid::fit(&examples, Metric::Correlation).map_err(ToolError)?;
                    for (c, ex) in examples.iter().enumerate() {
                        let (label, d) = model.predict(&ex.features);
                        rows.push(vec![
                            m.col_names[c].clone(),
                            ex.label.clone(),
                            label,
                            fmt(d),
                        ]);
                    }
                }
                _ => {
                    for (c, ex) in examples.iter().enumerate() {
                        let rest: Vec<Example> = examples
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != c)
                            .map(|(_, e)| e.clone())
                            .collect();
                        let label = crate::stats::classify::knn_predict(
                            &rest,
                            &ex.features,
                            k,
                            Metric::Correlation,
                        );
                        rows.push(vec![
                            m.col_names[c].clone(),
                            ex.label.clone(),
                            label,
                            String::new(),
                        ]);
                    }
                }
            }
            let accuracy = knn_loocv_accuracy(&examples, k, Metric::Correlation);
            rows.push(vec![
                "(loocv-accuracy)".to_string(),
                String::new(),
                String::new(),
                fmt(accuracy),
            ]);
            Ok(vec![table_output(
                "assignments",
                "sample classification",
                ["sample", "true", "predicted", "score"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                rows,
            )])
        }),
    }
}

/// RMA-like normalization as a standalone step.
fn affy_normalize() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_affyNormalize".to_string(),
        name: "affyNormalize.R".to_string(),
        version: "1.0".to_string(),
        description: "RMA-style background correction, quantile normalization, log2".to_string(),
        params: vec![ParamSpec::dataset("input", "CEL file archive")],
        outputs: vec![out("normalized", "matrix")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let mut m = matrix_input(inv, "input")?;
            norm::rma_like(&mut m);
            Ok(vec![cumulus_galaxy::ToolOutput {
                name: "normalized".to_string(),
                dataset_name: "normalized expression matrix".to_string(),
                content: matrix_content(m),
                size: None,
            }])
        }),
    }
}

/// Per-sample quality-control statistics.
fn affy_qc() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_affyQC".to_string(),
        name: "affyQC.R".to_string(),
        version: "1.0".to_string(),
        description: "per-array quality metrics (mean, sd, median, MAD)".to_string(),
        params: vec![ParamSpec::dataset("input", "CEL file archive")],
        outputs: vec![out("qc", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let mut m = matrix_input(inv, "input")?;
            norm::log2_transform(&mut m);
            let rows: Vec<Vec<String>> = (0..m.ncols())
                .map(|c| {
                    let col = m.col(c);
                    vec![
                        m.col_names[c].clone(),
                        fmt(describe::mean(&col)),
                        fmt(describe::std_dev(&col).unwrap_or(0.0)),
                        fmt(describe::median(&col).unwrap_or(0.0)),
                        fmt(describe::mad(&col).unwrap_or(0.0)),
                    ]
                })
                .collect();
            Ok(vec![table_output(
                "qc",
                "array QC metrics",
                ["sample", "mean", "sd", "median", "mad"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                rows,
            )])
        }),
    }
}

/// `heatmap_plot_demo.R` — "performs hierarchical clustering by genes or
/// samples, and then plots a heatmap".
fn heatmap_plot_demo() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_heatmap_plot_demo".to_string(),
        name: "heatmap_plot_demo.R".to_string(),
        version: "1.0".to_string(),
        description: "hierarchical clustering by genes or samples, plotted as a heatmap"
            .to_string(),
        params: vec![
            ParamSpec::dataset("input", "Expression matrix"),
            ParamSpec::select("by", "Cluster by", &["genes", "samples"], "genes"),
            ParamSpec::select(
                "linkage",
                "Linkage",
                &["average", "complete", "single"],
                "average",
            ),
            ParamSpec::integer("top", "Most-variable genes to draw", 40, Some(2), Some(500)),
        ],
        outputs: vec![out("heatmap", "svg"), out("order", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let mut m = matrix_input(inv, "input")?;
            norm::log2_transform(&mut m);
            // Keep the most variable genes.
            let top = int_param(inv, "top")? as usize;
            let mut by_var: Vec<usize> = (0..m.nrows()).collect();
            by_var.sort_by(|&a, &b| {
                let va = describe::variance(m.row(a)).unwrap_or(0.0);
                let vb = describe::variance(m.row(b)).unwrap_or(0.0);
                vb.partial_cmp(&va).expect("finite")
            });
            by_var.truncate(top.min(m.nrows()));
            let mut sub = m.select_rows(&by_var);
            norm::zscore_rows(&mut sub);

            let linkage = Linkage::parse(inv.param("linkage").unwrap_or("average"))
                .ok_or_else(|| ToolError("unknown linkage".to_string()))?;
            let by_samples = inv.param("by") == Some("samples");
            let items: Vec<Vec<f64>> = if by_samples {
                (0..sub.ncols()).map(|c| sub.col(c)).collect()
            } else {
                (0..sub.nrows()).map(|r| sub.row(r).to_vec()).collect()
            };
            let dend = hierarchical(&items, Metric::Correlation, linkage);
            let order = dend.leaf_order();

            let (row_labels, col_labels, values) = if by_samples {
                let cols: Vec<usize> = order.clone();
                let reordered = sub.select_cols(&cols);
                (
                    reordered.row_names.clone(),
                    reordered.col_names.clone(),
                    (0..reordered.nrows())
                        .map(|r| reordered.row(r).to_vec())
                        .collect::<Vec<_>>(),
                )
            } else {
                let reordered = sub.select_rows(&order);
                (
                    reordered.row_names.clone(),
                    reordered.col_names.clone(),
                    (0..reordered.nrows())
                        .map(|r| reordered.row(r).to_vec())
                        .collect::<Vec<_>>(),
                )
            };
            let svg_doc = svg::heatmap("heatmap_plot_demo", &row_labels, &col_labels, &values);
            let order_rows: Vec<Vec<String>> = order
                .iter()
                .enumerate()
                .map(|(pos, &leaf)| {
                    let label = if by_samples {
                        sub.col_names[leaf].clone()
                    } else {
                        sub.row_names[leaf].clone()
                    };
                    vec![pos.to_string(), label]
                })
                .collect();
            Ok(vec![
                svg_output("heatmap", "clustered heatmap", svg_doc),
                table_output(
                    "order",
                    "dendrogram leaf order",
                    vec!["position".to_string(), "label".to_string()],
                    order_rows,
                ),
            ])
        }),
    }
}

/// Per-sample expression distribution boxplot.
fn affy_boxplot() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_affyBoxplot".to_string(),
        name: "affyBoxplot.R".to_string(),
        version: "1.0".to_string(),
        description: "per-array intensity distribution boxplot".to_string(),
        params: vec![ParamSpec::dataset("input", "Expression matrix")],
        outputs: vec![out("plot", "svg")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let mut m = matrix_input(inv, "input")?;
            norm::log2_transform(&mut m);
            let groups: Vec<(String, [f64; 5])> = (0..m.ncols())
                .map(|c| {
                    let col = m.col(c);
                    let q = |p: f64| describe::quantile(&col, p).unwrap_or(0.0);
                    (
                        m.col_names[c].clone(),
                        [q(0.0), q(0.25), q(0.5), q(0.75), q(1.0)],
                    )
                })
                .collect();
            Ok(vec![svg_output(
                "plot",
                "intensity boxplot",
                svg::boxplot("affyBoxplot", &groups),
            )])
        }),
    }
}

/// MA plot between the two groups' mean profiles.
fn affy_ma_plot() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_affyMAPlot".to_string(),
        name: "affyMAPlot.R".to_string(),
        version: "1.0".to_string(),
        description: "MA plot of group means (M = log ratio, A = mean intensity)".to_string(),
        params: vec![ParamSpec::dataset("input", "CEL file archive")],
        outputs: vec![out("plot", "svg")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (m, names, groups) = normalized_groups(inv)?;
            if names.len() != 2 {
                return Err(ToolError("MA plot needs two groups".to_string()));
            }
            let points: Vec<PlotPoint> = (0..m.nrows())
                .map(|r| {
                    let row = m.row(r);
                    let g1 = describe::mean(&groups[0].iter().map(|&c| row[c]).collect::<Vec<_>>());
                    let g2 = describe::mean(&groups[1].iter().map(|&c| row[c]).collect::<Vec<_>>());
                    let m_val = g2 - g1;
                    PlotPoint {
                        x: (g1 + g2) / 2.0,
                        y: m_val,
                        highlight: m_val.abs() > 1.0,
                    }
                })
                .collect();
            Ok(vec![svg_output(
                "plot",
                "MA plot",
                svg::scatter_plot(
                    "affyMAPlot",
                    "A (mean log2 intensity)",
                    "M (log2 ratio)",
                    &points,
                ),
            )])
        }),
    }
}

/// Volcano plot as a standalone tool.
fn affy_volcano_plot() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_affyVolcanoPlot".to_string(),
        name: "affyVolcanoPlot.R".to_string(),
        version: "1.0".to_string(),
        description: "volcano plot (fold change vs significance)".to_string(),
        params: vec![
            ParamSpec::dataset("input", "CEL file archive"),
            ParamSpec::float("alpha", "Significance threshold", 0.05),
        ],
        outputs: vec![out("plot", "svg")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let de = differential_expression(inv)?;
            let alpha = super::float_param(inv, "alpha")?;
            let points: Vec<PlotPoint> = (0..de.probes.len())
                .map(|i| PlotPoint {
                    x: de.log_fc[i],
                    y: -de.p[i].max(1e-300).log10(),
                    highlight: de.adj_p[i] <= alpha,
                })
                .collect();
            Ok(vec![svg_output(
                "plot",
                "volcano plot",
                svg::scatter_plot("affyVolcanoPlot", "log2 fold change", "-log10 p", &points),
            )])
        }),
    }
}

/// PCA of samples.
fn affy_pca() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_affyPCA".to_string(),
        name: "affyPCA.R".to_string(),
        version: "1.0".to_string(),
        description: "principal-component analysis of arrays".to_string(),
        params: vec![ParamSpec::dataset("input", "Expression matrix")],
        outputs: vec![out("scores", "tabular"), out("plot", "svg")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let mut m = matrix_input(inv, "input")?;
            norm::log2_transform(&mut m);
            let items: Vec<Vec<f64>> = (0..m.ncols()).map(|c| m.col(c)).collect();
            let (comps, vars) = principal_components(&items, 2);
            if comps.is_empty() {
                return Err(ToolError("PCA needs at least two samples".to_string()));
            }
            let scores = pca_scores(&items, &comps);
            let rows: Vec<Vec<String>> = scores
                .iter()
                .enumerate()
                .map(|(c, s)| {
                    vec![
                        m.col_names[c].clone(),
                        fmt(s[0]),
                        fmt(*s.get(1).unwrap_or(&0.0)),
                    ]
                })
                .collect();
            let points: Vec<PlotPoint> = scores
                .iter()
                .enumerate()
                .map(|(c, s)| PlotPoint {
                    x: s[0],
                    y: *s.get(1).unwrap_or(&0.0),
                    highlight: m.col_names[c].starts_with("g2"),
                })
                .collect();
            let var_note = format!(
                "PC variances: {}",
                vars.iter().map(|v| fmt(*v)).collect::<Vec<_>>().join(", ")
            );
            let mut table_rows = rows;
            table_rows.push(vec![var_note, String::new(), String::new()]);
            Ok(vec![
                table_output(
                    "scores",
                    "PCA scores",
                    ["sample", "PC1", "PC2"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    table_rows,
                ),
                svg_output(
                    "plot",
                    "PCA plot",
                    svg::scatter_plot("affyPCA", "PC1", "PC2", &points),
                ),
            ])
        }),
    }
}

/// Sample–sample correlation matrix.
fn affy_correlation_matrix() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_affyCorrelationMatrix".to_string(),
        name: "affyCorrelationMatrix.R".to_string(),
        version: "1.0".to_string(),
        description: "pairwise Pearson correlation between arrays".to_string(),
        params: vec![ParamSpec::dataset("input", "Expression matrix")],
        outputs: vec![out("correlations", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let mut m = matrix_input(inv, "input")?;
            norm::log2_transform(&mut m);
            let cols: Vec<Vec<f64>> = (0..m.ncols()).map(|c| m.col(c)).collect();
            let mut rows = Vec::with_capacity(m.ncols());
            for i in 0..m.ncols() {
                let mut row = vec![m.col_names[i].clone()];
                for j in 0..m.ncols() {
                    let r = if i == j {
                        1.0
                    } else {
                        describe::pearson(&cols[i], &cols[j]).unwrap_or(0.0)
                    };
                    row.push(fmt(r));
                }
                rows.push(row);
            }
            let mut columns = vec!["sample".to_string()];
            columns.extend(m.col_names.iter().cloned());
            Ok(vec![table_output(
                "correlations",
                "sample correlation matrix",
                columns,
                rows,
            )])
        }),
    }
}

/// Variance/intensity gene filtering.
fn affy_gene_filter() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_affyGeneFilter".to_string(),
        name: "affyGeneFilter.R".to_string(),
        version: "1.0".to_string(),
        description: "filter probes by minimum intensity and variance".to_string(),
        params: vec![
            ParamSpec::dataset("input", "Expression matrix"),
            ParamSpec::float("min_mean", "Minimum mean log2 intensity", 5.0),
            ParamSpec::float("min_var", "Minimum variance", 0.01),
        ],
        outputs: vec![out("filtered", "matrix")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let mut m = matrix_input(inv, "input")?;
            norm::log2_transform(&mut m);
            let min_mean = super::float_param(inv, "min_mean")?;
            let min_var = super::float_param(inv, "min_var")?;
            let keep: Vec<usize> = (0..m.nrows())
                .filter(|&r| {
                    let row = m.row(r);
                    describe::mean(row) >= min_mean
                        && describe::variance(row).unwrap_or(0.0) >= min_var
                })
                .collect();
            if keep.is_empty() {
                return Err(ToolError("filter removed every probe".to_string()));
            }
            let filtered = m.select_rows(&keep);
            Ok(vec![cumulus_galaxy::ToolOutput {
                name: "filtered".to_string(),
                dataset_name: format!("filtered matrix ({} probes kept)", keep.len()),
                content: matrix_content(filtered),
                size: None,
            }])
        }),
    }
}

/// Hierarchical clustering of samples with cluster assignments.
fn affy_cluster_samples() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_affyClusterSamples".to_string(),
        name: "affyClusterSamples.R".to_string(),
        version: "1.0".to_string(),
        description: "hierarchical clustering of arrays with a cut into k clusters".to_string(),
        params: vec![
            ParamSpec::dataset("input", "Expression matrix"),
            ParamSpec::integer("k", "Clusters", 2, Some(1), Some(20)),
            ParamSpec::select(
                "linkage",
                "Linkage",
                &["average", "complete", "single"],
                "average",
            ),
        ],
        outputs: vec![out("clusters", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let mut m = matrix_input(inv, "input")?;
            norm::log2_transform(&mut m);
            let linkage = Linkage::parse(inv.param("linkage").unwrap_or("average"))
                .ok_or_else(|| ToolError("unknown linkage".to_string()))?;
            let k = int_param(inv, "k")? as usize;
            let items: Vec<Vec<f64>> = (0..m.ncols()).map(|c| m.col(c)).collect();
            let dend = hierarchical(&items, Metric::Correlation, linkage);
            let labels = dend.cut(k);
            let rows: Vec<Vec<String>> = labels
                .iter()
                .enumerate()
                .map(|(c, l)| vec![m.col_names[c].clone(), l.to_string()])
                .collect();
            Ok(vec![table_output(
                "clusters",
                "sample clusters",
                vec!["sample".to_string(), "cluster".to_string()],
                rows,
            )])
        }),
    }
}

/// k-means clustering of genes.
fn affy_kmeans_genes() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_affyKMeansGenes".to_string(),
        name: "affyKMeansGenes.R".to_string(),
        version: "1.0".to_string(),
        description: "k-means clustering of gene expression profiles".to_string(),
        params: vec![
            ParamSpec::dataset("input", "Expression matrix"),
            ParamSpec::integer("k", "Clusters", 4, Some(1), Some(50)),
        ],
        outputs: vec![out("clusters", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let mut m = matrix_input(inv, "input")?;
            norm::log2_transform(&mut m);
            norm::zscore_rows(&mut m);
            let k = int_param(inv, "k")? as usize;
            let items: Vec<Vec<f64>> = (0..m.nrows()).map(|r| m.row(r).to_vec()).collect();
            let (labels, _) = kmeans(&items, k, 100);
            let rows: Vec<Vec<String>> = labels
                .iter()
                .enumerate()
                .map(|(r, l)| vec![m.row_names[r].clone(), l.to_string()])
                .collect();
            Ok(vec![table_output(
                "clusters",
                "gene clusters",
                vec!["probe".to_string(), "cluster".to_string()],
                rows,
            )])
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate_cel_bundle, CelBundleSpec};
    use cumulus_net::DataSize;
    use cumulus_simkit::rng::RngStream;
    use std::collections::BTreeMap;

    fn invocation_for(bundle_spec: &CelBundleSpec, extra: &[(&str, &str)]) -> ToolInvocation {
        let bundle = generate_cel_bundle(bundle_spec, &mut RngStream::derive(5, "affy-test"));
        let mut inputs = BTreeMap::new();
        inputs.insert("input".to_string(), matrix_content(bundle.matrix));
        let mut params: BTreeMap<String, String> = extra
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        params
            .entry("normalize".to_string())
            .or_insert("yes".to_string());
        params
            .entry("adjust".to_string())
            .or_insert("BH".to_string());
        params.entry("top".to_string()).or_insert("50".to_string());
        ToolInvocation {
            params,
            inputs,
            input_size: bundle_spec.archive_size,
        }
    }

    fn spec() -> CelBundleSpec {
        CelBundleSpec {
            samples_per_group: 4,
            probes: 400,
            differential: 25,
            effect_log2: 2.0,
            archive_size: DataSize::from_mb(1),
        }
    }

    #[test]
    fn differential_expression_recovers_planted_probes() {
        let inv = invocation_for(&spec(), &[("top", "25")]);
        let outputs = affy_differential_expression().behavior.run(&inv).unwrap();
        assert_eq!(outputs.len(), 2);
        let (cols, rows) = match &outputs[0].content {
            cumulus_galaxy::Content::Table { columns, rows } => (columns, rows),
            other => panic!("expected table, got {other:?}"),
        };
        assert_eq!(cols[0], "ID");
        assert_eq!(rows.len(), 25);
        // Most of the top 25 should be planted probes (probe_000xx with
        // index < 25).
        let planted_hits = rows
            .iter()
            .filter(|r| {
                let idx: usize = r[0]
                    .trim_start_matches("probe_")
                    .trim_end_matches("_at")
                    .parse()
                    .unwrap();
                idx < 25
            })
            .count();
        assert!(
            planted_hits >= 20,
            "only {planted_hits}/25 planted probes in top table"
        );
        // Adjusted p of the best hit is tiny.
        let p: f64 = rows[0][4].parse().unwrap();
        assert!(p < 0.01, "best adj.P {p}");
        // Figure output is SVG.
        assert!(matches!(
            outputs[1].content,
            cumulus_galaxy::Content::Svg(_)
        ));
    }

    #[test]
    fn classify_separates_groups_perfectly_with_strong_effect() {
        let inv = invocation_for(&spec(), &[("method", "centroid"), ("k", "3")]);
        let outputs = affy_classify().behavior.run(&inv).unwrap();
        let rows = match &outputs[0].content {
            cumulus_galaxy::Content::Table { rows, .. } => rows,
            other => panic!("expected Content::Table, got {other:?}"),
        };
        // All 8 samples predicted to match their true group.
        let correct = rows
            .iter()
            .filter(|r| !r[0].starts_with('(') && r[1] == r[2])
            .count();
        assert_eq!(correct, 8, "{rows:?}");
    }

    #[test]
    fn heatmap_and_order_outputs() {
        let inv = invocation_for(
            &spec(),
            &[("by", "genes"), ("linkage", "average"), ("top", "30")],
        );
        let outputs = heatmap_plot_demo().behavior.run(&inv).unwrap();
        assert!(matches!(
            outputs[0].content,
            cumulus_galaxy::Content::Svg(_)
        ));
        let rows = match &outputs[1].content {
            cumulus_galaxy::Content::Table { rows, .. } => rows,
            other => panic!("expected Content::Table, got {other:?}"),
        };
        assert_eq!(rows.len(), 30, "leaf order covers the drawn genes");
    }

    #[test]
    fn pca_separates_the_groups_on_pc1() {
        let inv = invocation_for(&spec(), &[]);
        let outputs = affy_pca().behavior.run(&inv).unwrap();
        let rows = match &outputs[0].content {
            cumulus_galaxy::Content::Table { rows, .. } => rows,
            other => panic!("expected Content::Table, got {other:?}"),
        };
        let pc1: Vec<f64> = rows.iter().take(8).map(|r| r[1].parse().unwrap()).collect();
        let g1 = crate::stats::describe::mean(&pc1[..4]);
        let g2 = crate::stats::describe::mean(&pc1[4..]);
        assert!((g1 - g2).abs() > 1.0, "groups overlap on PC1: {pc1:?}");
    }

    #[test]
    fn qc_boxplot_and_correlation_tools_run() {
        let inv = invocation_for(&spec(), &[]);
        assert_eq!(affy_qc().behavior.run(&inv).unwrap().len(), 1);
        assert_eq!(affy_boxplot().behavior.run(&inv).unwrap().len(), 1);
        let corr = affy_correlation_matrix().behavior.run(&inv).unwrap();
        let rows = match &corr[0].content {
            cumulus_galaxy::Content::Table { rows, .. } => rows,
            other => panic!("expected Content::Table, got {other:?}"),
        };
        // Diagonal is exactly 1.
        assert_eq!(rows[0][1], "1.0000");
        // Within-group correlation beats between-group correlation.
        let r_within: f64 = rows[0][2].parse().unwrap();
        let r_between: f64 = rows[0][5].parse().unwrap();
        assert!(r_within > r_between, "{r_within} vs {r_between}");
    }

    #[test]
    fn gene_filter_shrinks_matrix() {
        let inv = invocation_for(&spec(), &[("min_mean", "7.0"), ("min_var", "0.0")]);
        let outputs = affy_gene_filter().behavior.run(&inv).unwrap();
        let (rows, _cols) = match &outputs[0].content {
            cumulus_galaxy::Content::Matrix {
                row_names,
                col_names,
                ..
            } => (row_names.len(), col_names.len()),
            other => panic!("expected Content::Matrix, got {other:?}"),
        };
        assert!(rows < 400, "some probes filtered: {rows}");
        assert!(rows > 0);
    }

    #[test]
    fn cluster_tools_produce_assignments() {
        let inv = invocation_for(&spec(), &[("k", "2"), ("linkage", "complete")]);
        let outputs = affy_cluster_samples().behavior.run(&inv).unwrap();
        let rows = match &outputs[0].content {
            cumulus_galaxy::Content::Table { rows, .. } => rows,
            other => panic!("expected Content::Table, got {other:?}"),
        };
        assert_eq!(rows.len(), 8);
        // The two groups land in different clusters.
        assert_eq!(rows[0][1], rows[1][1]);
        assert_ne!(rows[0][1], rows[7][1]);

        let inv = invocation_for(&spec(), &[("k", "3")]);
        let outputs = affy_kmeans_genes().behavior.run(&inv).unwrap();
        let rows = match &outputs[0].content {
            cumulus_galaxy::Content::Table { rows, .. } => rows,
            other => panic!("expected Content::Table, got {other:?}"),
        };
        assert_eq!(rows.len(), 400);
    }

    #[test]
    fn ma_and_volcano_plots_render() {
        let inv = invocation_for(&spec(), &[("alpha", "0.05")]);
        for tool in [affy_ma_plot(), affy_volcano_plot()] {
            let outputs = tool.behavior.run(&inv).unwrap();
            match &outputs[0].content {
                cumulus_galaxy::Content::Svg(svg) => {
                    assert!(svg.contains("<circle"), "{} drew no points", tool.id)
                }
                other => panic!("expected Content::Svg, got {other:?}"),
            }
        }
    }

    #[test]
    fn wrong_input_kind_is_a_tool_error() {
        let mut inputs = BTreeMap::new();
        inputs.insert(
            "input".to_string(),
            cumulus_galaxy::Content::Text("hi".to_string()),
        );
        let inv = ToolInvocation {
            params: [("normalize", "yes"), ("adjust", "BH"), ("top", "10")]
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            inputs,
            input_size: DataSize::ZERO,
        };
        let err = affy_differential_expression()
            .behavior
            .run(&inv)
            .unwrap_err();
        assert!(err.0.contains("expected an expression matrix"));
    }

    #[test]
    fn single_group_input_is_rejected() {
        let bundle = generate_cel_bundle(&spec(), &mut RngStream::derive(5, "x"));
        let only_g1 = bundle.matrix.select_cols(&[0, 1, 2, 3]);
        let mut inputs = BTreeMap::new();
        inputs.insert("input".to_string(), matrix_content(only_g1));
        let inv = ToolInvocation {
            params: [("normalize", "yes"), ("adjust", "BH"), ("top", "10")]
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            inputs,
            input_size: DataSize::ZERO,
        };
        let err = affy_differential_expression()
            .behavior
            .run(&inv)
            .unwrap_err();
        assert!(err.0.contains("2 groups"), "{}", err.0);
    }
}

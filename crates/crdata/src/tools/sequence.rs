//! RNA-sequencing tools.
//!
//! Reads and annotations are exchanged as plain tables, mirroring the way
//! the R scripts consume BAM files plus UCSC feature tables:
//!
//! * a **reads table** has columns `chrom,start,end` (one aligned read per
//!   row);
//! * a **features table** has columns `transcript,chrom,start,end` (one
//!   exon per row);
//! * a **counts table** has columns `feature,<lib1>,<lib2>,…`.

use std::sync::Arc;

use cumulus_galaxy::{CostModel, OutputSpec, ParamSpec, ToolDefinition, ToolError, ToolInvocation};

use crate::genomics::{FeatureIndex, Interval, Read, Transcript};
use crate::stats::counts::{cpm, filter_low_counts, log2_fold_change, two_sample_count_test};
use crate::stats::fdr::{adjust, Adjustment};
use crate::svg::{self, PlotPoint};

use super::{float_param, fmt, int_param, svg_output, table_input, table_output};

/// All sequencing tools.
pub fn tools() -> Vec<ToolDefinition> {
    vec![
        sequence_differential_expression(),
        sequence_counts_per_transcript(),
        sequence_coverage(),
        sequence_library_stats(),
        sequence_normalize_counts(),
        sequence_filter_low_counts(),
        sequence_ma_plot(),
        sequence_fold_change(),
    ]
}

fn out(name: &str, dtype: &str) -> OutputSpec {
    OutputSpec {
        name: name.to_string(),
        dtype: dtype.to_string(),
    }
}

/// Parse a reads table into `Read`s.
fn parse_reads(columns: &[String], rows: &[Vec<String>]) -> Result<Vec<Read>, ToolError> {
    let find = |name: &str| {
        columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| ToolError(format!("reads table missing column {name:?}")))
    };
    let (ci, si, ei) = (find("chrom")?, find("start")?, find("end")?);
    rows.iter()
        .map(|row| {
            let start: u64 = row[si]
                .parse()
                .map_err(|_| ToolError(format!("bad start {:?}", row[si])))?;
            let end: u64 = row[ei]
                .parse()
                .map_err(|_| ToolError(format!("bad end {:?}", row[ei])))?;
            if end <= start {
                return Err(ToolError(format!("empty read {start}..{end}")));
            }
            Ok(Read {
                span: Interval::new(&row[ci], start, end),
            })
        })
        .collect()
}

/// Parse a features table into transcripts.
fn parse_features(columns: &[String], rows: &[Vec<String>]) -> Result<Vec<Transcript>, ToolError> {
    let find = |name: &str| {
        columns
            .iter()
            .position(|c| c == name)
            .ok_or_else(|| ToolError(format!("features table missing column {name:?}")))
    };
    let (ti, ci, si, ei) = (
        find("transcript")?,
        find("chrom")?,
        find("start")?,
        find("end")?,
    );
    let mut order: Vec<String> = Vec::new();
    let mut exons: std::collections::BTreeMap<String, Vec<Interval>> =
        std::collections::BTreeMap::new();
    for row in rows {
        let name = row[ti].clone();
        let start: u64 = row[si]
            .parse()
            .map_err(|_| ToolError(format!("bad start {:?}", row[si])))?;
        let end: u64 = row[ei]
            .parse()
            .map_err(|_| ToolError(format!("bad end {:?}", row[ei])))?;
        if end <= start {
            return Err(ToolError(format!("empty exon {start}..{end}")));
        }
        if !exons.contains_key(&name) {
            order.push(name.clone());
        }
        exons
            .entry(name)
            .or_default()
            .push(Interval::new(&row[ci], start, end));
    }
    Ok(order
        .into_iter()
        .map(|name| {
            let ex = exons.remove(&name).expect("inserted above");
            Transcript::new(&name, ex)
        })
        .collect())
}

/// Serialize reads into the table convention (for dataset creation).
pub fn reads_to_table(reads: &[Read]) -> (Vec<String>, Vec<Vec<String>>) {
    let columns = vec!["chrom".to_string(), "start".to_string(), "end".to_string()];
    let rows = reads
        .iter()
        .map(|r| {
            vec![
                r.span.chrom.clone(),
                r.span.start.to_string(),
                r.span.end.to_string(),
            ]
        })
        .collect();
    (columns, rows)
}

/// Serialize transcripts into the features-table convention.
pub fn annotation_to_table(transcripts: &[Transcript]) -> (Vec<String>, Vec<Vec<String>>) {
    let columns = vec![
        "transcript".to_string(),
        "chrom".to_string(),
        "start".to_string(),
        "end".to_string(),
    ];
    let mut rows = Vec::new();
    for t in transcripts {
        for e in &t.exons {
            rows.push(vec![
                t.name.clone(),
                e.chrom.clone(),
                e.start.to_string(),
                e.end.to_string(),
            ]);
        }
    }
    (columns, rows)
}

/// Parse a two-library counts table: `(features, counts1, counts2)`.
#[allow(clippy::type_complexity)]
fn parse_two_lib_counts(
    columns: &[String],
    rows: &[Vec<String>],
) -> Result<(Vec<String>, Vec<u64>, Vec<u64>), ToolError> {
    if columns.len() < 3 {
        return Err(ToolError(
            "counts table needs a feature column plus two libraries".to_string(),
        ));
    }
    let mut features = Vec::with_capacity(rows.len());
    let mut c1 = Vec::with_capacity(rows.len());
    let mut c2 = Vec::with_capacity(rows.len());
    for row in rows {
        features.push(row[0].clone());
        c1.push(
            row[1]
                .parse()
                .map_err(|_| ToolError(format!("bad count {:?}", row[1])))?,
        );
        c2.push(
            row[2]
                .parse()
                .map_err(|_| ToolError(format!("bad count {:?}", row[2])))?,
        );
    }
    Ok((features, c1, c2))
}

/// `sequenceCountsPerTranscript.R` — count reads per genomic feature.
fn sequence_counts_per_transcript() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_sequenceCountsPerTranscript".to_string(),
        name: "sequenceCountsPerTranscript.R".to_string(),
        version: "1.0".to_string(),
        description:
            "summarize the number of reads aligning to genomic features (UCSC-style table)"
                .to_string(),
        params: vec![
            ParamSpec::dataset("reads", "Aligned reads (BAM as table)"),
            ParamSpec::dataset("features", "Genomic features (UCSC table)"),
        ],
        outputs: vec![out("counts", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (rc, rr) = table_input(inv, "reads")?;
            let (fc, fr) = table_input(inv, "features")?;
            let reads = parse_reads(&rc, &rr)?;
            let features = parse_features(&fc, &fr)?;
            let index = FeatureIndex::build(features);
            let counts = index.count_reads(&reads);
            let rows: Vec<Vec<String>> = counts
                .iter()
                .map(|(name, c)| vec![name.clone(), c.to_string()])
                .collect();
            Ok(vec![table_output(
                "counts",
                "read counts per transcript",
                vec!["feature".to_string(), "count".to_string()],
                rows,
            )])
        }),
    }
}

/// `sequenceDifferentialExperssion.R` [sic] — "a two-sample test for
/// RNA-sequence differential expression" (Figure 5 keeps the paper's
/// original spelling in its title).
fn sequence_differential_expression() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_sequenceDifferentialExpression".to_string(),
        name: "sequenceDifferentialExperssion.R".to_string(),
        version: "1.0".to_string(),
        description: "two-sample test for RNA-sequence differential expression".to_string(),
        params: vec![
            ParamSpec::dataset("counts", "Counts table (feature, lib1, lib2)"),
            ParamSpec::select(
                "adjust",
                "P-value adjustment",
                &["BH", "holm", "bonferroni", "none"],
                "BH",
            ),
        ],
        outputs: vec![out("toptable", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "counts")?;
            let (features, c1, c2) = parse_two_lib_counts(&cols, &rows)?;
            let n1: u64 = c1.iter().sum();
            let n2: u64 = c2.iter().sum();
            if n1 == 0 || n2 == 0 {
                return Err(ToolError("a library has zero total counts".to_string()));
            }
            let method = Adjustment::parse(inv.param("adjust").unwrap_or("BH"))
                .ok_or_else(|| ToolError("unknown adjustment method".to_string()))?;
            let results: Vec<_> = features
                .iter()
                .zip(c1.iter().zip(&c2))
                .map(|(_, (&x1, &x2))| two_sample_count_test(x1, n1, x2, n2))
                .collect();
            let pvals: Vec<f64> = results.iter().map(|r| r.p).collect();
            let adj = adjust(&pvals, method);
            let mut order: Vec<usize> = (0..features.len()).collect();
            order.sort_by(|&a, &b| adj[a].partial_cmp(&adj[b]).expect("finite"));
            let table_rows: Vec<Vec<String>> = order
                .iter()
                .map(|&i| {
                    vec![
                        features[i].clone(),
                        c1[i].to_string(),
                        c2[i].to_string(),
                        fmt(results[i].log2_fc),
                        fmt(results[i].z),
                        fmt(results[i].p),
                        fmt(adj[i]),
                    ]
                })
                .collect();
            Ok(vec![table_output(
                "toptable",
                "differential expression (counts)",
                [
                    "feature",
                    "count1",
                    "count2",
                    "log2FC",
                    "z",
                    "P.Value",
                    "adj.P.Val",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect(),
                table_rows,
            )])
        }),
    }
}

/// Per-transcript coverage summary (reads × read length / exonic length).
fn sequence_coverage() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_sequenceCoverage".to_string(),
        name: "sequenceCoverage.R".to_string(),
        version: "1.0".to_string(),
        description: "mean fold-coverage per transcript".to_string(),
        params: vec![
            ParamSpec::dataset("reads", "Aligned reads"),
            ParamSpec::dataset("features", "Genomic features"),
        ],
        outputs: vec![out("coverage", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (rc, rr) = table_input(inv, "reads")?;
            let (fc, fr) = table_input(inv, "features")?;
            let reads = parse_reads(&rc, &rr)?;
            let features = parse_features(&fc, &fr)?;
            let mean_read_len = if reads.is_empty() {
                0.0
            } else {
                reads.iter().map(|r| r.span.len() as f64).sum::<f64>() / reads.len() as f64
            };
            let index = FeatureIndex::build(features.clone());
            let counts = index.count_reads(&reads);
            let rows: Vec<Vec<String>> = counts
                .iter()
                .zip(&features)
                .map(|((name, c), t)| {
                    let len = t.exonic_length().max(1) as f64;
                    vec![
                        name.clone(),
                        c.to_string(),
                        t.exonic_length().to_string(),
                        fmt(*c as f64 * mean_read_len / len),
                    ]
                })
                .collect();
            Ok(vec![table_output(
                "coverage",
                "transcript coverage",
                ["feature", "reads", "exonic_bp", "mean_coverage"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                rows,
            )])
        }),
    }
}

/// Library-level summary statistics.
fn sequence_library_stats() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_sequenceLibraryStats".to_string(),
        name: "sequenceLibraryStats.R".to_string(),
        version: "1.0".to_string(),
        description: "library size, read-length and duplication summary".to_string(),
        params: vec![ParamSpec::dataset("reads", "Aligned reads")],
        outputs: vec![out("stats", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (rc, rr) = table_input(inv, "reads")?;
            let reads = parse_reads(&rc, &rr)?;
            let n = reads.len();
            let mean_len = if n == 0 {
                0.0
            } else {
                reads.iter().map(|r| r.span.len() as f64).sum::<f64>() / n as f64
            };
            let mut positions: Vec<(String, u64)> = reads
                .iter()
                .map(|r| (r.span.chrom.clone(), r.span.start))
                .collect();
            positions.sort();
            positions.dedup();
            let duplication = if n == 0 {
                0.0
            } else {
                1.0 - positions.len() as f64 / n as f64
            };
            let rows = vec![
                vec!["total_reads".to_string(), n.to_string()],
                vec!["mean_read_length".to_string(), fmt(mean_len)],
                vec![
                    "distinct_start_positions".to_string(),
                    positions.len().to_string(),
                ],
                vec!["duplication_rate".to_string(), fmt(duplication)],
            ];
            Ok(vec![table_output(
                "stats",
                "library statistics",
                vec!["metric".to_string(), "value".to_string()],
                rows,
            )])
        }),
    }
}

/// CPM normalization of a counts table.
fn sequence_normalize_counts() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_sequenceNormalizeCounts".to_string(),
        name: "sequenceNormalizeCounts.R".to_string(),
        version: "1.0".to_string(),
        description: "counts-per-million normalization of a counts table".to_string(),
        params: vec![ParamSpec::dataset("counts", "Counts table")],
        outputs: vec![out("cpm", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "counts")?;
            let (features, c1, c2) = parse_two_lib_counts(&cols, &rows)?;
            let n1: u64 = c1.iter().sum::<u64>().max(1);
            let n2: u64 = c2.iter().sum::<u64>().max(1);
            let out_rows: Vec<Vec<String>> = features
                .iter()
                .enumerate()
                .map(|(i, f)| vec![f.clone(), fmt(cpm(c1[i], n1)), fmt(cpm(c2[i], n2))])
                .collect();
            Ok(vec![table_output(
                "cpm",
                "CPM-normalized counts",
                vec![
                    "feature".to_string(),
                    "cpm1".to_string(),
                    "cpm2".to_string(),
                ],
                out_rows,
            )])
        }),
    }
}

/// Remove features below a CPM floor.
fn sequence_filter_low_counts() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_sequenceFilterLowCounts".to_string(),
        name: "sequenceFilterLowCounts.R".to_string(),
        version: "1.0".to_string(),
        description: "drop features below a CPM threshold in too many libraries".to_string(),
        params: vec![
            ParamSpec::dataset("counts", "Counts table"),
            ParamSpec::float("min_cpm", "Minimum CPM", 1.0),
            ParamSpec::integer(
                "min_samples",
                "In at least this many libraries",
                2,
                Some(1),
                Some(2),
            ),
        ],
        outputs: vec![out("filtered", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "counts")?;
            let (features, c1, c2) = parse_two_lib_counts(&cols, &rows)?;
            let min_cpm = float_param(inv, "min_cpm")?;
            let min_samples = int_param(inv, "min_samples")? as usize;
            let libs = [c1.iter().sum::<u64>().max(1), c2.iter().sum::<u64>().max(1)];
            let per_feature: Vec<Vec<u64>> =
                c1.iter().zip(&c2).map(|(&a, &b)| vec![a, b]).collect();
            let kept = filter_low_counts(&per_feature, &libs, min_cpm, min_samples);
            let out_rows: Vec<Vec<String>> = kept
                .iter()
                .map(|&i| vec![features[i].clone(), c1[i].to_string(), c2[i].to_string()])
                .collect();
            Ok(vec![table_output(
                "filtered",
                &format!(
                    "filtered counts ({} of {} kept)",
                    kept.len(),
                    features.len()
                ),
                cols,
                out_rows,
            )])
        }),
    }
}

/// MA plot of a two-library counts table.
fn sequence_ma_plot() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_sequenceMAPlot".to_string(),
        name: "sequenceMAPlot.R".to_string(),
        version: "1.0".to_string(),
        description: "MA plot of two count libraries".to_string(),
        params: vec![ParamSpec::dataset("counts", "Counts table")],
        outputs: vec![out("plot", "svg")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "counts")?;
            let (_features, c1, c2) = parse_two_lib_counts(&cols, &rows)?;
            let n1: u64 = c1.iter().sum::<u64>().max(1);
            let n2: u64 = c2.iter().sum::<u64>().max(1);
            let points: Vec<PlotPoint> = c1
                .iter()
                .zip(&c2)
                .map(|(&a, &b)| {
                    let m = log2_fold_change(b, n2, a, n1);
                    let avg = ((cpm(a, n1) + 0.5).log2() + (cpm(b, n2) + 0.5).log2()) / 2.0;
                    PlotPoint {
                        x: avg,
                        y: m,
                        highlight: m.abs() > 1.0,
                    }
                })
                .collect();
            Ok(vec![svg_output(
                "plot",
                "MA plot (counts)",
                svg::scatter_plot(
                    "sequenceMAPlot",
                    "A (mean log2 CPM)",
                    "M (log2 FC)",
                    &points,
                ),
            )])
        }),
    }
}

/// Per-feature fold-change table.
fn sequence_fold_change() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_sequenceFoldChange".to_string(),
        name: "sequenceFoldChange.R".to_string(),
        version: "1.0".to_string(),
        description: "log2 fold change per feature between two libraries".to_string(),
        params: vec![ParamSpec::dataset("counts", "Counts table")],
        outputs: vec![out("fc", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "counts")?;
            let (features, c1, c2) = parse_two_lib_counts(&cols, &rows)?;
            let n1: u64 = c1.iter().sum::<u64>().max(1);
            let n2: u64 = c2.iter().sum::<u64>().max(1);
            let out_rows: Vec<Vec<String>> = features
                .iter()
                .enumerate()
                .map(|(i, f)| vec![f.clone(), fmt(log2_fold_change(c2[i], n2, c1[i], n1))])
                .collect();
            Ok(vec![table_output(
                "fc",
                "log2 fold changes",
                vec!["feature".to_string(), "log2FC".to_string()],
                out_rows,
            )])
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datagen::{generate_read_set, ReadSetSpec};
    use cumulus_galaxy::Content;
    use cumulus_net::DataSize;
    use cumulus_simkit::rng::RngStream;

    fn read_set() -> crate::datagen::ReadSet {
        generate_read_set(&ReadSetSpec::small(), &mut RngStream::derive(3, "seq-test"))
    }

    fn table(cols: Vec<String>, rows: Vec<Vec<String>>) -> Content {
        Content::Table {
            columns: cols,
            rows,
        }
    }

    fn counts_table(rs: &crate::datagen::ReadSet) -> Content {
        let index = FeatureIndex::build(rs.annotation.clone());
        let c1 = index.count_reads(&rs.library1);
        let c2 = index.count_reads(&rs.library2);
        let rows: Vec<Vec<String>> = c1
            .iter()
            .zip(&c2)
            .map(|((name, a), (_, b))| vec![name.clone(), a.to_string(), b.to_string()])
            .collect();
        table(
            vec![
                "feature".to_string(),
                "lib1".to_string(),
                "lib2".to_string(),
            ],
            rows,
        )
    }

    fn inv(inputs: Vec<(&str, Content)>, params: &[(&str, &str)]) -> ToolInvocation {
        ToolInvocation {
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            inputs: inputs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
            input_size: DataSize::from_mb(1),
        }
    }

    #[test]
    fn counts_per_transcript_counts_real_reads() {
        let rs = read_set();
        let (rc, rr) = reads_to_table(&rs.library1);
        let (fc, fr) = annotation_to_table(&rs.annotation);
        let invocation = inv(
            vec![("reads", table(rc, rr)), ("features", table(fc, fr))],
            &[],
        );
        let outputs = sequence_counts_per_transcript()
            .behavior
            .run(&invocation)
            .unwrap();
        let rows = match &outputs[0].content {
            Content::Table { rows, .. } => rows,
            other => panic!("expected Content::Table, got {other:?}"),
        };
        assert_eq!(rows.len(), rs.annotation.len());
        let total: u64 = rows.iter().map(|r| r[1].parse::<u64>().unwrap()).sum();
        // Every read lands in some transcript (generator places reads in
        // exons).
        assert_eq!(total, rs.library1.len() as u64);
    }

    #[test]
    fn differential_expression_finds_planted_transcripts() {
        let rs = read_set();
        let invocation = inv(vec![("counts", counts_table(&rs))], &[("adjust", "BH")]);
        let outputs = sequence_differential_expression()
            .behavior
            .run(&invocation)
            .unwrap();
        let rows = match &outputs[0].content {
            Content::Table { rows, .. } => rows,
            other => panic!("expected Content::Table, got {other:?}"),
        };
        // The planted transcripts dominate the top of the table.
        let top: Vec<&str> = rows[..rs.planted.len()]
            .iter()
            .map(|r| r[0].as_str())
            .collect();
        let hits = rs
            .planted
            .iter()
            .filter(|p| top.contains(&p.as_str()))
            .count();
        assert!(
            hits >= rs.planted.len() - 2,
            "only {hits}/{} planted transcripts at top: {top:?}",
            rs.planted.len()
        );
        // And they are significant.
        let p: f64 = rows[0][6].parse().unwrap();
        assert!(p < 0.01);
    }

    #[test]
    fn coverage_and_library_stats_run() {
        let rs = read_set();
        let (rc, rr) = reads_to_table(&rs.library1);
        let (fc, fr) = annotation_to_table(&rs.annotation);
        let invocation = inv(
            vec![
                ("reads", table(rc.clone(), rr.clone())),
                ("features", table(fc, fr)),
            ],
            &[],
        );
        let cov = sequence_coverage().behavior.run(&invocation).unwrap();
        let rows = match &cov[0].content {
            Content::Table { rows, .. } => rows,
            other => panic!("expected Content::Table, got {other:?}"),
        };
        assert_eq!(rows.len(), rs.annotation.len());

        let invocation = inv(vec![("reads", table(rc, rr))], &[]);
        let stats = sequence_library_stats().behavior.run(&invocation).unwrap();
        let rows = match &stats[0].content {
            Content::Table { rows, .. } => rows,
            other => panic!("expected Content::Table, got {other:?}"),
        };
        assert_eq!(rows[0][0], "total_reads");
        assert_eq!(rows[0][1], rs.library1.len().to_string());
        let dup: f64 = rows[3][1].parse().unwrap();
        assert!((0.0..1.0).contains(&dup));
    }

    #[test]
    fn normalization_filter_and_fc_pipeline() {
        let rs = read_set();
        let counts = counts_table(&rs);
        let norm = sequence_normalize_counts()
            .behavior
            .run(&inv(vec![("counts", counts.clone())], &[]))
            .unwrap();
        let rows = match &norm[0].content {
            Content::Table { rows, .. } => rows,
            other => panic!("expected Content::Table, got {other:?}"),
        };
        // CPM columns sum to ~1e6 each.
        let sum1: f64 = rows.iter().map(|r| r[1].parse::<f64>().unwrap()).sum();
        assert!((sum1 - 1e6).abs() < 1e6 * 0.01, "sum1={sum1}");

        let filtered = sequence_filter_low_counts()
            .behavior
            .run(&inv(
                vec![("counts", counts.clone())],
                &[("min_cpm", "8000.0"), ("min_samples", "2")],
            ))
            .unwrap();
        let frows = match &filtered[0].content {
            Content::Table { rows, .. } => rows,
            other => panic!("expected Content::Table, got {other:?}"),
        };
        assert!(frows.len() < rows.len(), "filter dropped something");
        assert!(!frows.is_empty());

        let fc = sequence_fold_change()
            .behavior
            .run(&inv(vec![("counts", counts.clone())], &[]))
            .unwrap();
        let fc_rows = match &fc[0].content {
            Content::Table { rows, .. } => rows,
            other => panic!("expected Content::Table, got {other:?}"),
        };
        // Planted transcripts (TX0000..) have positive log2FC.
        let planted_fc: f64 = fc_rows.iter().find(|r| r[0] == rs.planted[0]).unwrap()[1]
            .parse()
            .unwrap();
        assert!(planted_fc > 0.8, "planted FC {planted_fc}");

        let ma = sequence_ma_plot()
            .behavior
            .run(&inv(vec![("counts", counts)], &[]))
            .unwrap();
        assert!(matches!(&ma[0].content, Content::Svg(s) if s.contains("<circle")));
    }

    #[test]
    fn malformed_tables_error_cleanly() {
        let bad_reads = table(
            vec!["chrom".to_string(), "start".to_string()],
            vec![vec!["chr1".to_string(), "10".to_string()]],
        );
        let (fc, fr) = annotation_to_table(&read_set().annotation);
        let invocation = inv(vec![("reads", bad_reads), ("features", table(fc, fr))], &[]);
        let err = sequence_counts_per_transcript()
            .behavior
            .run(&invocation)
            .unwrap_err();
        assert!(err.0.contains("missing column"));

        let empty_counts = table(
            vec!["feature".to_string(), "a".to_string(), "b".to_string()],
            vec![vec!["f".to_string(), "0".to_string(), "0".to_string()]],
        );
        let err = sequence_differential_expression()
            .behavior
            .run(&inv(vec![("counts", empty_counts)], &[("adjust", "BH")]))
            .unwrap_err();
        assert!(err.0.contains("zero total counts"));
    }
}

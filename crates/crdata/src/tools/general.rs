//! General statistical tools (the remainder of the CRData catalog).

use std::sync::Arc;

use cumulus_galaxy::{CostModel, OutputSpec, ParamSpec, ToolDefinition, ToolError, ToolInvocation};

use crate::stats::describe;
use crate::stats::fdr::{adjust, Adjustment};
use crate::stats::norm;
use crate::stats::regress::linear_regression;
use crate::stats::special::t_two_sided_p;
use crate::stats::survival::{kaplan_meier, median_survival, Subject};
use crate::stats::ttest::{one_sample_t_test, paired_t_test, pooled_t_test, welch_t_test};
use crate::svg::{self, PlotPoint};

use super::{
    float_param, fmt, int_param, matrix_content, matrix_input, svg_output, table_input,
    table_output,
};

/// All general statistics tools.
pub fn tools() -> Vec<ToolDefinition> {
    vec![
        two_group_t_test(),
        paired_t_test_tool(),
        one_sample_t_test_tool(),
        multiple_testing_correction(),
        fold_change_tool(),
        zscore_normalize(),
        quantile_normalize_tool(),
        descriptive_statistics(),
        correlation_test(),
        linear_regression_tool(),
        histogram_plot(),
        scatter_plot_tool(),
        survival_kaplan_meier(),
        random_sample_table(),
    ]
}

fn out(name: &str, dtype: &str) -> OutputSpec {
    OutputSpec {
        name: name.to_string(),
        dtype: dtype.to_string(),
    }
}

/// Find a numeric column in a table by name.
fn numeric_column(
    columns: &[String],
    rows: &[Vec<String>],
    name: &str,
) -> Result<Vec<f64>, ToolError> {
    let idx = columns
        .iter()
        .position(|c| c == name)
        .ok_or_else(|| ToolError(format!("table has no column {name:?}")))?;
    rows.iter()
        .map(|r| {
            r.get(idx)
                .ok_or_else(|| ToolError("ragged table".to_string()))?
                .parse()
                .map_err(|_| ToolError(format!("{name}: {:?} is not numeric", r[idx])))
        })
        .collect()
}

/// Generic two-column t-test on a table.
fn two_group_t_test() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_twoGroupTTest".to_string(),
        name: "twoGroupTTest.R".to_string(),
        version: "1.0".to_string(),
        description: "two-sample t-test between two numeric columns".to_string(),
        params: vec![
            ParamSpec::dataset("input", "Table"),
            ParamSpec::text("column1", "First column", "group1"),
            ParamSpec::text("column2", "Second column", "group2"),
            ParamSpec::select(
                "variance",
                "Variance assumption",
                &["welch", "pooled"],
                "welch",
            ),
        ],
        outputs: vec![out("result", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "input")?;
            let a = numeric_column(&cols, &rows, inv.param("column1").unwrap_or("group1"))?;
            let b = numeric_column(&cols, &rows, inv.param("column2").unwrap_or("group2"))?;
            let result = if inv.param("variance") == Some("pooled") {
                pooled_t_test(&a, &b)
            } else {
                welch_t_test(&a, &b)
            }
            .ok_or_else(|| {
                ToolError("degenerate input (need ≥2 values with variance)".to_string())
            })?;
            Ok(vec![table_output(
                "result",
                "t-test result",
                ["statistic", "df", "p.value", "mean.difference"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                vec![vec![
                    fmt(result.t),
                    fmt(result.df),
                    fmt(result.p),
                    fmt(result.mean_diff),
                ]],
            )])
        }),
    }
}

/// Paired t-test on two matched columns.
fn paired_t_test_tool() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_pairedTTest".to_string(),
        name: "pairedTTest.R".to_string(),
        version: "1.0".to_string(),
        description: "paired t-test between matched columns".to_string(),
        params: vec![
            ParamSpec::dataset("input", "Table"),
            ParamSpec::text("column1", "Before column", "before"),
            ParamSpec::text("column2", "After column", "after"),
        ],
        outputs: vec![out("result", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "input")?;
            let a = numeric_column(&cols, &rows, inv.param("column1").unwrap_or("before"))?;
            let b = numeric_column(&cols, &rows, inv.param("column2").unwrap_or("after"))?;
            if a.len() != b.len() {
                return Err(ToolError("columns have different lengths".to_string()));
            }
            let result = paired_t_test(&a, &b)
                .ok_or_else(|| ToolError("degenerate paired input".to_string()))?;
            Ok(vec![table_output(
                "result",
                "paired t-test result",
                ["statistic", "df", "p.value", "mean.difference"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                vec![vec![
                    fmt(result.t),
                    fmt(result.df),
                    fmt(result.p),
                    fmt(result.mean_diff),
                ]],
            )])
        }),
    }
}

/// One-sample t-test.
fn one_sample_t_test_tool() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_oneSampleTTest".to_string(),
        name: "oneSampleTTest.R".to_string(),
        version: "1.0".to_string(),
        description: "one-sample t-test against a hypothesized mean".to_string(),
        params: vec![
            ParamSpec::dataset("input", "Table"),
            ParamSpec::text("column", "Column", "value"),
            ParamSpec::float("mu", "Hypothesized mean", 0.0),
        ],
        outputs: vec![out("result", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "input")?;
            let xs = numeric_column(&cols, &rows, inv.param("column").unwrap_or("value"))?;
            let mu = float_param(inv, "mu")?;
            let result = one_sample_t_test(&xs, mu)
                .ok_or_else(|| ToolError("degenerate input".to_string()))?;
            Ok(vec![table_output(
                "result",
                "one-sample t-test result",
                ["statistic", "df", "p.value", "mean.difference"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                vec![vec![
                    fmt(result.t),
                    fmt(result.df),
                    fmt(result.p),
                    fmt(result.mean_diff),
                ]],
            )])
        }),
    }
}

/// Adjust a p-value column.
fn multiple_testing_correction() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_multipleTestingCorrection".to_string(),
        name: "multipleTestingCorrection.R".to_string(),
        version: "1.0".to_string(),
        description: "adjust a p-value column (BH / Holm / Bonferroni)".to_string(),
        params: vec![
            ParamSpec::dataset("input", "Table with a p-value column"),
            ParamSpec::text("column", "P-value column", "P.Value"),
            ParamSpec::select("method", "Method", &["BH", "holm", "bonferroni"], "BH"),
        ],
        outputs: vec![out("adjusted", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (mut cols, rows) = table_input(inv, "input")?;
            let pcol = inv.param("column").unwrap_or("P.Value").to_string();
            let p = numeric_column(&cols, &rows, &pcol)?;
            if p.iter().any(|x| !(0.0..=1.0).contains(x)) {
                return Err(ToolError("p-values must lie in [0,1]".to_string()));
            }
            let method = Adjustment::parse(inv.param("method").unwrap_or("BH"))
                .ok_or_else(|| ToolError("unknown method".to_string()))?;
            let adj = adjust(&p, method);
            cols.push("adj.P.Val".to_string());
            let new_rows: Vec<Vec<String>> = rows
                .into_iter()
                .zip(adj)
                .map(|(mut r, a)| {
                    r.push(fmt(a));
                    r
                })
                .collect();
            Ok(vec![table_output(
                "adjusted",
                "adjusted p-values",
                cols,
                new_rows,
            )])
        }),
    }
}

/// Row-wise group fold change on an expression matrix.
fn fold_change_tool() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_foldChange".to_string(),
        name: "foldChange.R".to_string(),
        version: "1.0".to_string(),
        description: "per-row log2 fold change between the two groups of a matrix".to_string(),
        params: vec![ParamSpec::dataset("input", "Expression matrix")],
        outputs: vec![out("fc", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let mut m = matrix_input(inv, "input")?;
            norm::log2_transform(&mut m);
            let (names, groups) = m.groups_from_col_names();
            if names.len() != 2 {
                return Err(ToolError("fold change needs two groups".to_string()));
            }
            let rows: Vec<Vec<String>> = (0..m.nrows())
                .map(|r| {
                    let row = m.row(r);
                    let g1 = describe::mean(&groups[0].iter().map(|&c| row[c]).collect::<Vec<_>>());
                    let g2 = describe::mean(&groups[1].iter().map(|&c| row[c]).collect::<Vec<_>>());
                    vec![m.row_names[r].clone(), fmt(g2 - g1)]
                })
                .collect();
            Ok(vec![table_output(
                "fc",
                "log2 fold changes",
                vec!["probe".to_string(), "log2FC".to_string()],
                rows,
            )])
        }),
    }
}

/// Z-score rows of a matrix.
fn zscore_normalize() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_zScoreNormalize".to_string(),
        name: "zScoreNormalize.R".to_string(),
        version: "1.0".to_string(),
        description: "row-wise z-score standardization of a matrix".to_string(),
        params: vec![ParamSpec::dataset("input", "Expression matrix")],
        outputs: vec![out("normalized", "matrix")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let mut m = matrix_input(inv, "input")?;
            norm::zscore_rows(&mut m);
            Ok(vec![cumulus_galaxy::ToolOutput {
                name: "normalized".to_string(),
                dataset_name: "z-scored matrix".to_string(),
                content: matrix_content(m),
                size: None,
            }])
        }),
    }
}

/// Quantile-normalize matrix columns.
fn quantile_normalize_tool() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_quantileNormalize".to_string(),
        name: "quantileNormalize.R".to_string(),
        version: "1.0".to_string(),
        description: "force all matrix columns onto a common distribution".to_string(),
        params: vec![ParamSpec::dataset("input", "Expression matrix")],
        outputs: vec![out("normalized", "matrix")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let mut m = matrix_input(inv, "input")?;
            norm::quantile_normalize(&mut m);
            Ok(vec![cumulus_galaxy::ToolOutput {
                name: "normalized".to_string(),
                dataset_name: "quantile-normalized matrix".to_string(),
                content: matrix_content(m),
                size: None,
            }])
        }),
    }
}

/// Describe every numeric column of a table.
fn descriptive_statistics() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_descriptiveStatistics".to_string(),
        name: "descriptiveStatistics.R".to_string(),
        version: "1.0".to_string(),
        description: "mean / sd / quartiles for every numeric column".to_string(),
        params: vec![ParamSpec::dataset("input", "Table")],
        outputs: vec![out("summary", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "input")?;
            let mut out_rows = Vec::new();
            for (i, name) in cols.iter().enumerate() {
                let values: Vec<f64> = rows
                    .iter()
                    .filter_map(|r| r.get(i).and_then(|v| v.parse().ok()))
                    .collect();
                if values.len() < rows.len().max(1) / 2 {
                    continue; // mostly non-numeric column
                }
                let q = |p: f64| describe::quantile(&values, p).unwrap_or(0.0);
                out_rows.push(vec![
                    name.clone(),
                    values.len().to_string(),
                    fmt(describe::mean(&values)),
                    fmt(describe::std_dev(&values).unwrap_or(0.0)),
                    fmt(q(0.0)),
                    fmt(q(0.25)),
                    fmt(q(0.5)),
                    fmt(q(0.75)),
                    fmt(q(1.0)),
                ]);
            }
            if out_rows.is_empty() {
                return Err(ToolError("no numeric columns found".to_string()));
            }
            Ok(vec![table_output(
                "summary",
                "descriptive statistics",
                [
                    "column", "n", "mean", "sd", "min", "q1", "median", "q3", "max",
                ]
                .iter()
                .map(|s| s.to_string())
                .collect(),
                out_rows,
            )])
        }),
    }
}

/// Correlation between two columns with a significance test.
fn correlation_test() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_correlationTest".to_string(),
        name: "correlationTest.R".to_string(),
        version: "1.0".to_string(),
        description: "Pearson correlation between two columns with a t-test".to_string(),
        params: vec![
            ParamSpec::dataset("input", "Table"),
            ParamSpec::text("column1", "X column", "x"),
            ParamSpec::text("column2", "Y column", "y"),
        ],
        outputs: vec![out("result", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "input")?;
            let xs = numeric_column(&cols, &rows, inv.param("column1").unwrap_or("x"))?;
            let ys = numeric_column(&cols, &rows, inv.param("column2").unwrap_or("y"))?;
            if xs.len() != ys.len() || xs.len() < 3 {
                return Err(ToolError("need ≥3 matched observations".to_string()));
            }
            let r = describe::pearson(&xs, &ys)
                .ok_or_else(|| ToolError("zero-variance column".to_string()))?;
            let n = xs.len() as f64;
            let t = r * ((n - 2.0) / (1.0 - r * r).max(1e-12)).sqrt();
            let p = t_two_sided_p(t, n - 2.0);
            Ok(vec![table_output(
                "result",
                "correlation test",
                ["r", "t", "df", "p.value"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                vec![vec![fmt(r), fmt(t), fmt(n - 2.0), fmt(p)]],
            )])
        }),
    }
}

/// Simple linear regression.
fn linear_regression_tool() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_linearRegression".to_string(),
        name: "linearRegression.R".to_string(),
        version: "1.0".to_string(),
        description: "ordinary least squares y ~ x with fit plot".to_string(),
        params: vec![
            ParamSpec::dataset("input", "Table"),
            ParamSpec::text("column1", "X column", "x"),
            ParamSpec::text("column2", "Y column", "y"),
        ],
        outputs: vec![out("coefficients", "tabular"), out("plot", "svg")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "input")?;
            let xs = numeric_column(&cols, &rows, inv.param("column1").unwrap_or("x"))?;
            let ys = numeric_column(&cols, &rows, inv.param("column2").unwrap_or("y"))?;
            if xs.len() != ys.len() {
                return Err(ToolError("columns have different lengths".to_string()));
            }
            let fit = linear_regression(&xs, &ys)
                .ok_or_else(|| ToolError("degenerate regression input".to_string()))?;
            let points: Vec<PlotPoint> = xs
                .iter()
                .zip(&ys)
                .map(|(&x, &y)| PlotPoint {
                    x,
                    y,
                    highlight: false,
                })
                .collect();
            Ok(vec![
                table_output(
                    "coefficients",
                    "regression coefficients",
                    ["intercept", "slope", "r.squared", "slope.p"]
                        .iter()
                        .map(|s| s.to_string())
                        .collect(),
                    vec![vec![
                        fmt(fit.intercept),
                        fmt(fit.slope),
                        fmt(fit.r_squared),
                        fmt(fit.slope_p),
                    ]],
                ),
                svg_output(
                    "plot",
                    "regression scatter",
                    svg::scatter_plot("linearRegression", "x", "y", &points),
                ),
            ])
        }),
    }
}

/// Histogram (binned counts table + figure-ready data).
fn histogram_plot() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_histogramPlot".to_string(),
        name: "histogramPlot.R".to_string(),
        version: "1.0".to_string(),
        description: "histogram of a numeric column".to_string(),
        params: vec![
            ParamSpec::dataset("input", "Table"),
            ParamSpec::text("column", "Column", "value"),
            ParamSpec::integer("bins", "Bins", 20, Some(1), Some(1000)),
        ],
        outputs: vec![out("bins", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "input")?;
            let xs = numeric_column(&cols, &rows, inv.param("column").unwrap_or("value"))?;
            let bins = int_param(inv, "bins")? as usize;
            let (lo, hi) =
                describe::min_max(&xs).ok_or_else(|| ToolError("empty column".to_string()))?;
            let width = ((hi - lo) / bins as f64).max(1e-12);
            let mut counts = vec![0u64; bins];
            for &x in &xs {
                let mut b = ((x - lo) / width) as usize;
                if b >= bins {
                    b = bins - 1;
                }
                counts[b] += 1;
            }
            let out_rows: Vec<Vec<String>> = counts
                .iter()
                .enumerate()
                .map(|(b, c)| {
                    vec![
                        fmt(lo + b as f64 * width),
                        fmt(lo + (b + 1) as f64 * width),
                        c.to_string(),
                    ]
                })
                .collect();
            Ok(vec![table_output(
                "bins",
                "histogram bins",
                vec!["from".to_string(), "to".to_string(), "count".to_string()],
                out_rows,
            )])
        }),
    }
}

/// Plain scatter plot of two columns.
fn scatter_plot_tool() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_scatterPlot".to_string(),
        name: "scatterPlot.R".to_string(),
        version: "1.0".to_string(),
        description: "scatter plot of two numeric columns".to_string(),
        params: vec![
            ParamSpec::dataset("input", "Table"),
            ParamSpec::text("column1", "X column", "x"),
            ParamSpec::text("column2", "Y column", "y"),
        ],
        outputs: vec![out("plot", "svg")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "input")?;
            let xs = numeric_column(&cols, &rows, inv.param("column1").unwrap_or("x"))?;
            let ys = numeric_column(&cols, &rows, inv.param("column2").unwrap_or("y"))?;
            let points: Vec<PlotPoint> = xs
                .iter()
                .zip(&ys)
                .map(|(&x, &y)| PlotPoint {
                    x,
                    y,
                    highlight: false,
                })
                .collect();
            Ok(vec![svg_output(
                "plot",
                "scatter plot",
                svg::scatter_plot("scatterPlot", "x", "y", &points),
            )])
        }),
    }
}

/// Kaplan–Meier survival curve from a time/event table.
fn survival_kaplan_meier() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_survivalKaplanMeier".to_string(),
        name: "survivalKaplanMeier.R".to_string(),
        version: "1.0".to_string(),
        description: "Kaplan–Meier survival curve (CVRG cardiovascular follow-up data)".to_string(),
        params: vec![
            ParamSpec::dataset("input", "Table with time and event columns"),
            ParamSpec::text("time", "Time column", "time"),
            ParamSpec::text("event", "Event column (1 = event, 0 = censored)", "event"),
        ],
        outputs: vec![out("curve", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "input")?;
            let times = numeric_column(&cols, &rows, inv.param("time").unwrap_or("time"))?;
            let events = numeric_column(&cols, &rows, inv.param("event").unwrap_or("event"))?;
            if times.len() != events.len() {
                return Err(ToolError("time/event length mismatch".to_string()));
            }
            let subjects: Vec<Subject> = times
                .iter()
                .zip(&events)
                .map(|(&time, &e)| Subject {
                    time,
                    event: e != 0.0,
                })
                .collect();
            let curve = kaplan_meier(&subjects);
            let mut out_rows: Vec<Vec<String>> = curve
                .iter()
                .map(|p| {
                    vec![
                        fmt(p.time),
                        p.at_risk.to_string(),
                        p.events.to_string(),
                        fmt(p.survival),
                    ]
                })
                .collect();
            let med = median_survival(&curve)
                .map(fmt)
                .unwrap_or_else(|| "NA".to_string());
            out_rows.push(vec![
                "(median)".to_string(),
                String::new(),
                String::new(),
                med,
            ]);
            Ok(vec![table_output(
                "curve",
                "Kaplan–Meier curve",
                ["time", "at.risk", "events", "survival"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect(),
                out_rows,
            )])
        }),
    }
}

/// Deterministic subsampling of table rows.
fn random_sample_table() -> ToolDefinition {
    ToolDefinition {
        id: "crdata_randomSampleTable".to_string(),
        name: "randomSampleTable.R".to_string(),
        version: "1.0".to_string(),
        description: "reproducible subsample of table rows (seeded)".to_string(),
        params: vec![
            ParamSpec::dataset("input", "Table"),
            ParamSpec::integer("n", "Rows to keep", 100, Some(1), Some(10_000_000)),
            ParamSpec::integer("seed", "Seed", 1, None, None),
        ],
        outputs: vec![out("sample", "tabular")],
        cost: CostModel::CRDATA_R,
        behavior: Arc::new(|inv: &ToolInvocation| {
            let (cols, rows) = table_input(inv, "input")?;
            let n = int_param(inv, "n")? as usize;
            let seed = int_param(inv, "seed")? as u64;
            let mut rng = cumulus_simkit::rng::RngStream::derive(seed, "randomSampleTable");
            let mut indices: Vec<usize> = (0..rows.len()).collect();
            rng.shuffle(&mut indices);
            indices.truncate(n.min(rows.len()));
            indices.sort_unstable();
            let sampled: Vec<Vec<String>> = indices.iter().map(|&i| rows[i].clone()).collect();
            Ok(vec![table_output(
                "sample",
                &format!("random sample ({} rows)", sampled.len()),
                cols,
                sampled,
            )])
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulus_galaxy::Content;
    use cumulus_net::DataSize;

    fn table(cols: &[&str], rows: Vec<Vec<&str>>) -> Content {
        Content::Table {
            columns: cols.iter().map(|s| s.to_string()).collect(),
            rows: rows
                .into_iter()
                .map(|r| r.into_iter().map(|c| c.to_string()).collect())
                .collect(),
        }
    }

    fn inv(content: Content, params: &[(&str, &str)]) -> ToolInvocation {
        ToolInvocation {
            params: params
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
            inputs: [("input".to_string(), content)].into_iter().collect(),
            input_size: DataSize::from_kb(10),
        }
    }

    fn first_table(outputs: &[cumulus_galaxy::ToolOutput]) -> (&Vec<String>, &Vec<Vec<String>>) {
        match &outputs[0].content {
            Content::Table { columns, rows } => (columns, rows),
            other => panic!("expected table, got {other:?}"),
        }
    }

    #[test]
    fn two_group_t_test_on_table() {
        let t = table(
            &["group1", "group2"],
            vec![
                vec!["30.02", "29.89"],
                vec!["29.99", "29.93"],
                vec!["30.11", "29.72"],
                vec!["29.97", "29.98"],
                vec!["30.01", "30.02"],
                vec!["29.99", "29.98"],
            ],
        );
        let outputs = two_group_t_test()
            .behavior
            .run(&inv(t, &[("variance", "pooled")]))
            .unwrap();
        let (_, rows) = first_table(&outputs);
        let t_stat: f64 = rows[0][0].parse().unwrap();
        assert!((t_stat - 1.959).abs() < 0.01);
    }

    #[test]
    fn paired_and_one_sample_tests() {
        let t = table(
            &["before", "after"],
            (0..8)
                .map(|i| {
                    let b = 100.0 + i as f64;
                    vec![
                        Box::leak(format!("{b}").into_boxed_str()) as &str,
                        Box::leak(format!("{}", b + 3.0 + 0.1 * i as f64).into_boxed_str()) as &str,
                    ]
                })
                .collect(),
        );
        let outputs = paired_t_test_tool().behavior.run(&inv(t, &[])).unwrap();
        let (_, rows) = first_table(&outputs);
        let p: f64 = rows[0][2].parse().unwrap();
        assert!(p < 0.001);

        let t = table(
            &["value"],
            vec![
                vec!["5.1"],
                vec!["4.9"],
                vec!["5.0"],
                vec!["5.2"],
                vec!["4.8"],
            ],
        );
        let outputs = one_sample_t_test_tool()
            .behavior
            .run(&inv(t, &[("mu", "5.0")]))
            .unwrap();
        let (_, rows) = first_table(&outputs);
        let p: f64 = rows[0][2].parse().unwrap();
        assert!(p > 0.5);
    }

    #[test]
    fn correction_appends_adjusted_column() {
        let t = table(
            &["id", "P.Value"],
            vec![vec!["a", "0.01"], vec!["b", "0.02"], vec!["c", "0.03"]],
        );
        let outputs = multiple_testing_correction()
            .behavior
            .run(&inv(t, &[("method", "bonferroni")]))
            .unwrap();
        let (cols, rows) = first_table(&outputs);
        assert_eq!(cols.last().map(String::as_str), Some("adj.P.Val"));
        assert_eq!(rows[0][2], "0.0300");

        let bad = table(&["P.Value"], vec![vec!["1.5"]]);
        assert!(multiple_testing_correction()
            .behavior
            .run(&inv(bad, &[("method", "BH")]))
            .is_err());
    }

    #[test]
    fn descriptive_statistics_summarizes_numeric_columns() {
        let t = table(
            &["name", "weight"],
            vec![
                vec!["a", "10"],
                vec!["b", "20"],
                vec!["c", "30"],
                vec!["d", "40"],
            ],
        );
        let outputs = descriptive_statistics().behavior.run(&inv(t, &[])).unwrap();
        let (_, rows) = first_table(&outputs);
        // Only "weight" qualifies as numeric.
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], "weight");
        assert_eq!(rows[0][2], "25.0000"); // mean
        assert_eq!(rows[0][6], "25.0000"); // median
    }

    #[test]
    fn correlation_and_regression_agree_on_a_line() {
        let rows: Vec<Vec<String>> = (0..20)
            .map(|i| vec![i.to_string(), (3 * i + 7).to_string()])
            .collect();
        let content = Content::Table {
            columns: vec!["x".to_string(), "y".to_string()],
            rows,
        };
        let outputs = correlation_test()
            .behavior
            .run(&inv(content.clone(), &[]))
            .unwrap();
        let (_, rows) = first_table(&outputs);
        let r: f64 = rows[0][0].parse().unwrap();
        assert!((r - 1.0).abs() < 1e-9);

        let outputs = linear_regression_tool()
            .behavior
            .run(&inv(content, &[]))
            .unwrap();
        let (_, rows) = first_table(&outputs);
        let intercept: f64 = rows[0][0].parse().unwrap();
        let slope: f64 = rows[0][1].parse().unwrap();
        assert!((intercept - 7.0).abs() < 1e-6);
        assert!((slope - 3.0).abs() < 1e-6);
        assert!(matches!(outputs[1].content, Content::Svg(_)));
    }

    #[test]
    fn histogram_covers_all_values() {
        let rows: Vec<Vec<String>> = (0..100).map(|i| vec![format!("{}", i % 10)]).collect();
        let content = Content::Table {
            columns: vec!["value".to_string()],
            rows,
        };
        let outputs = histogram_plot()
            .behavior
            .run(&inv(content, &[("bins", "10")]))
            .unwrap();
        let (_, rows) = first_table(&outputs);
        assert_eq!(rows.len(), 10);
        let total: u64 = rows.iter().map(|r| r[2].parse::<u64>().unwrap()).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn survival_curve_matches_km() {
        let t = table(
            &["time", "event"],
            vec![
                vec!["6", "1"],
                vec!["6", "1"],
                vec!["6", "1"],
                vec!["6", "0"],
                vec!["7", "1"],
                vec!["9", "0"],
                vec!["10", "1"],
                vec!["10", "0"],
                vec!["11", "0"],
                vec!["13", "1"],
            ],
        );
        let outputs = survival_kaplan_meier().behavior.run(&inv(t, &[])).unwrap();
        let (_, rows) = first_table(&outputs);
        // First event time 6: S = 0.7.
        assert_eq!(rows[0][0], "6.0000");
        assert_eq!(rows[0][3], "0.7000");
        assert_eq!(rows.last().unwrap()[0], "(median)");
    }

    #[test]
    fn random_sample_is_deterministic() {
        let rows: Vec<Vec<String>> = (0..50).map(|i| vec![i.to_string()]).collect();
        let content = Content::Table {
            columns: vec!["id".to_string()],
            rows,
        };
        let run = |seed: &str| {
            let outputs = random_sample_table()
                .behavior
                .run(&inv(content.clone(), &[("n", "10"), ("seed", seed)]))
                .unwrap();
            match &outputs[0].content {
                Content::Table { rows, .. } => rows.clone(),
                other => panic!("expected Content::Table, got {other:?}"),
            }
        };
        assert_eq!(run("1"), run("1"));
        assert_ne!(run("1"), run("2"));
        assert_eq!(run("1").len(), 10);
    }

    #[test]
    fn zscore_and_quantile_normalize_matrices() {
        let m = Content::Matrix {
            row_names: vec!["g1".to_string(), "g2".to_string()],
            col_names: vec!["a_1".to_string(), "b_1".to_string()],
            values: vec![1.0, 5.0, 2.0, 10.0],
        };
        let outputs = zscore_normalize()
            .behavior
            .run(&inv(m.clone(), &[]))
            .unwrap();
        match &outputs[0].content {
            Content::Matrix { values, .. } => {
                assert!((values[0] + values[1]).abs() < 1e-12, "row sums to zero");
            }
            other => panic!("expected Content::Matrix, got {other:?}"),
        }
        let outputs = quantile_normalize_tool()
            .behavior
            .run(&inv(m, &[]))
            .unwrap();
        assert!(matches!(outputs[0].content, Content::Matrix { .. }));
    }

    #[test]
    fn fold_change_on_grouped_matrix() {
        // Two groups; second gene doubled in group b (log2FC = 1).
        let m = Content::Matrix {
            row_names: vec!["g1".to_string(), "g2".to_string()],
            col_names: vec![
                "a_1".to_string(),
                "a_2".to_string(),
                "b_1".to_string(),
                "b_2".to_string(),
            ],
            values: vec![
                8.0, 8.0, 8.0, 8.0, // g1: flat
                4.0, 4.0, 8.0, 8.0, // g2: doubled in group b
            ],
        };
        let outputs = fold_change_tool().behavior.run(&inv(m, &[])).unwrap();
        let (_, rows) = first_table(&outputs);
        let fc_g1: f64 = rows[0][1].parse().unwrap();
        let fc_g2: f64 = rows[1][1].parse().unwrap();
        assert!(fc_g1.abs() < 1e-9, "flat gene FC {fc_g1}");
        assert!((fc_g2 - 1.0).abs() < 1e-9, "doubled gene FC {fc_g2}");

        // One group only is rejected.
        let single = Content::Matrix {
            row_names: vec!["g".to_string()],
            col_names: vec!["a_1".to_string(), "a_2".to_string()],
            values: vec![1.0, 2.0],
        };
        assert!(fold_change_tool().behavior.run(&inv(single, &[])).is_err());
    }

    #[test]
    fn scatter_plot_draws_every_row() {
        let rows: Vec<Vec<String>> = (0..25)
            .map(|i| vec![i.to_string(), (i * i).to_string()])
            .collect();
        let content = Content::Table {
            columns: vec!["x".to_string(), "y".to_string()],
            rows,
        };
        let outputs = scatter_plot_tool()
            .behavior
            .run(&inv(content, &[]))
            .unwrap();
        match &outputs[0].content {
            Content::Svg(svg) => {
                assert_eq!(svg.matches("<circle").count(), 25);
            }
            other => panic!("expected SVG, got {other:?}"),
        }
    }

    #[test]
    fn missing_columns_error() {
        let t = table(&["a"], vec![vec!["1"]]);
        let err = two_group_t_test().behavior.run(&inv(t, &[])).unwrap_err();
        assert!(err.0.contains("no column"));
    }
}

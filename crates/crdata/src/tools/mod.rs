//! The CRData toolset — "35 tools with various functions" (§IV.B).
//!
//! Each tool is a complete Galaxy [`ToolDefinition`]: typed parameters, a
//! cost model (calibrated to the paper's R-tool timings), and a behavior
//! implemented on the `stats`/`genomics` substrate that computes real
//! artifacts (tables and SVG figures).
//!
//! Tool catalog:
//! * [`affy`] — 13 expression-array tools (differential expression,
//!   classification, normalization, QC, clustering, heatmaps, …);
//! * [`sequence`] — 8 RNA-seq tools (count tests, read counting per
//!   transcript, coverage, filtering, …);
//! * [`general`] — 14 general statistical tools (t-tests, corrections,
//!   regression, survival, plots, …).

pub mod affy;
pub mod general;
pub mod sequence;

use cumulus_galaxy::{
    Content, RegistryError, ToolDefinition, ToolError, ToolInvocation, ToolOutput, ToolRegistry,
};

use crate::matrix::LabelledMatrix;

/// Total number of CRData tools (the paper's count).
pub const TOOL_COUNT: usize = 35;

/// The full catalog: `(tool-panel section, definition)` pairs.
pub fn catalog() -> Vec<(&'static str, ToolDefinition)> {
    let mut out = Vec::with_capacity(TOOL_COUNT);
    out.extend(affy::tools().into_iter().map(|t| ("CRData: Expression", t)));
    out.extend(
        sequence::tools()
            .into_iter()
            .map(|t| ("CRData: Sequencing", t)),
    );
    out.extend(
        general::tools()
            .into_iter()
            .map(|t| ("CRData: Statistics", t)),
    );
    out
}

/// Register every CRData tool into a Galaxy registry (what the
/// `galaxy-globus-crdata.rb` recipe does at deploy time).
pub fn register_all(registry: &mut ToolRegistry) -> Result<(), RegistryError> {
    for (section, tool) in catalog() {
        registry.register(section, tool)?;
    }
    Ok(())
}

// ----- shared input/output plumbing --------------------------------------

/// Extract a matrix input.
pub(crate) fn matrix_input(inv: &ToolInvocation, name: &str) -> Result<LabelledMatrix, ToolError> {
    match inv.input(name) {
        Some(Content::Matrix {
            row_names,
            col_names,
            values,
        }) => Ok(LabelledMatrix::new(
            row_names.clone(),
            col_names.clone(),
            values.clone(),
        )),
        Some(other) => Err(ToolError(format!(
            "{name}: expected an expression matrix, got {}",
            content_kind(other)
        ))),
        None => Err(ToolError(format!("{name}: missing input dataset"))),
    }
}

/// Extract a table input.
pub(crate) fn table_input(
    inv: &ToolInvocation,
    name: &str,
) -> Result<(Vec<String>, Vec<Vec<String>>), ToolError> {
    match inv.input(name) {
        Some(Content::Table { columns, rows }) => Ok((columns.clone(), rows.clone())),
        Some(other) => Err(ToolError(format!(
            "{name}: expected a table, got {}",
            content_kind(other)
        ))),
        None => Err(ToolError(format!("{name}: missing input dataset"))),
    }
}

fn content_kind(c: &Content) -> &'static str {
    match c {
        Content::Text(_) => "text",
        Content::Table { .. } => "a table",
        Content::Svg(_) => "an image",
        Content::Archive { .. } => "an archive",
        Content::Matrix { .. } => "a matrix",
        Content::Opaque => "opaque data",
    }
}

/// Wrap a matrix back into dataset content.
pub(crate) fn matrix_content(m: LabelledMatrix) -> Content {
    Content::Matrix {
        row_names: m.row_names,
        col_names: m.col_names,
        values: m.values,
    }
}

/// Build a tabular output.
pub(crate) fn table_output(
    name: &str,
    dataset_name: &str,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
) -> ToolOutput {
    ToolOutput {
        name: name.to_string(),
        dataset_name: dataset_name.to_string(),
        content: Content::Table { columns, rows },
        size: None,
    }
}

/// Build an SVG figure output.
pub(crate) fn svg_output(name: &str, dataset_name: &str, svg: String) -> ToolOutput {
    ToolOutput {
        name: name.to_string(),
        dataset_name: dataset_name.to_string(),
        content: Content::Svg(svg),
        size: None,
    }
}

/// Compact numeric formatting for tables (R-ish significant digits).
pub(crate) fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 0.001 && x.abs() < 100_000.0 {
        format!("{x:.4}")
    } else {
        format!("{x:.3e}")
    }
}

/// Parse a float parameter with a tool-friendly error.
pub(crate) fn float_param(inv: &ToolInvocation, name: &str) -> Result<f64, ToolError> {
    inv.param(name)
        .ok_or_else(|| ToolError(format!("missing parameter {name:?}")))?
        .parse()
        .map_err(|_| ToolError(format!("{name} must be a number")))
}

/// Parse an integer parameter.
pub(crate) fn int_param(inv: &ToolInvocation, name: &str) -> Result<i64, ToolError> {
    inv.param(name)
        .ok_or_else(|| ToolError(format!("missing parameter {name:?}")))?
        .parse()
        .map_err(|_| ToolError(format!("{name} must be an integer")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_exactly_35_tools() {
        let tools = catalog();
        assert_eq!(tools.len(), TOOL_COUNT);
        // All ids unique.
        let mut ids: Vec<&str> = tools.iter().map(|(_, t)| t.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate tool ids");
    }

    #[test]
    fn register_all_populates_registry() {
        let mut registry = ToolRegistry::new();
        register_all(&mut registry).unwrap();
        assert_eq!(registry.len(), TOOL_COUNT);
        assert_eq!(registry.sections().len(), 3);
        assert!(registry.tool("crdata_affyDifferentialExpression").is_ok());
        assert!(registry.tool("crdata_sequenceCountsPerTranscript").is_ok());
        assert!(registry.tool("crdata_survivalKaplanMeier").is_ok());
    }

    #[test]
    fn register_all_twice_fails_cleanly() {
        let mut registry = ToolRegistry::new();
        register_all(&mut registry).unwrap();
        assert!(register_all(&mut registry).is_err());
    }

    #[test]
    fn every_tool_names_paper_cost_model_sanely() {
        for (_, tool) in catalog() {
            assert!(tool.cost.serial_secs > 0.0, "{}", tool.id);
            assert!(!tool.description.is_empty(), "{}", tool.id);
            assert!(tool.id.starts_with("crdata_"), "{}", tool.id);
            assert!(!tool.outputs.is_empty(), "{}", tool.id);
        }
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1.5), "1.5000");
        assert_eq!(fmt(1e-8), "1.000e-8");
        assert_eq!(fmt(1e7), "1.000e7");
    }
}

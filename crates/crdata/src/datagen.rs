//! Synthetic dataset generators.
//!
//! The paper's CVRG datasets (`fourCelFileSamples.zip`, 10.7 MB, and
//! `affyCelFileSamples.zip`, 190.3 MB) are not public. Per the
//! substitution rule, these generators produce Affymetrix-shaped
//! expression bundles and RNA-seq read sets of the right *declared* size,
//! with **planted ground truth** (differentially expressed probes /
//! transcripts) so the test suite can verify that the statistics recover
//! what was planted. The in-memory probe count is kept modest for test
//! speed; the declared archive size drives the performance model.

use cumulus_net::DataSize;
use cumulus_simkit::rng::RngStream;

use crate::genomics::{Read, Transcript};
use crate::matrix::LabelledMatrix;

/// Configuration for a two-group expression bundle.
#[derive(Debug, Clone)]
pub struct CelBundleSpec {
    /// Samples per group.
    pub samples_per_group: usize,
    /// Probes measured.
    pub probes: usize,
    /// Number of planted differential probes (the first `k` rows).
    pub differential: usize,
    /// Planted log₂ effect size.
    pub effect_log2: f64,
    /// Declared archive size (drives the simulated transfer/compute time).
    pub archive_size: DataSize,
}

impl CelBundleSpec {
    /// The paper's small dataset: `fourCelFileSamples.zip`, 10.7 MB, two
    /// groups of two CEL files.
    pub fn four_cel_samples() -> Self {
        CelBundleSpec {
            samples_per_group: 2,
            probes: 2_000,
            differential: 60,
            effect_log2: 1.6,
            archive_size: DataSize::from_mb_f64(10.7),
        }
    }

    /// The paper's large dataset: `affyCelFileSamples.zip`, 190.3 MB.
    pub fn affy_cel_samples() -> Self {
        CelBundleSpec {
            samples_per_group: 8,
            probes: 4_000,
            differential: 120,
            effect_log2: 1.4,
            archive_size: DataSize::from_mb_f64(190.3),
        }
    }
}

/// A generated two-group bundle.
#[derive(Debug, Clone)]
pub struct CelBundle {
    /// Raw probe intensities (probes × samples), groups named `g1_*`,
    /// `g2_*`.
    pub matrix: LabelledMatrix,
    /// Names of the planted differential probes.
    pub planted: Vec<String>,
    /// Declared archive size.
    pub archive_size: DataSize,
}

/// Generate a two-group CEL-like bundle with planted effects.
///
/// Intensities are log-normal (as raw Affymetrix intensities are), with
/// group-2 samples of planted probes shifted by `effect_log2` in log₂
/// space.
pub fn generate_cel_bundle(spec: &CelBundleSpec, rng: &mut RngStream) -> CelBundle {
    let n = spec.samples_per_group;
    let mut col_names = Vec::with_capacity(2 * n);
    for i in 0..n {
        col_names.push(format!("g1_{}", i + 1));
    }
    for i in 0..n {
        col_names.push(format!("g2_{}", i + 1));
    }
    let row_names: Vec<String> = (0..spec.probes)
        .map(|p| format!("probe_{p:05}_at"))
        .collect();

    let mut values = Vec::with_capacity(spec.probes * 2 * n);
    for p in 0..spec.probes {
        // Per-probe baseline expression, log2 scale around 7 ± 1.5.
        let base_log2 = rng.normal(7.0, 1.5);
        let effect = if p < spec.differential {
            spec.effect_log2
        } else {
            0.0
        };
        for s in 0..2 * n {
            let group2 = s >= n;
            let mu = base_log2 + if group2 { effect } else { 0.0 };
            // Biological + technical noise, then back to intensity scale.
            let log_val = rng.normal(mu, 0.25);
            values.push(log_val.exp2());
        }
    }

    CelBundle {
        matrix: LabelledMatrix::new(row_names.clone(), col_names, values),
        planted: row_names[..spec.differential].to_vec(),
        archive_size: spec.archive_size,
    }
}

/// Configuration for a two-library RNA-seq read set.
#[derive(Debug, Clone)]
pub struct ReadSetSpec {
    /// Transcripts in the annotation.
    pub transcripts: usize,
    /// Reads per library.
    pub reads_per_library: usize,
    /// Number of planted differential transcripts (the first `k`).
    pub differential: usize,
    /// Fold change applied to planted transcripts in library 2.
    pub fold_change: f64,
}

impl ReadSetSpec {
    /// A small default read set.
    pub fn small() -> Self {
        ReadSetSpec {
            transcripts: 60,
            reads_per_library: 30_000,
            differential: 8,
            fold_change: 4.0,
        }
    }
}

/// A generated read set: the annotation plus two libraries of aligned
/// reads.
#[derive(Debug)]
pub struct ReadSet {
    /// The annotation the reads were generated from.
    pub annotation: Vec<Transcript>,
    /// Library 1 reads.
    pub library1: Vec<Read>,
    /// Library 2 reads (planted transcripts over-expressed).
    pub library2: Vec<Read>,
    /// Planted transcript names.
    pub planted: Vec<String>,
}

/// Generate two read libraries over a synthetic annotation, with the
/// planted transcripts `fold_change`× more abundant in library 2.
pub fn generate_read_set(spec: &ReadSetSpec, rng: &mut RngStream) -> ReadSet {
    let annotation = crate::genomics::synthetic_annotation(spec.transcripts);
    // Relative abundances (power-law-ish across transcripts).
    let base_weights: Vec<f64> = (0..spec.transcripts)
        .map(|i| 1.0 / (1.0 + i as f64 * 0.13))
        .collect();
    let make_library = |weights: &[f64], rng: &mut RngStream| -> Vec<Read> {
        let total: f64 = weights.iter().sum();
        let mut reads = Vec::with_capacity(spec.reads_per_library);
        for _ in 0..spec.reads_per_library {
            // Sample a transcript by weight.
            let mut u = rng.uniform() * total;
            let mut t_idx = 0;
            for (i, w) in weights.iter().enumerate() {
                if u < *w {
                    t_idx = i;
                    break;
                }
                u -= w;
                t_idx = i;
            }
            let t = &annotation[t_idx];
            // Place a 75-bp read in a random exon.
            let exon = &t.exons[rng.uniform_int(0, t.exons.len() as u64 - 1) as usize];
            let read_len = 75u64.min(exon.len());
            let max_start = exon.end - read_len;
            let start = rng.uniform_int(exon.start, max_start);
            reads.push(Read {
                span: crate::genomics::Interval::new(&exon.chrom, start, start + read_len),
            });
        }
        reads
    };

    let library1 = make_library(&base_weights, rng);
    let mut boosted = base_weights.clone();
    for w in boosted.iter_mut().take(spec.differential) {
        *w *= spec.fold_change;
    }
    let library2 = make_library(&boosted, rng);
    let planted = annotation[..spec.differential]
        .iter()
        .map(|t| t.name.clone())
        .collect();

    ReadSet {
        annotation,
        library1,
        library2,
        planted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::derive(42, "datagen")
    }

    #[test]
    fn cel_bundle_has_declared_shape() {
        let spec = CelBundleSpec::four_cel_samples();
        let bundle = generate_cel_bundle(&spec, &mut rng());
        assert_eq!(bundle.matrix.ncols(), 4, "fourCelFileSamples has 4 CELs");
        assert_eq!(bundle.matrix.nrows(), spec.probes);
        assert_eq!(bundle.planted.len(), spec.differential);
        assert_eq!(bundle.archive_size, DataSize::from_mb_f64(10.7));
        assert!(
            bundle.matrix.values.iter().all(|v| *v > 0.0),
            "intensities positive"
        );
        let (groups, idx) = bundle.matrix.groups_from_col_names();
        assert_eq!(groups, vec!["g1", "g2"]);
        assert_eq!(idx[0].len(), 2);
    }

    #[test]
    fn planted_probes_really_differ() {
        let spec = CelBundleSpec {
            samples_per_group: 6,
            probes: 200,
            differential: 20,
            effect_log2: 1.5,
            archive_size: DataSize::from_mb(1),
        };
        let bundle = generate_cel_bundle(&spec, &mut rng());
        let m = &bundle.matrix;
        // Mean log2 difference over planted probes ≈ effect.
        let mut planted_diff = 0.0;
        let mut null_diff = 0.0;
        for p in 0..spec.probes {
            let row = m.row(p);
            let g1: f64 = row[..6].iter().map(|v| v.log2()).sum::<f64>() / 6.0;
            let g2: f64 = row[6..].iter().map(|v| v.log2()).sum::<f64>() / 6.0;
            if p < 20 {
                planted_diff += g2 - g1;
            } else {
                null_diff += (g2 - g1).abs();
            }
        }
        planted_diff /= 20.0;
        null_diff /= 180.0;
        assert!((planted_diff - 1.5).abs() < 0.25, "planted={planted_diff}");
        assert!(null_diff < 0.4, "null={null_diff}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = CelBundleSpec::four_cel_samples();
        let a = generate_cel_bundle(&spec, &mut RngStream::derive(7, "x"));
        let b = generate_cel_bundle(&spec, &mut RngStream::derive(7, "x"));
        assert_eq!(a.matrix, b.matrix);
        let c = generate_cel_bundle(&spec, &mut RngStream::derive(8, "x"));
        assert_ne!(a.matrix, c.matrix);
    }

    #[test]
    fn read_set_shape_and_determinism() {
        let spec = ReadSetSpec {
            transcripts: 20,
            reads_per_library: 2_000,
            differential: 3,
            fold_change: 5.0,
        };
        let rs = generate_read_set(&spec, &mut rng());
        assert_eq!(rs.annotation.len(), 20);
        assert_eq!(rs.library1.len(), 2_000);
        assert_eq!(rs.library2.len(), 2_000);
        assert_eq!(rs.planted.len(), 3);
        let rs2 = generate_read_set(&spec, &mut RngStream::derive(42, "datagen"));
        assert_eq!(rs.library1, rs2.library1);
    }

    #[test]
    fn planted_transcripts_gain_reads() {
        let spec = ReadSetSpec::small();
        let rs = generate_read_set(&spec, &mut rng());
        let index = crate::genomics::FeatureIndex::build(rs.annotation.clone());
        let c1 = index.count_reads(&rs.library1);
        let c2 = index.count_reads(&rs.library2);
        // Planted transcripts should have visibly more reads in library 2.
        for i in 0..spec.differential {
            assert!(
                c2[i].1 as f64 > c1[i].1 as f64 * 1.8,
                "{}: {} vs {}",
                c1[i].0,
                c1[i].1,
                c2[i].1
            );
        }
    }
}

//! Tiny SVG plot rendering.
//!
//! CRData tools "return output files and figures after running R" (§IV.B).
//! The figure outputs here are real SVG documents — scatter/volcano plots,
//! heatmaps with dendrogram-ordered rows, boxplots — small enough to eyeball
//! and assert on in tests.

/// A point with an optional highlight flag (e.g. significant probes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlotPoint {
    /// X coordinate (data space).
    pub x: f64,
    /// Y coordinate (data space).
    pub y: f64,
    /// Highlighted (drawn in the accent color)?
    pub highlight: bool,
}

const WIDTH: f64 = 480.0;
const HEIGHT: f64 = 360.0;
const MARGIN: f64 = 40.0;

fn scale(points: &[PlotPoint]) -> (f64, f64, f64, f64) {
    let mut xmin = f64::INFINITY;
    let mut xmax = f64::NEG_INFINITY;
    let mut ymin = f64::INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    for p in points {
        xmin = xmin.min(p.x);
        xmax = xmax.max(p.x);
        ymin = ymin.min(p.y);
        ymax = ymax.max(p.y);
    }
    if !xmin.is_finite() {
        return (0.0, 1.0, 0.0, 1.0);
    }
    if xmax == xmin {
        xmax = xmin + 1.0;
    }
    if ymax == ymin {
        ymax = ymin + 1.0;
    }
    (xmin, xmax, ymin, ymax)
}

/// Render a scatter plot (used by MA, volcano, PCA and plain scatter
/// tools).
pub fn scatter_plot(title: &str, x_label: &str, y_label: &str, points: &[PlotPoint]) -> String {
    let (xmin, xmax, ymin, ymax) = scale(points);
    let sx = |x: f64| MARGIN + (x - xmin) / (xmax - xmin) * (WIDTH - 2.0 * MARGIN);
    let sy = |y: f64| HEIGHT - MARGIN - (y - ymin) / (ymax - ymin) * (HEIGHT - 2.0 * MARGIN);
    let mut out = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}" viewBox="0 0 {WIDTH} {HEIGHT}">"#
    );
    out.push_str(&format!(
        r#"<title>{title}</title><rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    ));
    // Axes.
    out.push_str(&format!(
        r#"<line x1="{m}" y1="{b}" x2="{r}" y2="{b}" stroke="black"/><line x1="{m}" y1="{t}" x2="{m}" y2="{b}" stroke="black"/>"#,
        m = MARGIN,
        b = HEIGHT - MARGIN,
        r = WIDTH - MARGIN,
        t = MARGIN
    ));
    out.push_str(&format!(
        r#"<text x="{}" y="{}" font-size="12" text-anchor="middle">{x_label}</text>"#,
        WIDTH / 2.0,
        HEIGHT - 8.0
    ));
    out.push_str(&format!(
        r#"<text x="12" y="{}" font-size="12" text-anchor="middle" transform="rotate(-90 12 {})">{y_label}</text>"#,
        HEIGHT / 2.0,
        HEIGHT / 2.0
    ));
    for p in points {
        let color = if p.highlight { "#d62728" } else { "#1f77b4" };
        out.push_str(&format!(
            r#"<circle cx="{:.2}" cy="{:.2}" r="2.5" fill="{color}" fill-opacity="0.7"/>"#,
            sx(p.x),
            sy(p.y)
        ));
    }
    out.push_str("</svg>");
    out
}

/// Render a heatmap: `values[r][c]` in row-major order with row/column
/// labels (rows typically pre-ordered by a dendrogram).
pub fn heatmap(
    title: &str,
    row_labels: &[String],
    col_labels: &[String],
    values: &[Vec<f64>],
) -> String {
    let nrows = values.len();
    let ncols = col_labels.len();
    let cell_w = ((WIDTH - 2.0 * MARGIN) / ncols.max(1) as f64).min(40.0);
    let cell_h = ((HEIGHT - 2.0 * MARGIN) / nrows.max(1) as f64).min(18.0);
    // Color scale bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for row in values {
        for &v in row {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || hi == lo {
        lo = 0.0;
        hi = 1.0;
    }
    let mut out = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}"><title>{title}</title><rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    for (r, row) in values.iter().enumerate() {
        for (c, &v) in row.iter().enumerate() {
            // Blue → white → red diverging ramp.
            let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
            let (red, green, blue) = if t < 0.5 {
                let u = t * 2.0;
                ((u * 255.0) as u8, (u * 255.0) as u8, 255)
            } else {
                let u = (t - 0.5) * 2.0;
                (255, ((1.0 - u) * 255.0) as u8, ((1.0 - u) * 255.0) as u8)
            };
            out.push_str(&format!(
                r##"<rect x="{:.1}" y="{:.1}" width="{cell_w:.1}" height="{cell_h:.1}" fill="#{red:02x}{green:02x}{blue:02x}"/>"##,
                MARGIN + c as f64 * cell_w,
                MARGIN + r as f64 * cell_h,
            ));
        }
        if let Some(label) = row_labels.get(r) {
            out.push_str(&format!(
                r#"<text x="{:.1}" y="{:.1}" font-size="8">{label}</text>"#,
                MARGIN + ncols as f64 * cell_w + 4.0,
                MARGIN + r as f64 * cell_h + cell_h * 0.75,
            ));
        }
    }
    for (c, label) in col_labels.iter().enumerate() {
        out.push_str(&format!(
            r#"<text x="{:.1}" y="{:.1}" font-size="9" text-anchor="middle">{label}</text>"#,
            MARGIN + c as f64 * cell_w + cell_w / 2.0,
            MARGIN - 6.0,
        ));
    }
    out.push_str("</svg>");
    out
}

/// Render per-group boxplot data (five-number summaries).
pub fn boxplot(title: &str, groups: &[(String, [f64; 5])]) -> String {
    let n = groups.len().max(1);
    let slot = (WIDTH - 2.0 * MARGIN) / n as f64;
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for (_, q) in groups {
        lo = lo.min(q[0]);
        hi = hi.max(q[4]);
    }
    if !lo.is_finite() || hi == lo {
        lo = 0.0;
        hi = 1.0;
    }
    let sy = |v: f64| HEIGHT - MARGIN - (v - lo) / (hi - lo) * (HEIGHT - 2.0 * MARGIN);
    let mut out = format!(
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" height="{HEIGHT}"><title>{title}</title><rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>"#
    );
    for (i, (label, q)) in groups.iter().enumerate() {
        let cx = MARGIN + slot * (i as f64 + 0.5);
        let half = slot * 0.3;
        // Whiskers.
        out.push_str(&format!(
            r#"<line x1="{cx:.1}" y1="{:.1}" x2="{cx:.1}" y2="{:.1}" stroke="black"/>"#,
            sy(q[0]),
            sy(q[4])
        ));
        // Box q1..q3.
        out.push_str(&format!(
            r##"<rect x="{:.1}" y="{:.1}" width="{:.1}" height="{:.1}" fill="#aec7e8" stroke="black"/>"##,
            cx - half,
            sy(q[3]),
            half * 2.0,
            (sy(q[1]) - sy(q[3])).abs().max(1.0),
        ));
        // Median line.
        out.push_str(&format!(
            r#"<line x1="{:.1}" y1="{:.1}" x2="{:.1}" y2="{:.1}" stroke="black" stroke-width="2"/>"#,
            cx - half,
            sy(q[2]),
            cx + half,
            sy(q[2])
        ));
        out.push_str(&format!(
            r#"<text x="{cx:.1}" y="{:.1}" font-size="10" text-anchor="middle">{label}</text>"#,
            HEIGHT - MARGIN + 14.0
        ));
    }
    out.push_str("</svg>");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scatter_contains_points_and_labels() {
        let points = vec![
            PlotPoint {
                x: 0.0,
                y: 0.0,
                highlight: false,
            },
            PlotPoint {
                x: 1.0,
                y: 2.0,
                highlight: true,
            },
        ];
        let svg = scatter_plot("MA plot", "A", "M", &points);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("<title>MA plot</title>"));
        assert_eq!(svg.matches("<circle").count(), 2);
        assert!(svg.contains("#d62728"), "highlight color present");
        assert!(svg.contains(">A</text>"));
    }

    #[test]
    fn scatter_handles_empty_and_degenerate() {
        let svg = scatter_plot("empty", "x", "y", &[]);
        assert!(svg.contains("</svg>"));
        let svg = scatter_plot(
            "flat",
            "x",
            "y",
            &[PlotPoint {
                x: 1.0,
                y: 1.0,
                highlight: false,
            }],
        );
        assert!(svg.contains("<circle"));
    }

    #[test]
    fn heatmap_has_one_rect_per_cell() {
        let rows = vec!["g1".to_string(), "g2".to_string()];
        let cols = vec!["s1".to_string(), "s2".to_string(), "s3".to_string()];
        let values = vec![vec![0.0, 0.5, 1.0], vec![1.0, 0.5, 0.0]];
        let svg = heatmap("hm", &rows, &cols, &values);
        // 6 cells + background rect.
        assert_eq!(svg.matches("<rect").count(), 7);
        assert!(svg.contains("g2"));
        assert!(svg.contains("s3"));
        // Extremes use saturated blue and red.
        assert!(svg.contains("#0000ff"));
        assert!(svg.contains("#ff0000"));
    }

    #[test]
    fn boxplot_draws_all_groups() {
        let groups = vec![
            ("g1".to_string(), [1.0, 2.0, 3.0, 4.0, 5.0]),
            ("g2".to_string(), [2.0, 3.0, 4.0, 5.0, 6.0]),
        ];
        let svg = boxplot("expression", &groups);
        assert!(svg.contains("g1"));
        assert!(svg.contains("g2"));
        assert!(
            svg.matches("stroke-width=\"2\"").count() == 2,
            "two medians"
        );
    }
}

//! User accounts.
//!
//! Galaxy accounts are linked by **matching username** to Globus Online
//! accounts ("users must … register an account in Galaxy with the same
//! username", §IV.A); the server checks transfers against that identity.

use cumulus_net::DataSize;

/// A registered Galaxy user.
#[derive(Debug, Clone)]
pub struct GalaxyUser {
    /// Username (must match the Globus Online account for transfers).
    pub username: String,
    /// Email for notifications.
    pub email: String,
    /// API key for programmatic access.
    pub api_key: String,
    /// Storage quota.
    pub quota: DataSize,
    /// Bytes currently attributed to the user's datasets.
    pub usage: DataSize,
}

impl GalaxyUser {
    /// Create a user with the default 250 GB quota.
    pub fn new(username: &str, api_key_seed: u64) -> Self {
        GalaxyUser {
            username: username.to_string(),
            email: format!("{username}@example.org"),
            api_key: format!("gx-{api_key_seed:016x}"),
            quota: DataSize::from_gb(250),
            usage: DataSize::ZERO,
        }
    }

    /// Would adding `size` exceed the quota?
    pub fn over_quota_with(&self, size: DataSize) -> bool {
        self.usage + size > self.quota
    }

    /// Charge usage.
    pub fn charge(&mut self, size: DataSize) {
        self.usage += size;
    }

    /// Release usage (dataset deleted).
    pub fn release(&mut self, size: DataSize) {
        self.usage = self.usage.saturating_sub(size);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_accounting() {
        let mut u = GalaxyUser::new("boliu", 7);
        assert_eq!(u.email, "boliu@example.org");
        assert!(!u.over_quota_with(DataSize::from_gb(100)));
        assert!(u.over_quota_with(DataSize::from_gb(251)));
        u.charge(DataSize::from_gb(200));
        assert!(u.over_quota_with(DataSize::from_gb(51)));
        u.release(DataSize::from_gb(100));
        assert!(!u.over_quota_with(DataSize::from_gb(51)));
        u.release(DataSize::from_gb(9999));
        assert_eq!(u.usage, DataSize::ZERO);
    }

    #[test]
    fn api_keys_are_distinct() {
        assert_ne!(
            GalaxyUser::new("a", 1).api_key,
            GalaxyUser::new("a", 2).api_key
        );
    }
}

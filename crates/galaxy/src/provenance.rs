//! Provenance capture.
//!
//! "Galaxy automatically records history and provenance information for
//! each tool executed" and "tracks … all input, intermediate, and final
//! datasets, as well as the parameters and the execution order of each
//! step" (§II.2). Every completed job deposits one record per output
//! dataset; lineage queries walk the records backwards.

use std::collections::BTreeMap;

use cumulus_simkit::time::SimTime;

use crate::dataset::DatasetId;
use crate::job::GalaxyJobId;

/// How one dataset came to exist.
#[derive(Debug, Clone)]
pub struct ProvenanceRecord {
    /// The dataset this record explains.
    pub dataset: DatasetId,
    /// The producing job.
    pub job: GalaxyJobId,
    /// Tool id and version.
    pub tool: (String, String),
    /// The exact parameters used.
    pub params: BTreeMap<String, String>,
    /// Input datasets, by parameter name.
    pub inputs: BTreeMap<String, DatasetId>,
    /// When the job started and finished.
    pub span: (SimTime, SimTime),
}

/// The provenance store.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceStore {
    records: BTreeMap<DatasetId, ProvenanceRecord>,
}

impl ProvenanceStore {
    /// An empty store.
    pub fn new() -> Self {
        ProvenanceStore::default()
    }

    /// Record how a dataset was produced.
    pub fn record(&mut self, record: ProvenanceRecord) {
        self.records.insert(record.dataset, record);
    }

    /// The record for a dataset, if it was tool-produced (uploads have
    /// none).
    pub fn of(&self, dataset: DatasetId) -> Option<&ProvenanceRecord> {
        self.records.get(&dataset)
    }

    /// Full lineage of a dataset: every ancestor dataset id, following
    /// input edges transitively (nearest first, deduplicated).
    pub fn lineage(&self, dataset: DatasetId) -> Vec<DatasetId> {
        let mut out = Vec::new();
        let mut queue = vec![dataset];
        while let Some(d) = queue.pop() {
            if let Some(rec) = self.records.get(&d) {
                for input in rec.inputs.values() {
                    if !out.contains(input) {
                        out.push(*input);
                        queue.push(*input);
                    }
                }
            }
        }
        out
    }

    /// Rebuild the command history needed to reproduce `dataset`: the
    /// producing steps in execution order (oldest first).
    pub fn replay_plan(&self, dataset: DatasetId) -> Vec<&ProvenanceRecord> {
        let mut steps: Vec<&ProvenanceRecord> = Vec::new();
        let mut queue = vec![dataset];
        while let Some(d) = queue.pop() {
            if let Some(rec) = self.records.get(&d) {
                if !steps.iter().any(|r| r.job == rec.job) {
                    steps.push(rec);
                    queue.extend(rec.inputs.values().copied());
                }
            }
        }
        steps.sort_by_key(|r| r.span.0);
        steps
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulus_simkit::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn rec(dataset: u64, job: u64, inputs: &[(&str, u64)], start: u64) -> ProvenanceRecord {
        ProvenanceRecord {
            dataset: DatasetId(dataset),
            job: GalaxyJobId(job),
            tool: ("tool".to_string(), "1.0".to_string()),
            params: BTreeMap::new(),
            inputs: inputs
                .iter()
                .map(|(k, v)| (k.to_string(), DatasetId(*v)))
                .collect(),
            span: (t(start), t(start + 60)),
        }
    }

    #[test]
    fn uploads_have_no_record() {
        let store = ProvenanceStore::new();
        assert!(store.of(DatasetId(1)).is_none());
        assert!(store.lineage(DatasetId(1)).is_empty());
        assert!(store.is_empty());
    }

    #[test]
    fn lineage_walks_transitively() {
        // upload(1) → normalize(2) → test(3); plot(4) also from 2.
        let mut store = ProvenanceStore::new();
        store.record(rec(2, 100, &[("input", 1)], 10));
        store.record(rec(3, 101, &[("input", 2)], 100));
        store.record(rec(4, 102, &[("input", 2)], 120));
        let lin = store.lineage(DatasetId(3));
        assert_eq!(lin, vec![DatasetId(2), DatasetId(1)]);
        assert_eq!(store.lineage(DatasetId(2)), vec![DatasetId(1)]);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn replay_plan_is_in_execution_order() {
        let mut store = ProvenanceStore::new();
        store.record(rec(2, 100, &[("input", 1)], 10));
        store.record(rec(3, 101, &[("a", 2), ("b", 1)], 100));
        let plan = store.replay_plan(DatasetId(3));
        let jobs: Vec<u64> = plan.iter().map(|r| r.job.0).collect();
        assert_eq!(jobs, vec![100, 101]);
    }

    #[test]
    fn diamond_lineage_deduplicates() {
        // 1 → 2, 1 → 3, (2,3) → 4.
        let mut store = ProvenanceStore::new();
        store.record(rec(2, 100, &[("i", 1)], 10));
        store.record(rec(3, 101, &[("i", 1)], 20));
        store.record(rec(4, 102, &[("a", 2), ("b", 3)], 30));
        let lin = store.lineage(DatasetId(4));
        assert_eq!(lin.len(), 3, "1 appears once: {lin:?}");
    }
}

//! Provenance capture.
//!
//! "Galaxy automatically records history and provenance information for
//! each tool executed" and "tracks … all input, intermediate, and final
//! datasets, as well as the parameters and the execution order of each
//! step" (§II.2). Every completed job deposits one record per output
//! dataset; lineage queries walk the records backwards.

use std::collections::{BTreeMap, BTreeSet};

use cumulus_simkit::time::SimTime;

use crate::dataset::DatasetId;
use crate::job::GalaxyJobId;

/// The provenance graph reachable from a dataset contains a cycle — some
/// dataset is its own ancestor — so lineage and replay are ill-defined.
/// Records are append-only and normally form a DAG; a cycle means the
/// store was corrupted (e.g. by replaying records from a damaged export).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CyclicProvenance {
    /// A dataset on the cycle.
    pub dataset: DatasetId,
}

impl std::fmt::Display for CyclicProvenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "provenance cycle through {}", self.dataset)
    }
}

impl std::error::Error for CyclicProvenance {}

/// How one dataset came to exist.
#[derive(Debug, Clone)]
pub struct ProvenanceRecord {
    /// The dataset this record explains.
    pub dataset: DatasetId,
    /// The producing job.
    pub job: GalaxyJobId,
    /// Tool id and version.
    pub tool: (String, String),
    /// The exact parameters used.
    pub params: BTreeMap<String, String>,
    /// Input datasets, by parameter name.
    pub inputs: BTreeMap<String, DatasetId>,
    /// When the job started and finished.
    pub span: (SimTime, SimTime),
}

/// The provenance store.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceStore {
    records: BTreeMap<DatasetId, ProvenanceRecord>,
}

impl ProvenanceStore {
    /// An empty store.
    pub fn new() -> Self {
        ProvenanceStore::default()
    }

    /// Record how a dataset was produced.
    pub fn record(&mut self, record: ProvenanceRecord) {
        self.records.insert(record.dataset, record);
    }

    /// The record for a dataset, if it was tool-produced (uploads have
    /// none).
    pub fn of(&self, dataset: DatasetId) -> Option<&ProvenanceRecord> {
        self.records.get(&dataset)
    }

    /// Verify the records reachable from `dataset` form a DAG. Depth-first
    /// with an on-path set: an input edge back onto the current path is a
    /// back edge, i.e. a cycle.
    fn check_acyclic(&self, dataset: DatasetId) -> Result<(), CyclicProvenance> {
        let children = |d: DatasetId| -> Vec<DatasetId> {
            self.records
                .get(&d)
                .map(|r| r.inputs.values().copied().collect())
                .unwrap_or_default()
        };
        let mut done: BTreeSet<DatasetId> = BTreeSet::new();
        let mut on_path: BTreeSet<DatasetId> = BTreeSet::new();
        let mut stack: Vec<(DatasetId, Vec<DatasetId>, usize)> = Vec::new();
        on_path.insert(dataset);
        stack.push((dataset, children(dataset), 0));
        while let Some((node, kids, idx)) = stack.last_mut() {
            if *idx < kids.len() {
                let next = kids[*idx];
                *idx += 1;
                if on_path.contains(&next) {
                    return Err(CyclicProvenance { dataset: next });
                }
                if done.contains(&next) {
                    continue;
                }
                on_path.insert(next);
                let grand = children(next);
                stack.push((next, grand, 0));
            } else {
                let node = *node;
                on_path.remove(&node);
                done.insert(node);
                stack.pop();
            }
        }
        Ok(())
    }

    /// Full lineage of a dataset: every ancestor dataset id, following
    /// input edges transitively (nearest first, deduplicated). Errors if
    /// the reachable records contain a cycle.
    pub fn lineage(&self, dataset: DatasetId) -> Result<Vec<DatasetId>, CyclicProvenance> {
        self.check_acyclic(dataset)?;
        let mut out = Vec::new();
        let mut queue = vec![dataset];
        while let Some(d) = queue.pop() {
            if let Some(rec) = self.records.get(&d) {
                for input in rec.inputs.values() {
                    if !out.contains(input) {
                        out.push(*input);
                        queue.push(*input);
                    }
                }
            }
        }
        Ok(out)
    }

    /// Rebuild the command history needed to reproduce `dataset`: the
    /// producing steps in execution order (oldest first). Errors if the
    /// reachable records contain a cycle.
    pub fn replay_plan(
        &self,
        dataset: DatasetId,
    ) -> Result<Vec<&ProvenanceRecord>, CyclicProvenance> {
        self.check_acyclic(dataset)?;
        let mut steps: Vec<&ProvenanceRecord> = Vec::new();
        let mut queue = vec![dataset];
        while let Some(d) = queue.pop() {
            if let Some(rec) = self.records.get(&d) {
                if !steps.iter().any(|r| r.job == rec.job) {
                    steps.push(rec);
                    queue.extend(rec.inputs.values().copied());
                }
            }
        }
        steps.sort_by_key(|r| r.span.0);
        Ok(steps)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no records exist.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulus_simkit::time::SimDuration;

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    fn rec(dataset: u64, job: u64, inputs: &[(&str, u64)], start: u64) -> ProvenanceRecord {
        ProvenanceRecord {
            dataset: DatasetId(dataset),
            job: GalaxyJobId(job),
            tool: ("tool".to_string(), "1.0".to_string()),
            params: BTreeMap::new(),
            inputs: inputs
                .iter()
                .map(|(k, v)| (k.to_string(), DatasetId(*v)))
                .collect(),
            span: (t(start), t(start + 60)),
        }
    }

    #[test]
    fn uploads_have_no_record() {
        let store = ProvenanceStore::new();
        assert!(store.of(DatasetId(1)).is_none());
        assert!(store.lineage(DatasetId(1)).unwrap().is_empty());
        assert!(store.is_empty());
    }

    #[test]
    fn lineage_walks_transitively() {
        // upload(1) → normalize(2) → test(3); plot(4) also from 2.
        let mut store = ProvenanceStore::new();
        store.record(rec(2, 100, &[("input", 1)], 10));
        store.record(rec(3, 101, &[("input", 2)], 100));
        store.record(rec(4, 102, &[("input", 2)], 120));
        let lin = store.lineage(DatasetId(3)).unwrap();
        assert_eq!(lin, vec![DatasetId(2), DatasetId(1)]);
        assert_eq!(store.lineage(DatasetId(2)).unwrap(), vec![DatasetId(1)]);
        assert_eq!(store.len(), 3);
    }

    #[test]
    fn replay_plan_is_in_execution_order() {
        let mut store = ProvenanceStore::new();
        store.record(rec(2, 100, &[("input", 1)], 10));
        store.record(rec(3, 101, &[("a", 2), ("b", 1)], 100));
        let plan = store.replay_plan(DatasetId(3)).unwrap();
        let jobs: Vec<u64> = plan.iter().map(|r| r.job.0).collect();
        assert_eq!(jobs, vec![100, 101]);
    }

    #[test]
    fn diamond_lineage_deduplicates() {
        // 1 → 2, 1 → 3, (2,3) → 4.
        let mut store = ProvenanceStore::new();
        store.record(rec(2, 100, &[("i", 1)], 10));
        store.record(rec(3, 101, &[("i", 1)], 20));
        store.record(rec(4, 102, &[("a", 2), ("b", 3)], 30));
        let lin = store.lineage(DatasetId(4)).unwrap();
        assert_eq!(lin.len(), 3, "1 appears once: {lin:?}");
    }

    #[test]
    fn self_loop_is_a_typed_cycle_error() {
        // A record claiming a dataset was produced from itself.
        let mut store = ProvenanceStore::new();
        store.record(rec(1, 100, &[("i", 1)], 10));
        assert_eq!(
            store.lineage(DatasetId(1)),
            Err(CyclicProvenance {
                dataset: DatasetId(1)
            })
        );
        assert!(store.replay_plan(DatasetId(1)).is_err());
    }

    #[test]
    fn two_step_cycle_is_detected_from_any_entry_point() {
        // 2 ← 3 and 3 ← 2: corrupted cross-references.
        let mut store = ProvenanceStore::new();
        store.record(rec(2, 100, &[("i", 3)], 10));
        store.record(rec(3, 101, &[("i", 2)], 20));
        // A downstream dataset whose ancestry passes through the cycle.
        store.record(rec(4, 102, &[("i", 3)], 30));
        for d in [2, 3, 4] {
            let err = store.lineage(DatasetId(d)).unwrap_err();
            assert!(
                err.dataset == DatasetId(2) || err.dataset == DatasetId(3),
                "cycle member reported, got {err}"
            );
            assert!(store.replay_plan(DatasetId(d)).is_err());
        }
    }

    #[test]
    fn cycles_outside_the_queried_ancestry_do_not_poison_it() {
        // 1 → 2 is clean; 8 ⇄ 9 is a disjoint corrupted island.
        let mut store = ProvenanceStore::new();
        store.record(rec(2, 100, &[("i", 1)], 10));
        store.record(rec(8, 200, &[("i", 9)], 50));
        store.record(rec(9, 201, &[("i", 8)], 60));
        assert_eq!(store.lineage(DatasetId(2)).unwrap(), vec![DatasetId(1)]);
        assert_eq!(store.replay_plan(DatasetId(2)).unwrap().len(), 1);
    }
}

//! Galaxy jobs: the bridge between a tool invocation and the Condor pool.

use std::collections::BTreeMap;

use cumulus_htc::JobId as CondorJobId;
use cumulus_simkit::time::SimTime;

use crate::dataset::DatasetId;

/// Identifier for a Galaxy job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GalaxyJobId(pub u64);

impl std::fmt::Display for GalaxyJobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "gxjob-{}", self.0)
    }
}

/// Job state as shown in the history panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GalaxyJobState {
    /// Submitted to the Condor pool, waiting for a slot.
    Queued,
    /// Executing.
    Running,
    /// Finished; outputs ok.
    Ok,
    /// Finished with an error.
    Error,
}

/// A tool invocation tracked by the server.
#[derive(Debug, Clone)]
pub struct GalaxyJob {
    /// Its id.
    pub id: GalaxyJobId,
    /// The tool that ran.
    pub tool_id: String,
    /// Tool version at submission.
    pub tool_version: String,
    /// The submitting user.
    pub user: String,
    /// The history receiving outputs.
    pub history: crate::history::HistoryId,
    /// Resolved parameters.
    pub params: BTreeMap<String, String>,
    /// Input datasets, by parameter name.
    pub inputs: BTreeMap<String, DatasetId>,
    /// Output datasets (pre-allocated at submission, filled on completion).
    pub outputs: Vec<DatasetId>,
    /// The Condor job backing the execution, if dispatched to the pool.
    pub condor_job: Option<CondorJobId>,
    /// State.
    pub state: GalaxyJobState,
    /// Submission time.
    pub submitted_at: SimTime,
    /// Completion time, when finished.
    pub finished_at: Option<SimTime>,
    /// Error text when failed.
    pub error: Option<String>,
}

impl GalaxyJob {
    /// Wall-clock runtime (submission → completion), when finished.
    pub fn runtime(&self) -> Option<cumulus_simkit::time::SimDuration> {
        self.finished_at.map(|f| f.since(self.submitted_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulus_simkit::time::SimDuration;

    #[test]
    fn runtime_requires_completion() {
        let mut j = GalaxyJob {
            id: GalaxyJobId(1),
            tool_id: "t".to_string(),
            tool_version: "1".to_string(),
            user: "u".to_string(),
            history: crate::history::HistoryId(1),
            params: BTreeMap::new(),
            inputs: BTreeMap::new(),
            outputs: vec![],
            condor_job: None,
            state: GalaxyJobState::Queued,
            submitted_at: SimTime::ZERO,
            finished_at: None,
            error: None,
        };
        assert_eq!(j.runtime(), None);
        j.finished_at = Some(SimTime::ZERO + SimDuration::from_mins(5));
        assert_eq!(j.runtime(), Some(SimDuration::from_mins(5)));
    }
}

//! Tool definitions.
//!
//! "A tool can be any piece of software for which a command line invocation
//! can be constructed" (§II.3). A cumulus tool definition carries the same
//! information a Galaxy tool XML does — typed parameters from which a web
//! form is generated, a command template, and output declarations — plus
//! two things the simulator needs: a *cost model* (how long execution takes
//! as a function of input size) and a *behavior* (the real Rust function
//! that computes the outputs).

use std::collections::BTreeMap;
use std::sync::Arc;

use cumulus_htc::WorkSpec;
use cumulus_net::DataSize;

use crate::dataset::Content;

/// A parameter's type, mirroring Galaxy's form field kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamKind {
    /// Free text.
    Text,
    /// Integer with optional bounds.
    Integer {
        /// Minimum allowed.
        min: Option<i64>,
        /// Maximum allowed.
        max: Option<i64>,
    },
    /// Float.
    Float,
    /// One of a fixed set of options.
    Select {
        /// Allowed options.
        options: Vec<String>,
    },
    /// A dataset from the user's history.
    DatasetInput,
    /// Checkbox.
    Boolean,
}

/// A declared parameter.
#[derive(Debug, Clone)]
pub struct ParamSpec {
    /// Name used in bindings.
    pub name: String,
    /// Form label.
    pub label: String,
    /// Type.
    pub kind: ParamKind,
    /// Whether the form requires a value.
    pub required: bool,
    /// Default, if any.
    pub default: Option<String>,
}

impl ParamSpec {
    /// A required dataset-input parameter.
    pub fn dataset(name: &str, label: &str) -> ParamSpec {
        ParamSpec {
            name: name.to_string(),
            label: label.to_string(),
            kind: ParamKind::DatasetInput,
            required: true,
            default: None,
        }
    }

    /// An optional text parameter with a default.
    pub fn text(name: &str, label: &str, default: &str) -> ParamSpec {
        ParamSpec {
            name: name.to_string(),
            label: label.to_string(),
            kind: ParamKind::Text,
            required: false,
            default: Some(default.to_string()),
        }
    }

    /// A select parameter.
    pub fn select(name: &str, label: &str, options: &[&str], default: &str) -> ParamSpec {
        ParamSpec {
            name: name.to_string(),
            label: label.to_string(),
            kind: ParamKind::Select {
                options: options.iter().map(|s| s.to_string()).collect(),
            },
            required: false,
            default: Some(default.to_string()),
        }
    }

    /// An integer parameter.
    pub fn integer(
        name: &str,
        label: &str,
        default: i64,
        min: Option<i64>,
        max: Option<i64>,
    ) -> ParamSpec {
        ParamSpec {
            name: name.to_string(),
            label: label.to_string(),
            kind: ParamKind::Integer { min, max },
            required: false,
            default: Some(default.to_string()),
        }
    }

    /// A float parameter.
    pub fn float(name: &str, label: &str, default: f64) -> ParamSpec {
        ParamSpec {
            name: name.to_string(),
            label: label.to_string(),
            kind: ParamKind::Float,
            required: false,
            default: Some(default.to_string()),
        }
    }

    /// Validate one provided value against this spec.
    pub fn validate(&self, value: &str) -> Result<(), String> {
        match &self.kind {
            ParamKind::Text | ParamKind::DatasetInput => Ok(()),
            ParamKind::Integer { min, max } => {
                let v: i64 = value
                    .parse()
                    .map_err(|_| format!("{}: {value:?} is not an integer", self.name))?;
                if let Some(min) = min {
                    if v < *min {
                        return Err(format!("{}: {v} < min {min}", self.name));
                    }
                }
                if let Some(max) = max {
                    if v > *max {
                        return Err(format!("{}: {v} > max {max}", self.name));
                    }
                }
                Ok(())
            }
            ParamKind::Float => value
                .parse::<f64>()
                .map(|_| ())
                .map_err(|_| format!("{}: {value:?} is not a number", self.name)),
            ParamKind::Select { options } => {
                if options.iter().any(|o| o == value) {
                    Ok(())
                } else {
                    Err(format!("{}: {value:?} not in {:?}", self.name, options))
                }
            }
            ParamKind::Boolean => match value {
                "true" | "false" | "yes" | "no" => Ok(()),
                _ => Err(format!("{}: {value:?} is not a boolean", self.name)),
            },
        }
    }
}

/// A declared output.
#[derive(Debug, Clone)]
pub struct OutputSpec {
    /// Output name.
    pub name: String,
    /// Datatype extension of the produced dataset.
    pub dtype: String,
}

/// How long a tool takes: `serial + per_mb × input_MB` seconds of
/// compute-unit work (the Amdahl decomposition from DESIGN.md §3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Fixed startup seconds (R interpreter + library loading for CRData
    /// tools).
    pub serial_secs: f64,
    /// Compute-unit-seconds per input megabyte.
    pub secs_per_mb: f64,
}

impl CostModel {
    /// The calibrated CRData R-tool cost model: 112 s of startup plus
    /// ≈ 2.08 CU·s per MB reproduces the paper's Figure 10 execution
    /// times for the 10.7 MB + 190.3 MB payload.
    pub const CRDATA_R: CostModel = CostModel {
        serial_secs: 112.0,
        secs_per_mb: 2.0796,
    };

    /// A fast text-manipulation tool.
    pub const LIGHT: CostModel = CostModel {
        serial_secs: 2.0,
        secs_per_mb: 0.05,
    };

    /// The work spec for a given input size.
    pub fn work(&self, input: DataSize) -> WorkSpec {
        WorkSpec {
            serial_secs: self.serial_secs,
            cu_work: self.secs_per_mb * input.as_mb_f64(),
        }
    }
}

/// Everything a behavior gets to see when it runs.
#[derive(Debug, Clone)]
pub struct ToolInvocation {
    /// Resolved parameter values (defaults filled in).
    pub params: BTreeMap<String, String>,
    /// Input dataset contents, keyed by parameter name.
    pub inputs: BTreeMap<String, Content>,
    /// Total input size (drives the cost model).
    pub input_size: DataSize,
}

impl ToolInvocation {
    /// Fetch a parameter (validated + defaulted by the server).
    pub fn param(&self, name: &str) -> Option<&str> {
        self.params.get(name).map(String::as_str)
    }

    /// Fetch an input's content.
    pub fn input(&self, name: &str) -> Option<&Content> {
        self.inputs.get(name)
    }
}

/// One produced output.
#[derive(Debug, Clone)]
pub struct ToolOutput {
    /// Which declared output this is.
    pub name: String,
    /// Display name for the history panel.
    pub dataset_name: String,
    /// The real content.
    pub content: Content,
    /// Declared size override (None ⇒ use the content's natural size).
    pub size: Option<DataSize>,
}

/// Tool execution failure.
#[derive(Debug, Clone, PartialEq)]
pub struct ToolError(pub String);

impl std::fmt::Display for ToolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tool error: {}", self.0)
    }
}

impl std::error::Error for ToolError {}

/// The real computation behind a tool.
pub trait ToolBehavior: Send + Sync {
    /// Produce the outputs from the invocation.
    fn run(&self, invocation: &ToolInvocation) -> Result<Vec<ToolOutput>, ToolError>;
}

impl<F> ToolBehavior for F
where
    F: Fn(&ToolInvocation) -> Result<Vec<ToolOutput>, ToolError> + Send + Sync,
{
    fn run(&self, invocation: &ToolInvocation) -> Result<Vec<ToolOutput>, ToolError> {
        self(invocation)
    }
}

/// A complete tool definition.
#[derive(Clone)]
pub struct ToolDefinition {
    /// Unique id, e.g. `crdata_affyDifferentialExpression`.
    pub id: String,
    /// Display name.
    pub name: String,
    /// Version string.
    pub version: String,
    /// One-line description for the tool panel.
    pub description: String,
    /// Parameters.
    pub params: Vec<ParamSpec>,
    /// Outputs.
    pub outputs: Vec<OutputSpec>,
    /// Cost model.
    pub cost: CostModel,
    /// The computation.
    pub behavior: Arc<dyn ToolBehavior>,
}

impl std::fmt::Debug for ToolDefinition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ToolDefinition")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("version", &self.version)
            .field("params", &self.params.len())
            .field("outputs", &self.outputs.len())
            .finish()
    }
}

impl ToolDefinition {
    /// Resolve and validate user-supplied parameters: defaults are filled
    /// in, unknown names rejected, required parameters enforced, and each
    /// value type-checked.
    pub fn resolve_params(
        &self,
        provided: &BTreeMap<String, String>,
    ) -> Result<BTreeMap<String, String>, ToolError> {
        for name in provided.keys() {
            if !self.params.iter().any(|p| &p.name == name) {
                return Err(ToolError(format!(
                    "unknown parameter {name:?} for tool {}",
                    self.id
                )));
            }
        }
        let mut resolved = BTreeMap::new();
        for spec in &self.params {
            match provided.get(&spec.name) {
                Some(value) => {
                    spec.validate(value).map_err(ToolError)?;
                    resolved.insert(spec.name.clone(), value.clone());
                }
                None => match (&spec.default, spec.required) {
                    (Some(d), _) => {
                        resolved.insert(spec.name.clone(), d.clone());
                    }
                    (None, true) => {
                        return Err(ToolError(format!(
                            "missing required parameter {:?}",
                            spec.name
                        )))
                    }
                    (None, false) => {}
                },
            }
        }
        Ok(resolved)
    }

    /// The rendered form model (what Galaxy auto-generates as a web UI).
    pub fn form_model(&self) -> String {
        let mut out = format!(
            "Tool: {} (v{})\n{}\n",
            self.name, self.version, self.description
        );
        for p in &self.params {
            let kind = match &p.kind {
                ParamKind::Text => "text".to_string(),
                ParamKind::Integer { .. } => "integer".to_string(),
                ParamKind::Float => "float".to_string(),
                ParamKind::Select { options } => format!("select{options:?}"),
                ParamKind::DatasetInput => "dataset".to_string(),
                ParamKind::Boolean => "boolean".to_string(),
            };
            out.push_str(&format!(
                "  {} [{}{}]: {}\n",
                p.label,
                kind,
                if p.required { ", required" } else { "" },
                p.default.as_deref().unwrap_or("-"),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn echo_tool() -> ToolDefinition {
        ToolDefinition {
            id: "echo".to_string(),
            name: "Echo".to_string(),
            version: "1.0".to_string(),
            description: "writes its text param".to_string(),
            params: vec![
                ParamSpec::text("text", "Text", "hi"),
                ParamSpec::dataset("input", "Input dataset"),
                ParamSpec::integer("count", "Count", 1, Some(0), Some(10)),
                ParamSpec::select("mode", "Mode", &["fast", "slow"], "fast"),
            ],
            outputs: vec![OutputSpec {
                name: "out".to_string(),
                dtype: "txt".to_string(),
            }],
            cost: CostModel::LIGHT,
            behavior: Arc::new(|inv: &ToolInvocation| {
                Ok(vec![ToolOutput {
                    name: "out".to_string(),
                    dataset_name: "echo output".to_string(),
                    content: Content::Text(inv.param("text").unwrap_or("").to_string()),
                    size: None,
                }])
            }),
        }
    }

    fn params(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn defaults_fill_in() {
        let tool = echo_tool();
        let resolved = tool
            .resolve_params(&params(&[("input", "dataset-1")]))
            .unwrap();
        assert_eq!(resolved.get("text").map(String::as_str), Some("hi"));
        assert_eq!(resolved.get("count").map(String::as_str), Some("1"));
        assert_eq!(resolved.get("mode").map(String::as_str), Some("fast"));
    }

    #[test]
    fn required_params_enforced() {
        let tool = echo_tool();
        let err = tool.resolve_params(&params(&[])).unwrap_err();
        assert!(err.0.contains("input"));
    }

    #[test]
    fn unknown_params_rejected() {
        let tool = echo_tool();
        let err = tool
            .resolve_params(&params(&[("input", "x"), ("bogus", "1")]))
            .unwrap_err();
        assert!(err.0.contains("bogus"));
    }

    #[test]
    fn integer_bounds_checked() {
        let tool = echo_tool();
        assert!(tool
            .resolve_params(&params(&[("input", "x"), ("count", "11")]))
            .is_err());
        assert!(tool
            .resolve_params(&params(&[("input", "x"), ("count", "-1")]))
            .is_err());
        assert!(tool
            .resolve_params(&params(&[("input", "x"), ("count", "ten")]))
            .is_err());
        assert!(tool
            .resolve_params(&params(&[("input", "x"), ("count", "10")]))
            .is_ok());
    }

    #[test]
    fn select_options_checked() {
        let tool = echo_tool();
        assert!(tool
            .resolve_params(&params(&[("input", "x"), ("mode", "warp")]))
            .is_err());
    }

    #[test]
    fn cost_model_arithmetic() {
        let w = CostModel::CRDATA_R.work(DataSize::from_mb_f64(10.7));
        assert_eq!(w.serial_secs, 112.0);
        assert!((w.cu_work - 2.0796 * 10.7).abs() < 1e-9);
        // Both paper datasets on m1.small ≈ 10.7 minutes.
        let w1 = CostModel::CRDATA_R.work(DataSize::from_mb_f64(10.7));
        let w2 = CostModel::CRDATA_R.work(DataSize::from_mb_f64(190.3));
        let total_mins =
            (w1.duration_on(1.0).as_secs_f64() + w2.duration_on(1.0).as_secs_f64()) / 60.0;
        assert!((total_mins - 10.7).abs() < 0.1, "total={total_mins}");
    }

    #[test]
    fn behavior_runs() {
        let tool = echo_tool();
        let inv = ToolInvocation {
            params: params(&[("text", "hello")]),
            inputs: BTreeMap::new(),
            input_size: DataSize::ZERO,
        };
        let outs = tool.behavior.run(&inv).unwrap();
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0].content, Content::Text("hello".to_string()));
    }

    #[test]
    fn form_model_mentions_params() {
        let form = echo_tool().form_model();
        assert!(form.contains("Echo"));
        assert!(form.contains("Count"));
        assert!(form.contains("required"));
    }

    #[test]
    fn float_and_bool_validation() {
        let f = ParamSpec::float("x", "X", 0.05);
        assert!(f.validate("0.1").is_ok());
        assert!(f.validate("oops").is_err());
        let b = ParamSpec {
            name: "flag".to_string(),
            label: "Flag".to_string(),
            kind: ParamKind::Boolean,
            required: false,
            default: Some("false".to_string()),
        };
        assert!(b.validate("true").is_ok());
        assert!(b.validate("maybe").is_err());
    }
}

//! The Galaxy application server.
//!
//! Owns users, histories, datasets, the tool panel, jobs, provenance, and
//! sharing; dispatches tool executions to a Condor pool; and moves data in
//! and out through the transfer substrate (Globus Transfer, FTP, HTTP).
//!
//! Execution model: `run_tool` resolves and validates parameters, creates
//! *pending* output datasets in the history (exactly like Galaxy's grey
//! boxes), and submits a Condor job sized by the tool's cost model. When
//! the pool reports the job finished, `on_condor_completion` runs the
//! tool's **real** behavior on the real input contents, fills in the
//! outputs, and writes provenance records.

use std::collections::BTreeMap;

use cumulus_htc::{
    CondorPool, Job as CondorJob, JobId as CondorJobId, Value as AdValue, JOB_INPUT_CIDS_ATTR,
};
use cumulus_net::{DataSize, Network, NodeId};
use cumulus_simkit::time::SimTime;
use cumulus_transfer::{
    Protocol, TaskId, TaskStatus, TransferError, TransferRequest, TransferService,
};

use crate::dataset::{Content, Dataset, DatasetId, DatasetState};
use crate::history::{History, HistoryId};
use crate::job::{GalaxyJob, GalaxyJobId, GalaxyJobState};
use crate::provenance::{ProvenanceRecord, ProvenanceStore};
use crate::registry::{RegistryError, ToolRegistry};
use crate::sharing::{ShareItem, SharingModel};
use crate::tool::{ParamKind, ToolInvocation};
use crate::user::GalaxyUser;

/// Errors from server operations.
#[derive(Debug)]
pub enum GalaxyError {
    /// No such user.
    UnknownUser(String),
    /// No such history.
    UnknownHistory(HistoryId),
    /// No such dataset.
    UnknownDataset(DatasetId),
    /// No such job.
    UnknownJob(GalaxyJobId),
    /// Tool lookup failed.
    Registry(RegistryError),
    /// Parameter validation or execution failure.
    Tool(crate::tool::ToolError),
    /// The user's quota would be exceeded.
    QuotaExceeded {
        /// Who.
        user: String,
        /// The offending size.
        size: DataSize,
    },
    /// A transfer failed to submit.
    Transfer(TransferError),
    /// A dataset is not in the `Ok` state.
    DatasetNotReady(DatasetId),
    /// HTTP uploads over 2 GB are refused by Galaxy.
    UploadTooLarge(DataSize),
    /// A Globus operation needs this server to have a registered endpoint.
    NoEndpoint,
    /// The transfer service has no record of a task it just accepted.
    TransferTaskMissing(TaskId),
}

impl std::fmt::Display for GalaxyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GalaxyError::UnknownUser(u) => write!(f, "unknown user {u:?}"),
            GalaxyError::UnknownHistory(h) => write!(f, "unknown {h}"),
            GalaxyError::UnknownDataset(d) => write!(f, "unknown {d}"),
            GalaxyError::UnknownJob(j) => write!(f, "unknown {j}"),
            GalaxyError::Registry(e) => write!(f, "{e}"),
            GalaxyError::Tool(e) => write!(f, "{e}"),
            GalaxyError::QuotaExceeded { user, size } => {
                write!(f, "{user} would exceed quota adding {size}")
            }
            GalaxyError::Transfer(e) => write!(f, "{e}"),
            GalaxyError::DatasetNotReady(d) => write!(f, "{d} is not ready"),
            GalaxyError::UploadTooLarge(s) => {
                write!(f, "files larger than 2GB cannot be uploaded directly ({s})")
            }
            GalaxyError::NoEndpoint => write!(f, "galaxy server has no Globus endpoint"),
            GalaxyError::TransferTaskMissing(t) => {
                write!(f, "transfer service lost track of {t}")
            }
        }
    }
}

impl std::error::Error for GalaxyError {}

impl From<RegistryError> for GalaxyError {
    fn from(e: RegistryError) -> Self {
        GalaxyError::Registry(e)
    }
}
impl From<crate::tool::ToolError> for GalaxyError {
    fn from(e: crate::tool::ToolError) -> Self {
        GalaxyError::Tool(e)
    }
}
impl From<TransferError> for GalaxyError {
    fn from(e: TransferError) -> Self {
        GalaxyError::Transfer(e)
    }
}

/// The server.
pub struct GalaxyServer {
    /// Registered users.
    users: BTreeMap<String, GalaxyUser>,
    histories: BTreeMap<HistoryId, History>,
    datasets: BTreeMap<DatasetId, Dataset>,
    /// The tool panel.
    pub registry: ToolRegistry,
    jobs: BTreeMap<GalaxyJobId, GalaxyJob>,
    /// Provenance records.
    pub provenance: ProvenanceStore,
    /// Sharing model.
    pub sharing: SharingModel,
    condor_to_galaxy: BTreeMap<CondorJobId, GalaxyJobId>,
    next_history: u64,
    next_dataset: u64,
    next_job: u64,
    next_api_key: u64,
    next_workflow: u64,
    /// The server's network node (where its GridFTP endpoint lives).
    pub node: NodeId,
    /// The server's Globus endpoint name, if one is registered.
    pub endpoint: Option<String>,
}

impl GalaxyServer {
    /// A server hosted at `node`, optionally with a Globus endpoint name.
    pub fn new(node: NodeId, endpoint: Option<&str>) -> Self {
        GalaxyServer {
            users: BTreeMap::new(),
            histories: BTreeMap::new(),
            datasets: BTreeMap::new(),
            registry: ToolRegistry::new(),
            jobs: BTreeMap::new(),
            provenance: ProvenanceStore::new(),
            sharing: SharingModel::new(),
            condor_to_galaxy: BTreeMap::new(),
            next_history: 1,
            next_dataset: 1,
            next_job: 1,
            next_api_key: 1,
            next_workflow: 1,
            node,
            endpoint: endpoint.map(str::to_string),
        }
    }

    /// The next workflow-run serial, used as the telemetry span id for
    /// [`run_workflow`](crate::workflow::run_workflow) invocations.
    pub(crate) fn next_workflow_id(&mut self) -> u64 {
        let id = self.next_workflow;
        self.next_workflow += 1;
        id
    }

    // ----- users & histories -------------------------------------------

    /// Register a user (username must match the Globus Online account for
    /// transfers to work, per §IV.A).
    pub fn register_user(&mut self, username: &str) -> &GalaxyUser {
        let key = self.next_api_key;
        self.next_api_key += 1;
        self.users
            .entry(username.to_string())
            .or_insert_with(|| GalaxyUser::new(username, key))
    }

    /// Look up a user.
    pub fn user(&self, username: &str) -> Result<&GalaxyUser, GalaxyError> {
        self.users
            .get(username)
            .ok_or_else(|| GalaxyError::UnknownUser(username.to_string()))
    }

    /// Create a history for a user.
    pub fn create_history(
        &mut self,
        now: SimTime,
        username: &str,
        name: &str,
    ) -> Result<HistoryId, GalaxyError> {
        self.user(username)?;
        let id = HistoryId(self.next_history);
        self.next_history += 1;
        self.histories
            .insert(id, History::new(id, name, username, now));
        self.sharing.own(ShareItem::History(id), username);
        Ok(id)
    }

    /// Look up a history.
    pub fn history(&self, id: HistoryId) -> Result<&History, GalaxyError> {
        self.histories
            .get(&id)
            .ok_or(GalaxyError::UnknownHistory(id))
    }

    /// Look up a dataset.
    pub fn dataset(&self, id: DatasetId) -> Result<&Dataset, GalaxyError> {
        self.datasets
            .get(&id)
            .ok_or(GalaxyError::UnknownDataset(id))
    }

    /// Look up a job.
    pub fn job(&self, id: GalaxyJobId) -> Result<&GalaxyJob, GalaxyError> {
        self.jobs.get(&id).ok_or(GalaxyError::UnknownJob(id))
    }

    /// Find the most recent successful run of `tool_id` with exactly these
    /// resolved parameters whose outputs all still exist, are Ok, and carry
    /// provenance pointing back at the job. This is how a workflow
    /// checkpoint re-identifies a step's invocation after the fact, without
    /// threading workflow ids through the job table.
    pub fn find_completed_invocation(
        &self,
        tool_id: &str,
        params: &BTreeMap<String, String>,
    ) -> Option<&GalaxyJob> {
        self.jobs.values().rev().find(|j| {
            j.tool_id == tool_id
                && j.state == GalaxyJobState::Ok
                && j.params == *params
                && !j.outputs.is_empty()
                && j.outputs.iter().all(|o| {
                    self.datasets
                        .get(o)
                        .is_some_and(|d| d.state == DatasetState::Ok)
                        && self.provenance.of(*o).is_some_and(|r| r.job == j.id)
                })
        })
    }

    /// Render a history panel.
    pub fn history_panel(&self, id: HistoryId) -> Result<String, GalaxyError> {
        let h = self.history(id)?;
        let mut out = format!("History: {} ({})\n", h.name, h.owner);
        for ds_id in &h.items {
            if let Some(ds) = self.datasets.get(ds_id) {
                out.push_str(&format!("  {}\n", ds.history_line()));
            }
        }
        Ok(out)
    }

    #[allow(clippy::too_many_arguments)]
    fn insert_dataset(
        &mut self,
        now: SimTime,
        history: HistoryId,
        name: &str,
        dtype: &str,
        size: DataSize,
        content: Content,
        state: DatasetState,
        produced_by: Option<GalaxyJobId>,
    ) -> Result<DatasetId, GalaxyError> {
        let owner = self.history(history)?.owner.clone();
        {
            let user = self
                .users
                .get_mut(&owner)
                .ok_or(GalaxyError::UnknownUser(owner.clone()))?;
            if user.over_quota_with(size) {
                return Err(GalaxyError::QuotaExceeded { user: owner, size });
            }
            user.charge(size);
        }
        let id = DatasetId(self.next_dataset);
        self.next_dataset += 1;
        let hid = self.histories.get_mut(&history).expect("checked").push(id);
        self.datasets.insert(
            id,
            Dataset {
                id,
                hid,
                name: name.to_string(),
                dtype: dtype.to_string(),
                size,
                state,
                content,
                created_at: now,
                produced_by,
            },
        );
        self.sharing.own(ShareItem::Dataset(id), &owner);
        Ok(id)
    }

    /// Directly add a ready dataset (used by generators and tests).
    pub fn add_dataset(
        &mut self,
        now: SimTime,
        history: HistoryId,
        name: &str,
        dtype: &str,
        size: DataSize,
        content: Content,
    ) -> Result<DatasetId, GalaxyError> {
        self.insert_dataset(
            now,
            history,
            name,
            dtype,
            size,
            content,
            DatasetState::Ok,
            None,
        )
    }

    // ----- uploads -------------------------------------------------------

    /// Upload via the Galaxy web form (HTTP). Refuses > 2 GB. Returns the
    /// dataset and the time it becomes available.
    #[allow(clippy::too_many_arguments)]
    pub fn upload_http(
        &mut self,
        now: SimTime,
        history: HistoryId,
        name: &str,
        dtype: &str,
        size: DataSize,
        content: Content,
        network: &Network,
        from: NodeId,
    ) -> Result<(DatasetId, SimTime), GalaxyError> {
        let link = network
            .path(from, self.node)
            .unwrap_or(cumulus_transfer::calibrated_wan_link());
        let duration = Protocol::Http
            .transfer_duration(size, &link)
            .ok_or(GalaxyError::UploadTooLarge(size))?;
        let done = now + duration;
        let id = self.insert_dataset(
            done,
            history,
            name,
            dtype,
            size,
            content,
            DatasetState::Ok,
            None,
        )?;
        Ok((id, done))
    }

    /// Upload via Galaxy's FTP import directory.
    #[allow(clippy::too_many_arguments)]
    pub fn upload_ftp(
        &mut self,
        now: SimTime,
        history: HistoryId,
        name: &str,
        dtype: &str,
        size: DataSize,
        content: Content,
        network: &Network,
        from: NodeId,
    ) -> Result<(DatasetId, SimTime), GalaxyError> {
        let link = network
            .path(from, self.node)
            .unwrap_or(cumulus_transfer::calibrated_wan_link());
        let duration = Protocol::Ftp
            .transfer_duration(size, &link)
            .ok_or(GalaxyError::UploadTooLarge(size))?;
        let done = now + duration;
        let id = self.insert_dataset(
            done,
            history,
            name,
            dtype,
            size,
            content,
            DatasetState::Ok,
            None,
        )?;
        Ok((id, done))
    }

    /// "Get Data via Globus Online": transfer from a remote endpoint into
    /// this Galaxy server; the file "is manifested as a Galaxy dataset in
    /// the history panel". Returns the dataset, the transfer task, and the
    /// availability time.
    #[allow(clippy::too_many_arguments)]
    pub fn get_data_via_globus(
        &mut self,
        now: SimTime,
        username: &str,
        history: HistoryId,
        service: &mut TransferService,
        network: &Network,
        source: (&str, &str),
        size: DataSize,
        content: Content,
        deadline: Option<SimTime>,
    ) -> Result<(DatasetId, TaskId, SimTime), GalaxyError> {
        self.user(username)?;
        let endpoint = self.endpoint.clone().ok_or(GalaxyError::NoEndpoint)?;
        let file_name = source.1.rsplit('/').next().unwrap_or(source.1).to_string();
        let mut request = TransferRequest::globus(
            username,
            source,
            (&endpoint, &format!("/nfs/home/{username}/{file_name}")),
            size,
        );
        if let Some(d) = deadline {
            request = request.with_deadline(d);
        }
        let task_id = service.submit(now, network, request)?;
        let task = service
            .task(task_id)
            .ok_or(GalaxyError::TransferTaskMissing(task_id))?;
        let (state, when) = match task.status {
            TaskStatus::Succeeded => (DatasetState::Ok, task.finished_at),
            _ => (DatasetState::Error, task.finished_at),
        };
        let dtype = file_name.rsplit('.').next().unwrap_or("data").to_string();
        let id = self.insert_dataset(
            when, history, &file_name, &dtype, size, content, state, None,
        )?;
        Ok((id, task_id, when))
    }

    /// "Send Data via Globus Online": transfer a dataset from this server
    /// to a remote endpoint.
    pub fn send_data_via_globus(
        &mut self,
        now: SimTime,
        username: &str,
        dataset: DatasetId,
        service: &mut TransferService,
        network: &Network,
        destination: (&str, &str),
    ) -> Result<(TaskId, SimTime), GalaxyError> {
        self.user(username)?;
        let endpoint = self.endpoint.clone().ok_or(GalaxyError::NoEndpoint)?;
        let ds = self.dataset(dataset)?;
        if ds.state != DatasetState::Ok {
            return Err(GalaxyError::DatasetNotReady(dataset));
        }
        let request = TransferRequest::globus(
            username,
            (&endpoint, &format!("/nfs/datasets/{}", ds.name)),
            destination,
            ds.size,
        );
        let task_id = service.submit(now, network, request)?;
        let finished = service
            .task(task_id)
            .ok_or(GalaxyError::TransferTaskMissing(task_id))?
            .finished_at;
        Ok((task_id, finished))
    }

    /// "GO Transfer": third-party transfer between two remote endpoints,
    /// tracked in the history as a dataset stub.
    #[allow(clippy::too_many_arguments)]
    pub fn go_transfer(
        &mut self,
        now: SimTime,
        username: &str,
        history: HistoryId,
        service: &mut TransferService,
        network: &Network,
        source: (&str, &str),
        destination: (&str, &str),
        size: DataSize,
        deadline: Option<SimTime>,
    ) -> Result<(DatasetId, TaskId, SimTime), GalaxyError> {
        self.user(username)?;
        let mut request = TransferRequest::globus(username, source, destination, size);
        if let Some(d) = deadline {
            request = request.with_deadline(d);
        }
        let task_id = service.submit(now, network, request)?;
        let task = service
            .task(task_id)
            .ok_or(GalaxyError::TransferTaskMissing(task_id))?;
        let (state, when) = match task.status {
            TaskStatus::Succeeded => (DatasetState::Ok, task.finished_at),
            _ => (DatasetState::Error, task.finished_at),
        };
        let name = format!("GO transfer: {} -> {}", source.0, destination.0);
        let id = self.insert_dataset(
            when,
            history,
            &name,
            "txt",
            DataSize::ZERO,
            Content::Text(format!("{:?}", task.status)),
            state,
            None,
        )?;
        Ok((id, task_id, when))
    }

    // ----- tool execution -------------------------------------------------

    /// Parse a dataset reference parameter value (`dataset-7` or `7`).
    fn parse_dataset_ref(value: &str) -> Option<DatasetId> {
        let raw = value.strip_prefix("dataset-").unwrap_or(value);
        raw.parse().ok().map(DatasetId)
    }

    /// Submit a tool execution. Outputs appear immediately as pending
    /// datasets; the Condor job carries the calibrated work spec.
    pub fn run_tool(
        &mut self,
        now: SimTime,
        username: &str,
        history: HistoryId,
        tool_id: &str,
        params: &BTreeMap<String, String>,
        pool: &mut CondorPool,
    ) -> Result<GalaxyJobId, GalaxyError> {
        self.user(username)?;
        self.history(history)?;
        let tool = self.registry.tool(tool_id)?.clone();
        let resolved = tool.resolve_params(params)?;

        // Gather dataset inputs (and their content ids, for data-aware
        // matchmaking — the set is sorted so the ad is deterministic).
        let mut inputs: BTreeMap<String, DatasetId> = BTreeMap::new();
        let mut input_cids: std::collections::BTreeSet<String> = Default::default();
        let mut input_size = DataSize::ZERO;
        for spec in &tool.params {
            if spec.kind == ParamKind::DatasetInput {
                if let Some(value) = resolved.get(&spec.name) {
                    let ds_id = Self::parse_dataset_ref(value).ok_or_else(|| {
                        GalaxyError::Tool(crate::tool::ToolError(format!(
                            "{}: {value:?} is not a dataset reference",
                            spec.name
                        )))
                    })?;
                    let ds = self.dataset(ds_id)?;
                    if ds.state != DatasetState::Ok {
                        return Err(GalaxyError::DatasetNotReady(ds_id));
                    }
                    input_size += ds.size;
                    input_cids.insert(ds.content_id().hex());
                    inputs.insert(spec.name.clone(), ds_id);
                }
            }
        }

        let job_id = GalaxyJobId(self.next_job);
        self.next_job += 1;

        // Pre-create pending outputs.
        let mut outputs = Vec::new();
        for out in &tool.outputs {
            let id = self.insert_dataset(
                now,
                history,
                &format!("{} on {}", out.name, tool.name),
                &out.dtype,
                DataSize::ZERO,
                Content::Opaque,
                DatasetState::Pending,
                Some(job_id),
            )?;
            outputs.push(id);
        }

        // Dispatch to Condor. The job ad advertises its input content ids
        // so cache-warm workers outrank cold ones; pools without cache
        // advertisements score the attribute as zero and match as before.
        let work = tool.cost.work(input_size);
        let mut condor_job = CondorJob::new(username, work);
        if !input_cids.is_empty() {
            let joined = input_cids.iter().cloned().collect::<Vec<_>>().join(",");
            condor_job = condor_job.attr(JOB_INPUT_CIDS_ATTR, AdValue::Str(joined));
        }
        let condor_id = pool.submit(condor_job, now);
        self.condor_to_galaxy.insert(condor_id, job_id);

        self.jobs.insert(
            job_id,
            GalaxyJob {
                id: job_id,
                tool_id: tool.id.clone(),
                tool_version: tool.version.clone(),
                user: username.to_string(),
                history,
                params: resolved,
                inputs,
                outputs,
                condor_job: Some(condor_id),
                state: GalaxyJobState::Queued,
                submitted_at: now,
                finished_at: None,
                error: None,
            },
        );
        Ok(job_id)
    }

    /// Notify the server that a Condor job completed; runs the tool's real
    /// behavior and fills in outputs. Returns the Galaxy job id if the
    /// Condor job belonged to this server.
    pub fn on_condor_completion(
        &mut self,
        now: SimTime,
        condor_id: CondorJobId,
    ) -> Option<GalaxyJobId> {
        let job_id = self.condor_to_galaxy.remove(&condor_id)?;
        let (tool_id, params, input_ids, output_ids, started) = {
            let job = self.jobs.get(&job_id)?;
            (
                job.tool_id.clone(),
                job.params.clone(),
                job.inputs.clone(),
                job.outputs.clone(),
                job.submitted_at,
            )
        };
        let tool = match self.registry.tool(&tool_id) {
            Ok(t) => t.clone(),
            Err(_) => return Some(job_id),
        };

        // Build the invocation from real input contents.
        let mut inputs = BTreeMap::new();
        let mut input_size = DataSize::ZERO;
        for (name, ds_id) in &input_ids {
            if let Some(ds) = self.datasets.get(ds_id) {
                inputs.insert(name.clone(), ds.content.clone());
                input_size += ds.size;
            }
        }
        let invocation = ToolInvocation {
            params: params.clone(),
            inputs,
            input_size,
        };

        match tool.behavior.run(&invocation) {
            Ok(outputs) => {
                for (i, out) in outputs.into_iter().enumerate() {
                    let Some(ds_id) = output_ids.get(i) else {
                        break;
                    };
                    let size = out.size.unwrap_or_else(|| out.content.natural_size());
                    if let Some(ds) = self.datasets.get_mut(ds_id) {
                        ds.name = out.dataset_name;
                        ds.content = out.content;
                        ds.size = size;
                        ds.state = DatasetState::Ok;
                    }
                    if let Some(owner) = self
                        .histories
                        .values()
                        .find(|h| h.items.contains(ds_id))
                        .map(|h| h.owner.clone())
                    {
                        if let Some(user) = self.users.get_mut(&owner) {
                            user.charge(size);
                        }
                    }
                    self.provenance.record(ProvenanceRecord {
                        dataset: *ds_id,
                        job: job_id,
                        tool: (tool.id.clone(), tool.version.clone()),
                        params: params.clone(),
                        inputs: input_ids.clone(),
                        span: (started, now),
                    });
                }
                if let Some(job) = self.jobs.get_mut(&job_id) {
                    job.state = GalaxyJobState::Ok;
                    job.finished_at = Some(now);
                }
            }
            Err(e) => {
                for ds_id in &output_ids {
                    if let Some(ds) = self.datasets.get_mut(ds_id) {
                        ds.state = DatasetState::Error;
                    }
                }
                if let Some(job) = self.jobs.get_mut(&job_id) {
                    job.state = GalaxyJobState::Error;
                    job.finished_at = Some(now);
                    job.error = Some(e.0);
                }
            }
        }
        Some(job_id)
    }

    /// Drive the pool until every queued Galaxy job finishes; returns the
    /// time the last one completed (or `None` if jobs are starved with no
    /// capacity).
    pub fn drive_jobs(
        &mut self,
        start: SimTime,
        pool: &mut CondorPool,
        max_cycles: u32,
    ) -> Option<SimTime> {
        let mut now = start;
        for _ in 0..max_cycles {
            pool.negotiate(now);
            match pool.next_completion_at() {
                Some(next) => {
                    now = next;
                    for condor_id in pool.settle(now) {
                        self.on_condor_completion(now, condor_id);
                    }
                }
                None => {
                    return if pool.idle_count() == 0 {
                        Some(now)
                    } else {
                        None
                    };
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::{CostModel, OutputSpec, ParamSpec, ToolDefinition, ToolOutput};
    use cumulus_htc::Machine;
    use cumulus_simkit::time::SimDuration;
    use std::sync::Arc;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn word_count_tool() -> ToolDefinition {
        ToolDefinition {
            id: "wordcount".to_string(),
            name: "Word count".to_string(),
            version: "1.0".to_string(),
            description: "counts words in a text dataset".to_string(),
            params: vec![ParamSpec::dataset("input", "Input")],
            outputs: vec![OutputSpec {
                name: "counts".to_string(),
                dtype: "tabular".to_string(),
            }],
            cost: CostModel::LIGHT,
            behavior: Arc::new(|inv: &ToolInvocation| {
                let text = match inv.input("input") {
                    Some(Content::Text(s)) => s.clone(),
                    _ => return Err(crate::tool::ToolError("need text input".to_string())),
                };
                let n = text.split_whitespace().count();
                Ok(vec![ToolOutput {
                    name: "counts".to_string(),
                    dataset_name: "word counts".to_string(),
                    content: Content::Table {
                        columns: vec!["words".to_string()],
                        rows: vec![vec![n.to_string()]],
                    },
                    size: None,
                }])
            }),
        }
    }

    fn failing_tool() -> ToolDefinition {
        ToolDefinition {
            id: "fail".to_string(),
            name: "Always fails".to_string(),
            version: "1.0".to_string(),
            description: "fails".to_string(),
            params: vec![ParamSpec::dataset("input", "Input")],
            outputs: vec![OutputSpec {
                name: "out".to_string(),
                dtype: "txt".to_string(),
            }],
            cost: CostModel::LIGHT,
            behavior: Arc::new(|_: &ToolInvocation| {
                Err(crate::tool::ToolError("R script crashed".to_string()))
            }),
        }
    }

    struct Fixture {
        server: GalaxyServer,
        pool: CondorPool,
        history: HistoryId,
        input: DatasetId,
    }

    fn fixture() -> Fixture {
        let mut server = GalaxyServer::new(NodeId(0), Some("cvrg#galaxy"));
        server.registry.register("Text", word_count_tool()).unwrap();
        server.registry.register("Text", failing_tool()).unwrap();
        server.register_user("boliu");
        let history = server.create_history(t(0), "boliu", "analysis").unwrap();
        let input = server
            .add_dataset(
                t(0),
                history,
                "notes.txt",
                "txt",
                DataSize::from_kb(1),
                Content::Text("one two three four".to_string()),
            )
            .unwrap();
        let mut pool = CondorPool::new();
        pool.add_machine(Machine::new("galaxy", 1.0, 1700, 1))
            .unwrap();
        Fixture {
            server,
            pool,
            history,
            input,
        }
    }

    fn params(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn tool_run_produces_real_output() {
        let mut f = fixture();
        let input_ref = format!("{}", f.input.0);
        let job = f
            .server
            .run_tool(
                t(10),
                "boliu",
                f.history,
                "wordcount",
                &params(&[("input", &input_ref)]),
                &mut f.pool,
            )
            .unwrap();
        // Output exists immediately, pending.
        let out_id = f.server.job(job).unwrap().outputs[0];
        assert_eq!(
            f.server.dataset(out_id).unwrap().state,
            DatasetState::Pending
        );
        let done = f.server.drive_jobs(t(10), &mut f.pool, 100).unwrap();
        assert!(done > t(10));
        let out = f.server.dataset(out_id).unwrap();
        assert_eq!(out.state, DatasetState::Ok);
        let (_, rows) = out.content.as_table().unwrap();
        assert_eq!(rows[0][0], "4", "real word count computed");
        assert_eq!(f.server.job(job).unwrap().state, GalaxyJobState::Ok);
    }

    #[test]
    fn provenance_recorded_on_completion() {
        let mut f = fixture();
        let input_ref = format!("dataset-{}", f.input.0);
        let job = f
            .server
            .run_tool(
                t(0),
                "boliu",
                f.history,
                "wordcount",
                &params(&[("input", &input_ref)]),
                &mut f.pool,
            )
            .unwrap();
        f.server.drive_jobs(t(0), &mut f.pool, 100).unwrap();
        let out_id = f.server.job(job).unwrap().outputs[0];
        let rec = f.server.provenance.of(out_id).expect("provenance exists");
        assert_eq!(rec.tool.0, "wordcount");
        assert_eq!(rec.inputs.get("input"), Some(&f.input));
        assert_eq!(f.server.provenance.lineage(out_id).unwrap(), vec![f.input]);
    }

    #[test]
    fn failing_tool_marks_error() {
        let mut f = fixture();
        let input_ref = format!("{}", f.input.0);
        let job = f
            .server
            .run_tool(
                t(0),
                "boliu",
                f.history,
                "fail",
                &params(&[("input", &input_ref)]),
                &mut f.pool,
            )
            .unwrap();
        f.server.drive_jobs(t(0), &mut f.pool, 100).unwrap();
        let j = f.server.job(job).unwrap();
        assert_eq!(j.state, GalaxyJobState::Error);
        assert_eq!(j.error.as_deref(), Some("R script crashed"));
        let out = f.server.dataset(j.outputs[0]).unwrap();
        assert_eq!(out.state, DatasetState::Error);
    }

    #[test]
    fn unknown_tool_and_bad_refs_error() {
        let mut f = fixture();
        assert!(matches!(
            f.server
                .run_tool(t(0), "boliu", f.history, "ghost", &params(&[]), &mut f.pool),
            Err(GalaxyError::Registry(_))
        ));
        assert!(matches!(
            f.server.run_tool(
                t(0),
                "boliu",
                f.history,
                "wordcount",
                &params(&[("input", "not-a-ref")]),
                &mut f.pool
            ),
            Err(GalaxyError::Tool(_))
        ));
        assert!(matches!(
            f.server.run_tool(
                t(0),
                "boliu",
                f.history,
                "wordcount",
                &params(&[("input", "999")]),
                &mut f.pool
            ),
            Err(GalaxyError::UnknownDataset(_))
        ));
    }

    #[test]
    fn pending_inputs_are_rejected() {
        let mut f = fixture();
        let input_ref = format!("{}", f.input.0);
        // First job's pending output used as input to a second job.
        let job = f
            .server
            .run_tool(
                t(0),
                "boliu",
                f.history,
                "wordcount",
                &params(&[("input", &input_ref)]),
                &mut f.pool,
            )
            .unwrap();
        let pending = f.server.job(job).unwrap().outputs[0];
        let pending_ref = format!("{}", pending.0);
        assert!(matches!(
            f.server.run_tool(
                t(1),
                "boliu",
                f.history,
                "wordcount",
                &params(&[("input", &pending_ref)]),
                &mut f.pool
            ),
            Err(GalaxyError::DatasetNotReady(_))
        ));
    }

    #[test]
    fn history_panel_shows_lifecycle() {
        let mut f = fixture();
        let input_ref = format!("{}", f.input.0);
        f.server
            .run_tool(
                t(0),
                "boliu",
                f.history,
                "wordcount",
                &params(&[("input", &input_ref)]),
                &mut f.pool,
            )
            .unwrap();
        let panel = f.server.history_panel(f.history).unwrap();
        assert!(panel.contains("notes.txt"));
        assert!(panel.contains("[…]"), "pending output visible: {panel}");
        f.server.drive_jobs(t(0), &mut f.pool, 100).unwrap();
        let panel = f.server.history_panel(f.history).unwrap();
        assert!(panel.contains("word counts"));
        assert!(panel.contains("[ok]"));
    }

    #[test]
    fn quota_blocks_oversized_datasets() {
        let mut f = fixture();
        let big = DataSize::from_gb(300);
        assert!(matches!(
            f.server
                .add_dataset(t(0), f.history, "huge", "bam", big, Content::Opaque),
            Err(GalaxyError::QuotaExceeded { .. })
        ));
    }

    #[test]
    fn http_upload_rejects_over_2gb() {
        let mut f = fixture();
        let network = Network::new();
        let err = f
            .server
            .upload_http(
                t(0),
                f.history,
                "big.bam",
                "bam",
                DataSize::from_gb(3),
                Content::Opaque,
                &network,
                NodeId(0),
            )
            .unwrap_err();
        assert!(matches!(err, GalaxyError::UploadTooLarge(_)));
    }

    #[test]
    fn ftp_upload_accepts_over_2gb() {
        let mut f = fixture();
        let network = Network::new();
        let (id, done) = f
            .server
            .upload_ftp(
                t(0),
                f.history,
                "big.bam",
                "bam",
                DataSize::from_gb(3),
                Content::Opaque,
                &network,
                NodeId(0),
            )
            .expect("FTP imports have no size cap");
        assert!(done > t(0));
        assert_eq!(f.server.dataset(id).unwrap().state, DatasetState::Ok);
    }

    #[test]
    fn globus_tools_without_endpoint_fail_with_typed_error() {
        let mut server = GalaxyServer::new(NodeId(0), None);
        server.register_user("boliu");
        let history = server.create_history(t(0), "boliu", "h").unwrap();
        let input = server
            .add_dataset(
                t(0),
                history,
                "x.bam",
                "bam",
                DataSize::from_mb(10),
                Content::Opaque,
            )
            .unwrap();
        let mut service = TransferService::new();
        let network = Network::new();
        let err = server
            .get_data_via_globus(
                t(0),
                "boliu",
                history,
                &mut service,
                &network,
                ("ci#lab", "/data/x.bam"),
                DataSize::from_mb(10),
                Content::Opaque,
                None,
            )
            .unwrap_err();
        assert!(matches!(err, GalaxyError::NoEndpoint), "{err}");
        let err = server
            .send_data_via_globus(
                t(0),
                "boliu",
                input,
                &mut service,
                &network,
                ("ci#lab", "/x"),
            )
            .unwrap_err();
        assert!(matches!(err, GalaxyError::NoEndpoint), "{err}");
    }

    #[test]
    fn drive_jobs_reports_starvation() {
        let mut f = fixture();
        let mut empty_pool = CondorPool::new();
        let input_ref = format!("{}", f.input.0);
        f.server
            .run_tool(
                t(0),
                "boliu",
                f.history,
                "wordcount",
                &params(&[("input", &input_ref)]),
                &mut empty_pool,
            )
            .unwrap();
        assert_eq!(f.server.drive_jobs(t(0), &mut empty_pool, 10), None);
    }
}

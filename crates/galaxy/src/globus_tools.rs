//! The Globus Transfer toolset as native Galaxy tools (§IV.A, Figure 4).
//!
//! "The Globus Transfer toolset includes three tools: 1) third party
//! transfers between any Globus endpoints ('GO Transfer'), 2) upload to
//! Galaxy from any Globus endpoint ('Get Data via Globus Online') and
//! 3) download from Galaxy to any Globus endpoint ('Send Data via Globus
//! Online'). Each of these tools has been added as a native Galaxy tool
//! with an associated user interface."
//!
//! These definitions give the tools their registry presence and the
//! generated parameter forms of Figure 4. Execution is handled by the
//! server's transfer methods ([`GalaxyServer::get_data_via_globus`] and
//! friends), exactly as real Galaxy special-cases its data-source tools;
//! the behaviors here validate parameters and emit the transfer *request
//! receipt* the history panel shows while the hosted service works.
//!
//! [`GalaxyServer::get_data_via_globus`]: crate::server::GalaxyServer::get_data_via_globus

use std::sync::Arc;

use crate::dataset::Content;
use crate::registry::{RegistryError, ToolRegistry};
use crate::tool::{CostModel, OutputSpec, ParamSpec, ToolDefinition, ToolInvocation, ToolOutput};

/// Cost model for the Galaxy-side part of a transfer job (request
/// validation + submission; the bytes move inside the transfer service).
const SUBMIT_COST: CostModel = CostModel {
    serial_secs: 4.0,
    secs_per_mb: 0.0,
};

fn endpoint_param(name: &str, label: &str) -> ParamSpec {
    ParamSpec::text(name, label, "")
}

fn receipt(inv: &ToolInvocation, direction: &str) -> Vec<ToolOutput> {
    let src = inv.param("source_endpoint").unwrap_or("");
    let dst = inv.param("destination_endpoint").unwrap_or("");
    let path = inv.param("path").unwrap_or("");
    let deadline = inv.param("deadline").unwrap_or("");
    let mut text = format!("Globus Transfer request ({direction})\n");
    if !src.is_empty() {
        text.push_str(&format!("  Source endpoint:      {src}\n"));
    }
    if !dst.is_empty() {
        text.push_str(&format!("  Destination endpoint: {dst}\n"));
    }
    if !path.is_empty() {
        text.push_str(&format!("  Path:                 {path}\n"));
    }
    if !deadline.is_empty() {
        text.push_str(&format!("  Deadline:             {deadline}\n"));
    }
    text.push_str("  Status: submitted to Globus Online\n");
    vec![ToolOutput {
        name: "receipt".to_string(),
        dataset_name: format!("{direction} transfer request"),
        content: Content::Text(text),
        size: None,
    }]
}

/// "GO Transfer" — third-party transfer between any two endpoints
/// (Figure 4's form: source endpoint, destination endpoint, paths,
/// deadline).
pub fn go_transfer_tool() -> ToolDefinition {
    ToolDefinition {
        id: "globus_go_transfer".to_string(),
        name: "GO Transfer".to_string(),
        version: "1.0".to_string(),
        description: "third party transfer between any Globus endpoints".to_string(),
        params: vec![
            endpoint_param("source_endpoint", "Source endpoint"),
            ParamSpec::text("path", "Source path", ""),
            endpoint_param("destination_endpoint", "Destination endpoint"),
            ParamSpec::text("destination_path", "Destination path", ""),
            ParamSpec::text("deadline", "Deadline (optional)", ""),
        ],
        outputs: vec![OutputSpec {
            name: "receipt".to_string(),
            dtype: "txt".to_string(),
        }],
        cost: SUBMIT_COST,
        behavior: Arc::new(|inv: &ToolInvocation| Ok(receipt(inv, "third-party"))),
    }
}

/// "Get Data via Globus Online" — the destination endpoint is the Galaxy
/// server itself.
pub fn get_data_tool() -> ToolDefinition {
    ToolDefinition {
        id: "globus_get_data".to_string(),
        name: "Get Data via Globus Online".to_string(),
        version: "1.0".to_string(),
        description: "upload to Galaxy from any Globus endpoint".to_string(),
        params: vec![
            endpoint_param("source_endpoint", "Endpoint"),
            ParamSpec::text("path", "Path", ""),
            ParamSpec::text("deadline", "Deadline (optional)", ""),
        ],
        outputs: vec![OutputSpec {
            name: "receipt".to_string(),
            dtype: "txt".to_string(),
        }],
        cost: SUBMIT_COST,
        behavior: Arc::new(|inv: &ToolInvocation| Ok(receipt(inv, "inbound"))),
    }
}

/// "Send Data via Globus Online" — the source endpoint is the Galaxy
/// server itself.
pub fn send_data_tool() -> ToolDefinition {
    ToolDefinition {
        id: "globus_send_data".to_string(),
        name: "Send Data via Globus Online".to_string(),
        version: "1.0".to_string(),
        description: "download from Galaxy to any Globus endpoint".to_string(),
        params: vec![
            ParamSpec::dataset("input", "History dataset to send"),
            endpoint_param("destination_endpoint", "Destination endpoint"),
            ParamSpec::text("destination_path", "Destination path", ""),
        ],
        outputs: vec![OutputSpec {
            name: "receipt".to_string(),
            dtype: "txt".to_string(),
        }],
        cost: SUBMIT_COST,
        behavior: Arc::new(|inv: &ToolInvocation| Ok(receipt(inv, "outbound"))),
    }
}

/// Register all three tools under the "Globus Online" section (what the
/// `galaxy-globus.rb` recipe does).
pub fn register_globus_tools(registry: &mut ToolRegistry) -> Result<(), RegistryError> {
    registry.register("Globus Online", go_transfer_tool())?;
    registry.register("Globus Online", get_data_tool())?;
    registry.register("Globus Online", send_data_tool())?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn three_tools_register_under_globus_section() {
        let mut reg = ToolRegistry::new();
        register_globus_tools(&mut reg).unwrap();
        assert_eq!(reg.len(), 3);
        assert_eq!(
            reg.tools_in("Globus Online"),
            vec!["globus_go_transfer", "globus_get_data", "globus_send_data"]
        );
    }

    #[test]
    fn go_transfer_form_matches_figure4() {
        // Figure 4 shows: Source endpoint, Destination endpoint, paths,
        // and a Deadline field.
        let form = go_transfer_tool().form_model();
        assert!(form.contains("GO Transfer"));
        assert!(form.contains("Source endpoint"));
        assert!(form.contains("Destination endpoint"));
        assert!(form.contains("Deadline"));
    }

    #[test]
    fn receipt_reflects_the_request() {
        let tool = go_transfer_tool();
        let mut params = BTreeMap::new();
        params.insert(
            "source_endpoint".to_string(),
            "galaxy#CVRG-Galaxy".to_string(),
        );
        params.insert(
            "path".to_string(),
            "/home/boliu/fourCelFileSamples.zip".to_string(),
        );
        params.insert(
            "destination_endpoint".to_string(),
            "cvrg#galaxy".to_string(),
        );
        let resolved = tool.resolve_params(&params).unwrap();
        let inv = ToolInvocation {
            params: resolved,
            inputs: BTreeMap::new(),
            input_size: cumulus_net::DataSize::ZERO,
        };
        let out = tool.behavior.run(&inv).unwrap();
        match &out[0].content {
            Content::Text(text) => {
                assert!(text.contains("galaxy#CVRG-Galaxy"));
                assert!(text.contains("fourCelFileSamples.zip"));
                assert!(text.contains("submitted to Globus Online"));
            }
            other => panic!("expected text receipt, got {other:?}"),
        }
    }

    #[test]
    fn send_data_requires_a_dataset() {
        let tool = send_data_tool();
        let err = tool.resolve_params(&BTreeMap::new()).unwrap_err();
        assert!(err.0.contains("input"));
    }
}

//! Invocation routing: the seam between a workflow submission and the
//! site whose Condor pool will run it.
//!
//! The paper's deployment has exactly one site, so Galaxy hands every
//! invocation straight to "the" pool. A federation has a choice to make
//! first — *which* deployment should run this invocation — and that
//! choice wants information Galaxy alone does not have (queue depths,
//! instance pricing, where the input bytes already live). This module
//! defines the request/decision types and the [`InvocationRouter`] trait
//! so the server side stays policy-agnostic: the single-region stack
//! plugs in [`SingleSite`] (behaviour unchanged), and the federation
//! crate implements the trait with its placement policies.

use cumulus_store::InputSpec;

/// One workflow invocation as the router sees it: who asked, what the
/// workflow is called, and which content the run will stage in.
#[derive(Debug, Clone)]
pub struct InvocationRequest {
    /// Stable invocation id (unique within an episode; used for
    /// deterministic tie-breaking and telemetry correlation).
    pub id: u64,
    /// The submitting user (multi-tenant streams route per-user).
    pub user: String,
    /// The workflow's display name.
    pub workflow: String,
    /// The declared inputs the invocation will stage before running.
    pub inputs: Vec<InputSpec>,
}

/// What a router may inspect about one candidate site at decision time.
/// Snapshots are assembled by the caller (the federation control plane)
/// in a fixed site order, so a deterministic router sees a deterministic
/// view.
#[derive(Debug, Clone)]
pub struct SiteSnapshot {
    /// The site's stable name.
    pub name: String,
    /// Jobs queued (idle, not yet matched) at the site's pool.
    pub queue_depth: usize,
    /// On-demand dollars per worker-hour at this site.
    pub usd_per_worker_hour: f64,
    /// Of the request's input bytes, how many are already resident at
    /// this site (object store or worker caches) — the data-gravity
    /// signal.
    pub resident_input_bytes: u64,
    /// Projected WAN dollars to materialize the request's *missing*
    /// inputs at this site (0 when everything is resident; inputs held
    /// by no site are excluded — they ingest over GridFTP at the same
    /// price everywhere).
    pub wan_pull_usd: f64,
}

/// Picks a site for each invocation. Implementations must be
/// deterministic: the same request/snapshot sequence must yield the same
/// decisions regardless of wall clock or thread count.
pub trait InvocationRouter {
    /// Choose a site index into `sites` (non-empty) for `request`.
    fn route(&mut self, request: &InvocationRequest, sites: &[SiteSnapshot]) -> usize;

    /// The router's display name (report tables key on it).
    fn name(&self) -> &str;
}

/// The degenerate router of a single-region deployment: everything goes
/// to site 0. Plugging this into the federated control plane reproduces
/// the pre-federation behaviour exactly.
#[derive(Debug, Clone, Copy, Default)]
pub struct SingleSite;

impl InvocationRouter for SingleSite {
    fn route(&mut self, _request: &InvocationRequest, sites: &[SiteSnapshot]) -> usize {
        assert!(!sites.is_empty(), "cannot route with no sites");
        0
    }

    fn name(&self) -> &str {
        "single-site"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulus_store::{ContentId, DataSize};

    fn snap(name: &str) -> SiteSnapshot {
        SiteSnapshot {
            name: name.to_string(),
            queue_depth: 0,
            usd_per_worker_hour: 0.04,
            resident_input_bytes: 0,
            wan_pull_usd: 0.0,
        }
    }

    #[test]
    fn single_site_always_routes_to_site_zero() {
        let mut router = SingleSite;
        let request = InvocationRequest {
            id: 1,
            user: "alice".to_string(),
            workflow: "snp-calling".to_string(),
            inputs: vec![InputSpec {
                cid: ContentId(7),
                size: DataSize::from_mb(200),
            }],
        };
        let sites = [snap("us-east"), snap("us-west")];
        for _ in 0..3 {
            assert_eq!(router.route(&request, &sites), 0);
        }
        assert_eq!(router.name(), "single-site");
    }

    #[test]
    #[should_panic(expected = "no sites")]
    fn routing_with_no_sites_panics() {
        SingleSite.route(
            &InvocationRequest {
                id: 0,
                user: String::new(),
                workflow: String::new(),
                inputs: Vec::new(),
            },
            &[],
        );
    }
}

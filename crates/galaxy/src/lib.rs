//! `cumulus-galaxy` — a Galaxy-like scientific workflow platform.
//!
//! Reproduces the Galaxy features the paper relies on (§II, §IV):
//!
//! * [`dataset`] — datasets with **real content** (tables, matrices, SVG
//!   plots, archives), so tool outputs are verifiable artifacts;
//! * [`tool`] — declarative tool definitions: typed parameters (from which
//!   the web form model is generated), outputs, a calibrated cost model,
//!   and the real Rust behavior behind each tool;
//! * [`registry`] — the tool panel;
//! * [`history`] / [`user`] — per-user workspaces with quotas;
//! * [`job`] + [`server`] — the application server: tool dispatch to a
//!   Condor pool, pending-output lifecycle, real execution on completion,
//!   and the three Globus Transfer tools plus FTP/HTTP uploads;
//! * [`workflow`] — DAG workflows scheduled through the pool;
//! * [`checkpoint`] — restartable run snapshots plus resume through the
//!   data plane's recovery ladder (local cache → peer → object store);
//! * [`routing`] — the invocation-routing seam: which site's pool runs
//!   a submission (single-region deployments use [`SingleSite`]; the
//!   federation crate plugs in its placement policies);
//! * [`provenance`] — complete input/parameter/order capture per output;
//! * [`sharing`] — histories/datasets/workflows shared via links, and
//!   Pages embedding analysis artifacts.

#![warn(missing_docs)]

pub mod checkpoint;
pub mod dataset;
pub mod globus_tools;
pub mod history;
pub mod job;
pub mod provenance;
pub mod registry;
pub mod routing;
pub mod server;
pub mod sharing;
pub mod tool;
pub mod user;
pub mod workflow;

pub use checkpoint::{
    resume_workflow, OutputRef, RecoveryDecision, RecoveryPlan, ResumeReport, StepCheckpoint,
    WorkflowCheckpoint,
};
pub use dataset::{Content, Dataset, DatasetId, DatasetState};
pub use globus_tools::{get_data_tool, go_transfer_tool, register_globus_tools, send_data_tool};
pub use history::{History, HistoryId};
pub use job::{GalaxyJob, GalaxyJobId, GalaxyJobState};
pub use provenance::{CyclicProvenance, ProvenanceRecord, ProvenanceStore};
pub use registry::{RegistryError, ToolRegistry};
pub use routing::{InvocationRequest, InvocationRouter, SingleSite, SiteSnapshot};
pub use server::{GalaxyError, GalaxyServer};
pub use sharing::{Page, ShareItem, SharingModel, Visibility};
pub use tool::{
    CostModel, OutputSpec, ParamKind, ParamSpec, ToolBehavior, ToolDefinition, ToolError,
    ToolInvocation, ToolOutput,
};
pub use user::GalaxyUser;
pub use workflow::{run_workflow, Binding, Workflow, WorkflowRunResult, WorkflowStep};

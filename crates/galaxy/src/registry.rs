//! The tool registry (Galaxy's left-hand tool panel).

use std::collections::BTreeMap;

use crate::tool::ToolDefinition;

/// The panel: sections of tools, each tool registered once by id.
#[derive(Debug, Default)]
pub struct ToolRegistry {
    sections: Vec<(String, Vec<String>)>,
    tools: BTreeMap<String, ToolDefinition>,
}

/// Registry errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// A tool with this id already exists.
    Duplicate(String),
    /// No such tool.
    NotFound(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Duplicate(id) => write!(f, "tool {id:?} already registered"),
            RegistryError::NotFound(id) => write!(f, "no such tool: {id:?}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl ToolRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ToolRegistry::default()
    }

    /// Register a tool under a section (created on demand).
    pub fn register(&mut self, section: &str, tool: ToolDefinition) -> Result<(), RegistryError> {
        if self.tools.contains_key(&tool.id) {
            return Err(RegistryError::Duplicate(tool.id.clone()));
        }
        let section_entry = match self.sections.iter_mut().find(|(n, _)| n == section) {
            Some(e) => e,
            None => {
                self.sections.push((section.to_string(), Vec::new()));
                self.sections.last_mut().expect("just pushed")
            }
        };
        section_entry.1.push(tool.id.clone());
        self.tools.insert(tool.id.clone(), tool);
        Ok(())
    }

    /// Look up a tool by id.
    pub fn tool(&self, id: &str) -> Result<&ToolDefinition, RegistryError> {
        self.tools
            .get(id)
            .ok_or_else(|| RegistryError::NotFound(id.to_string()))
    }

    /// All section names, in registration order.
    pub fn sections(&self) -> Vec<&str> {
        self.sections.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// Tool ids within a section.
    pub fn tools_in(&self, section: &str) -> Vec<&str> {
        self.sections
            .iter()
            .find(|(n, _)| n == section)
            .map(|(_, ids)| ids.iter().map(String::as_str).collect())
            .unwrap_or_default()
    }

    /// Total registered tools.
    pub fn len(&self) -> usize {
        self.tools.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.tools.is_empty()
    }

    /// Render the tool panel.
    pub fn panel(&self) -> String {
        let mut out = String::new();
        for (section, ids) in &self.sections {
            out.push_str(&format!("{section}\n"));
            for id in ids {
                let t = &self.tools[id];
                out.push_str(&format!("  {} — {}\n", t.name, t.description));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tool::{CostModel, ToolInvocation, ToolOutput};
    use std::sync::Arc;

    fn dummy(id: &str) -> ToolDefinition {
        ToolDefinition {
            id: id.to_string(),
            name: id.to_uppercase(),
            version: "1.0".to_string(),
            description: format!("{id} tool"),
            params: vec![],
            outputs: vec![],
            cost: CostModel::LIGHT,
            behavior: Arc::new(|_: &ToolInvocation| Ok(Vec::<ToolOutput>::new())),
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = ToolRegistry::new();
        reg.register("Get Data", dummy("upload_http")).unwrap();
        reg.register("Get Data", dummy("upload_ftp")).unwrap();
        reg.register("CRData", dummy("heatmap")).unwrap();
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.sections(), vec!["Get Data", "CRData"]);
        assert_eq!(reg.tools_in("Get Data"), vec!["upload_http", "upload_ftp"]);
        assert!(reg.tool("heatmap").is_ok());
        assert!(matches!(
            reg.tool("ghost").unwrap_err(),
            RegistryError::NotFound(_)
        ));
    }

    #[test]
    fn duplicate_ids_rejected_across_sections() {
        let mut reg = ToolRegistry::new();
        reg.register("A", dummy("x")).unwrap();
        assert!(matches!(
            reg.register("B", dummy("x")).unwrap_err(),
            RegistryError::Duplicate(_)
        ));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn panel_lists_tools() {
        let mut reg = ToolRegistry::new();
        reg.register("Globus Online", dummy("go_transfer")).unwrap();
        let panel = reg.panel();
        assert!(panel.contains("Globus Online"));
        assert!(panel.contains("GO_TRANSFER"));
    }

    #[test]
    fn unknown_section_is_empty() {
        let reg = ToolRegistry::new();
        assert!(reg.tools_in("nope").is_empty());
        assert!(reg.is_empty());
    }
}

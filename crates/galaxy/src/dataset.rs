//! Datasets — the values that flow through Galaxy analyses.
//!
//! Unlike the simulation-only parts of cumulus, datasets carry **real
//! content**: a tool run in this Galaxy produces an actual table / text /
//! image artifact computed by real Rust code, while the *time* the run
//! takes is simulated. This split lets the test suite verify statistical
//! outputs (does the differential-expression tool recover the planted
//! genes?) independently of the performance model.

use cumulus_net::DataSize;
use cumulus_simkit::time::SimTime;
use cumulus_store::{ContentHasher, ContentId};

/// Identifier for a dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DatasetId(pub u64);

impl std::fmt::Display for DatasetId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dataset-{}", self.0)
    }
}

/// Dataset lifecycle as shown in the history panel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetState {
    /// Being produced (upload or tool run in flight).
    Pending,
    /// Ready for use.
    Ok,
    /// The producing job failed.
    Error,
    /// Removed by the user.
    Deleted,
}

/// The actual content of a dataset.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// Free text.
    Text(String),
    /// A table: column names plus rows.
    Table {
        /// Column headers.
        columns: Vec<String>,
        /// Rows of cells.
        rows: Vec<Vec<String>>,
    },
    /// A plot, stored as SVG text.
    Svg(String),
    /// An archive of named members with sizes (CEL bundles, BAM sets).
    Archive {
        /// `(member name, bytes)` pairs.
        members: Vec<(String, u64)>,
    },
    /// A numeric matrix with row/column labels (expression data).
    Matrix {
        /// Row labels (probes/genes).
        row_names: Vec<String>,
        /// Column labels (samples).
        col_names: Vec<String>,
        /// Row-major values.
        values: Vec<f64>,
    },
    /// Content that exists remotely / was only transferred, not parsed.
    Opaque,
}

impl Content {
    /// Approximate serialized size of the content, used when the dataset's
    /// declared size is not specified explicitly.
    pub fn natural_size(&self) -> DataSize {
        let bytes = match self {
            Content::Text(s) => s.len() as u64,
            Content::Svg(s) => s.len() as u64,
            Content::Table { columns, rows } => {
                let header: usize = columns.iter().map(|c| c.len() + 1).sum();
                let body: usize = rows
                    .iter()
                    .map(|r| r.iter().map(|c| c.len() + 1).sum::<usize>())
                    .sum();
                (header + body) as u64
            }
            Content::Archive { members } => members.iter().map(|(_, b)| *b).sum(),
            Content::Matrix { values, .. } => (values.len() * 8) as u64,
            Content::Opaque => 0,
        };
        DataSize::from_bytes(bytes)
    }

    /// Table rows, if tabular.
    pub fn as_table(&self) -> Option<(&[String], &[Vec<String>])> {
        match self {
            Content::Table { columns, rows } => Some((columns, rows)),
            _ => None,
        }
    }

    /// Matrix view, if numeric.
    pub fn as_matrix(&self) -> Option<(&[String], &[String], &[f64])> {
        match self {
            Content::Matrix {
                row_names,
                col_names,
                values,
            } => Some((row_names, col_names, values)),
            _ => None,
        }
    }

    /// The content-addressed identity of this content: a digest over a
    /// canonical serialization (discriminant byte, length-prefixed
    /// fields, floats by bit pattern). Equal contents share an id no
    /// matter which history or upload produced them — the key the data
    /// plane's caches and object store deduplicate on.
    ///
    /// [`Content::Opaque`] carries no bytes, so all opaque contents share
    /// one id; callers with only-transferred data should fold in an
    /// external discriminator (see [`Dataset::content_id`]).
    pub fn content_id(&self) -> ContentId {
        let mut h = ContentHasher::new();
        match self {
            Content::Text(s) => {
                h.write(&[0]);
                h.write_str(s);
            }
            Content::Table { columns, rows } => {
                h.write(&[1]);
                h.write_u64(columns.len() as u64);
                for c in columns {
                    h.write_str(c);
                }
                h.write_u64(rows.len() as u64);
                for row in rows {
                    h.write_u64(row.len() as u64);
                    for cell in row {
                        h.write_str(cell);
                    }
                }
            }
            Content::Svg(s) => {
                h.write(&[2]);
                h.write_str(s);
            }
            Content::Archive { members } => {
                h.write(&[3]);
                h.write_u64(members.len() as u64);
                for (name, bytes) in members {
                    h.write_str(name);
                    h.write_u64(*bytes);
                }
            }
            Content::Matrix {
                row_names,
                col_names,
                values,
            } => {
                h.write(&[4]);
                h.write_u64(row_names.len() as u64);
                for r in row_names {
                    h.write_str(r);
                }
                h.write_u64(col_names.len() as u64);
                for c in col_names {
                    h.write_str(c);
                }
                h.write_u64(values.len() as u64);
                for v in values {
                    h.write_f64(*v);
                }
            }
            Content::Opaque => {
                h.write(&[5]);
            }
        }
        h.finish()
    }
}

/// A dataset in a history.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Its id.
    pub id: DatasetId,
    /// Position within its history (Galaxy's `hid`).
    pub hid: u32,
    /// Display name, e.g. `fourCelFileSamples.zip`.
    pub name: String,
    /// Datatype extension (`zip`, `tabular`, `txt`, `svg`, `cel`, `bam`).
    pub dtype: String,
    /// Declared size.
    pub size: DataSize,
    /// Lifecycle state.
    pub state: DatasetState,
    /// The real content.
    pub content: Content,
    /// When it was created.
    pub created_at: SimTime,
    /// The job that produced it (None for uploads).
    pub produced_by: Option<crate::job::GalaxyJobId>,
}

impl Dataset {
    /// The dataset's content id. Parsed contents hash their bytes via
    /// [`Content::content_id`]; [`Content::Opaque`] contents (transferred,
    /// never parsed) fold in the declared size and name so two different
    /// uploads don't alias in the data plane's caches.
    pub fn content_id(&self) -> ContentId {
        match &self.content {
            Content::Opaque => {
                let mut h = ContentHasher::new();
                h.write(&[5]);
                h.write_u64(self.size.as_bytes());
                h.write_str(&self.name);
                h.finish()
            }
            c => c.content_id(),
        }
    }

    /// One-line history-panel entry.
    pub fn history_line(&self) -> String {
        let state = match self.state {
            DatasetState::Pending => "…",
            DatasetState::Ok => "ok",
            DatasetState::Error => "error",
            DatasetState::Deleted => "deleted",
        };
        format!(
            "{}: {} ({}, {}) [{}]",
            self.hid, self.name, self.dtype, self.size, state
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_ids_key_on_content_not_provenance() {
        let a = Content::Text("hello".to_string());
        let b = Content::Text("hello".to_string());
        assert_eq!(a.content_id(), b.content_id());
        assert_ne!(a.content_id(), Content::Text("world".into()).content_id());
        // Same serialized bytes under different variants must not alias.
        assert_ne!(
            Content::Text("x".into()).content_id(),
            Content::Svg("x".into()).content_id()
        );
        let m1 = Content::Matrix {
            row_names: vec!["g1".into()],
            col_names: vec!["s1".into()],
            values: vec![1.5],
        };
        let m2 = Content::Matrix {
            row_names: vec!["g1".into()],
            col_names: vec!["s1".into()],
            values: vec![1.5000001],
        };
        assert_ne!(m1.content_id(), m2.content_id());
    }

    #[test]
    fn opaque_datasets_fold_in_size_and_name() {
        let mk = |name: &str, bytes: u64| Dataset {
            id: DatasetId(1),
            hid: 1,
            name: name.to_string(),
            dtype: "zip".to_string(),
            size: DataSize::from_bytes(bytes),
            state: DatasetState::Ok,
            content: Content::Opaque,
            created_at: SimTime::ZERO,
            produced_by: None,
        };
        assert_eq!(mk("a.zip", 10).content_id(), mk("a.zip", 10).content_id());
        assert_ne!(mk("a.zip", 10).content_id(), mk("a.zip", 11).content_id());
        assert_ne!(mk("a.zip", 10).content_id(), mk("b.zip", 10).content_id());
    }

    #[test]
    fn natural_sizes() {
        assert_eq!(
            Content::Text("hello".to_string()).natural_size(),
            DataSize::from_bytes(5)
        );
        let archive = Content::Archive {
            members: vec![("a.cel".to_string(), 100), ("b.cel".to_string(), 200)],
        };
        assert_eq!(archive.natural_size(), DataSize::from_bytes(300));
        let m = Content::Matrix {
            row_names: vec!["g1".to_string()],
            col_names: vec!["s1".to_string(), "s2".to_string()],
            values: vec![1.0, 2.0],
        };
        assert_eq!(m.natural_size(), DataSize::from_bytes(16));
        assert_eq!(Content::Opaque.natural_size(), DataSize::ZERO);
    }

    #[test]
    fn table_accessor() {
        let t = Content::Table {
            columns: vec!["probe".to_string(), "p".to_string()],
            rows: vec![vec!["g1".to_string(), "0.01".to_string()]],
        };
        let (cols, rows) = t.as_table().unwrap();
        assert_eq!(cols.len(), 2);
        assert_eq!(rows[0][1], "0.01");
        assert!(Content::Opaque.as_table().is_none());
    }

    #[test]
    fn history_line_format() {
        let d = Dataset {
            id: DatasetId(1),
            hid: 3,
            name: "fourCelFileSamples.zip".to_string(),
            dtype: "zip".to_string(),
            size: DataSize::from_mb_f64(10.7),
            state: DatasetState::Ok,
            content: Content::Opaque,
            created_at: SimTime::ZERO,
            produced_by: None,
        };
        assert_eq!(
            d.history_line(),
            "3: fourCelFileSamples.zip (zip, 10.7MB) [ok]"
        );
    }
}

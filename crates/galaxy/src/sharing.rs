//! Sharing: histories, workflows, and Pages.
//!
//! "Galaxy's sharing model, public repositories, and display framework
//! provide users with the means to share datasets, histories, and
//! workflows via web links, either publicly or privately" (§II.2). A Page
//! is "a mix of text, graphs and embedded Galaxy items from analyses".

use std::collections::{BTreeMap, BTreeSet};

use crate::dataset::DatasetId;
use crate::history::HistoryId;

/// What can be embedded or shared.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ShareItem {
    /// A dataset.
    Dataset(DatasetId),
    /// A whole history.
    History(HistoryId),
    /// A saved workflow, by id.
    Workflow(u64),
}

/// Visibility of a shared item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Visibility {
    /// Only the owner.
    Private,
    /// Anyone with the link.
    LinkOnly,
    /// Listed publicly.
    Public,
    /// Specific users.
    SharedWith(BTreeSet<String>),
}

/// A Page: rich text with embedded items.
#[derive(Debug, Clone)]
pub struct Page {
    /// Its slug (link path).
    pub slug: String,
    /// Title.
    pub title: String,
    /// Owner.
    pub owner: String,
    /// Markdown-ish body.
    pub body: String,
    /// Embedded items in order.
    pub embeds: Vec<ShareItem>,
    /// Who can see it.
    pub visibility: Visibility,
}

/// The sharing registry.
#[derive(Debug, Clone, Default)]
pub struct SharingModel {
    item_visibility: BTreeMap<ShareItem, Visibility>,
    item_owner: BTreeMap<ShareItem, String>,
    pages: BTreeMap<String, Page>,
}

impl SharingModel {
    /// An empty model.
    pub fn new() -> Self {
        SharingModel::default()
    }

    /// Declare ownership of an item (private by default).
    pub fn own(&mut self, item: ShareItem, owner: &str) {
        self.item_owner.insert(item, owner.to_string());
        self.item_visibility
            .entry(item)
            .or_insert(Visibility::Private);
    }

    /// Change visibility. Only the owner may do this.
    pub fn set_visibility(
        &mut self,
        item: ShareItem,
        actor: &str,
        visibility: Visibility,
    ) -> Result<(), String> {
        match self.item_owner.get(&item) {
            None => Err(format!("{item:?} is not registered")),
            Some(owner) if owner != actor => Err(format!("{actor} does not own {item:?}")),
            Some(_) => {
                self.item_visibility.insert(item, visibility);
                Ok(())
            }
        }
    }

    /// Can `viewer` see `item`?
    pub fn can_view(&self, item: ShareItem, viewer: &str, has_link: bool) -> bool {
        let owner = self.item_owner.get(&item);
        if owner.map(String::as_str) == Some(viewer) {
            return true;
        }
        match self.item_visibility.get(&item) {
            None | Some(Visibility::Private) => false,
            Some(Visibility::LinkOnly) => has_link,
            Some(Visibility::Public) => true,
            Some(Visibility::SharedWith(users)) => users.contains(viewer),
        }
    }

    /// Publish a page. Every embed must be viewable by the page's
    /// audience, i.e. at least link-visible when the page is public.
    pub fn publish_page(&mut self, page: Page) -> Result<String, String> {
        if self.pages.contains_key(&page.slug) {
            return Err(format!("page slug {:?} taken", page.slug));
        }
        if page.visibility == Visibility::Public {
            for item in &page.embeds {
                let vis = self.item_visibility.get(item);
                if matches!(vis, None | Some(Visibility::Private)) {
                    return Err(format!("cannot publish page: embedded {item:?} is private"));
                }
            }
        }
        let link = format!("/u/{}/p/{}", page.owner, page.slug);
        self.pages.insert(page.slug.clone(), page);
        Ok(link)
    }

    /// Fetch a page if the viewer may see it.
    pub fn view_page(&self, slug: &str, viewer: &str, has_link: bool) -> Option<&Page> {
        let page = self.pages.get(slug)?;
        let visible = page.owner == viewer
            || match &page.visibility {
                Visibility::Private => false,
                Visibility::LinkOnly => has_link,
                Visibility::Public => true,
                Visibility::SharedWith(users) => users.contains(viewer),
            };
        visible.then_some(page)
    }

    /// All public page slugs.
    pub fn public_pages(&self) -> Vec<&str> {
        self.pages
            .values()
            .filter(|p| p.visibility == Visibility::Public)
            .map(|p| p.slug.as_str())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ds(n: u64) -> ShareItem {
        ShareItem::Dataset(DatasetId(n))
    }

    #[test]
    fn owner_always_sees_own_items() {
        let mut s = SharingModel::new();
        s.own(ds(1), "alice");
        assert!(s.can_view(ds(1), "alice", false));
        assert!(!s.can_view(ds(1), "bob", false));
        assert!(!s.can_view(ds(1), "bob", true), "private beats link");
    }

    #[test]
    fn link_sharing() {
        let mut s = SharingModel::new();
        s.own(ds(1), "alice");
        s.set_visibility(ds(1), "alice", Visibility::LinkOnly)
            .unwrap();
        assert!(s.can_view(ds(1), "bob", true));
        assert!(!s.can_view(ds(1), "bob", false));
    }

    #[test]
    fn only_owner_changes_visibility() {
        let mut s = SharingModel::new();
        s.own(ds(1), "alice");
        assert!(s
            .set_visibility(ds(1), "mallory", Visibility::Public)
            .is_err());
        assert!(s
            .set_visibility(ds(9), "alice", Visibility::Public)
            .is_err());
    }

    #[test]
    fn shared_with_specific_users() {
        let mut s = SharingModel::new();
        s.own(ds(1), "alice");
        let mut who = BTreeSet::new();
        who.insert("bob".to_string());
        s.set_visibility(ds(1), "alice", Visibility::SharedWith(who))
            .unwrap();
        assert!(s.can_view(ds(1), "bob", false));
        assert!(!s.can_view(ds(1), "carol", false));
    }

    #[test]
    fn public_page_requires_visible_embeds() {
        let mut s = SharingModel::new();
        s.own(ds(1), "alice");
        let page = Page {
            slug: "cvrg-analysis".to_string(),
            title: "CVRG differential expression".to_string(),
            owner: "alice".to_string(),
            body: "see embedded results".to_string(),
            embeds: vec![ds(1)],
            visibility: Visibility::Public,
        };
        assert!(s.publish_page(page.clone()).is_err(), "embed still private");
        s.set_visibility(ds(1), "alice", Visibility::Public)
            .unwrap();
        let link = s.publish_page(page).unwrap();
        assert_eq!(link, "/u/alice/p/cvrg-analysis");
        assert!(s.view_page("cvrg-analysis", "anyone", false).is_some());
        assert_eq!(s.public_pages(), vec!["cvrg-analysis"]);
    }

    #[test]
    fn duplicate_slugs_rejected() {
        let mut s = SharingModel::new();
        let page = Page {
            slug: "x".to_string(),
            title: "t".to_string(),
            owner: "a".to_string(),
            body: String::new(),
            embeds: vec![],
            visibility: Visibility::LinkOnly,
        };
        s.publish_page(page.clone()).unwrap();
        assert!(s.publish_page(page).is_err());
    }

    #[test]
    fn link_only_pages_need_the_link() {
        let mut s = SharingModel::new();
        let page = Page {
            slug: "quiet".to_string(),
            title: "t".to_string(),
            owner: "a".to_string(),
            body: String::new(),
            embeds: vec![],
            visibility: Visibility::LinkOnly,
        };
        s.publish_page(page).unwrap();
        assert!(s.view_page("quiet", "b", false).is_none());
        assert!(s.view_page("quiet", "b", true).is_some());
        assert!(s.view_page("quiet", "a", false).is_some(), "owner");
        assert!(s.public_pages().is_empty());
    }
}

//! Workflow checkpoint/resume: the recovery half of the retry plane.
//!
//! A [`WorkflowCheckpoint`] is a restartable snapshot of a (possibly
//! partial) workflow run, assembled from the provenance store plus the
//! output datasets' content ids. After a disruption, [`resume_workflow`]
//! consults the data plane to decide, step by step, whether the
//! checkpointed outputs are still reachable — local cache, then a peer
//! cache, then the object store — and re-executes only the lost suffix.
//! Recovered outputs are re-staged through the normal staging ladder, so
//! a warm cache resumes for free while a cold one pays the object-store
//! fetch, never the recompute.

use std::collections::BTreeMap;

use cumulus_htc::CondorPool;
use cumulus_net::DataSize;
use cumulus_simkit::time::{SimDuration, SimTime};
use cumulus_store::{ContentId, DataPlane, InputSpec};

use crate::dataset::DatasetId;
use crate::history::HistoryId;
use crate::job::GalaxyJobId;
use crate::server::{GalaxyError, GalaxyServer};
use crate::workflow::{drive_workflow, Binding, ResumedStep, Workflow, WorkflowRunResult};

/// One recovered output: the dataset plus its content address and size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputRef {
    /// The dataset as known to the Galaxy server.
    pub dataset: DatasetId,
    /// Its content id in the data plane.
    pub content: ContentId,
    /// Its size (what re-staging costs when the content is remote).
    pub size: DataSize,
}

/// A completed step inside a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepCheckpoint {
    /// The Galaxy job that produced the outputs.
    pub job: GalaxyJobId,
    /// The step's outputs, content-addressed.
    pub outputs: Vec<OutputRef>,
}

/// A restartable snapshot of a workflow run.
///
/// Only steps whose invocation can be re-identified from the provenance
/// store — same tool, same resolved parameters, all outputs Ok — are
/// recorded; anything else is treated as lost and re-executed on resume.
#[derive(Debug, Clone, Default)]
pub struct WorkflowCheckpoint {
    /// The workflow this snapshot belongs to.
    pub workflow: String,
    /// When the snapshot was assembled.
    pub taken_at: SimTime,
    /// Checkpointed steps by step id.
    pub steps: BTreeMap<String, StepCheckpoint>,
}

/// How a resumed run treats one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryDecision {
    /// The step was skipped: its outputs were recovered through the data
    /// plane at this network cost (zero when the local cache held them).
    Resumed {
        /// Bytes that crossed the network to re-materialize the outputs.
        network_bytes: DataSize,
    },
    /// The step re-executed through the pool.
    Rerun,
}

/// The skip/rerun split for one resume, derived from a checkpoint and the
/// current contents of the data plane.
#[derive(Debug, Clone, Default)]
pub struct RecoveryPlan {
    /// Steps whose checkpointed outputs are reachable, with those outputs.
    pub skip: BTreeMap<String, Vec<OutputRef>>,
    /// Steps that must re-execute, in workflow definition order.
    pub rerun: Vec<String>,
}

/// What [`resume_workflow`] did and what it cost.
#[derive(Debug)]
pub struct ResumeReport {
    /// The completed run (including a fresh checkpoint of it).
    pub result: WorkflowRunResult,
    /// The recovery decision per step id.
    pub decisions: BTreeMap<String, RecoveryDecision>,
    /// Total bytes re-staged over the network for recovered outputs.
    pub restaged_bytes: DataSize,
    /// Wall time spent re-staging before execution resumed.
    pub restage_time: SimDuration,
}

impl WorkflowCheckpoint {
    /// Assemble a checkpoint of `workflow` as run with `inputs`, walking
    /// the steps in definition order and re-identifying each invocation
    /// through [`GalaxyServer::find_completed_invocation`]. Steps whose
    /// dependencies are not checkpointed (or which never completed) are
    /// simply absent — the lost suffix.
    pub fn capture(
        now: SimTime,
        server: &GalaxyServer,
        workflow: &Workflow,
        inputs: &BTreeMap<String, DatasetId>,
    ) -> Result<Self, GalaxyError> {
        let mut steps: BTreeMap<String, StepCheckpoint> = BTreeMap::new();
        let mut outputs_of: BTreeMap<String, Vec<DatasetId>> = BTreeMap::new();
        for step in &workflow.steps {
            // Resolve the step's parameters exactly as submission would:
            // dataset bindings become bare dataset-id strings.
            let mut raw = step.params.clone();
            let mut resolvable = true;
            for (pname, binding) in &step.bindings {
                let ds = match binding {
                    Binding::Input(name) => inputs.get(name).copied(),
                    Binding::StepOutput(src, idx) => {
                        outputs_of.get(src).and_then(|outs| outs.get(*idx).copied())
                    }
                };
                match ds {
                    Some(d) => {
                        raw.insert(pname.clone(), d.0.to_string());
                    }
                    None => {
                        resolvable = false;
                        break;
                    }
                }
            }
            if !resolvable {
                continue;
            }
            let Ok(tool) = server.registry.tool(&step.tool_id) else {
                continue;
            };
            let Ok(resolved) = tool.resolve_params(&raw) else {
                continue;
            };
            let Some(job) = server.find_completed_invocation(&step.tool_id, &resolved) else {
                continue;
            };
            let mut refs = Vec::new();
            for &out in &job.outputs {
                let d = server.dataset(out)?;
                refs.push(OutputRef {
                    dataset: out,
                    content: d.content_id(),
                    size: d.size,
                });
            }
            outputs_of.insert(step.id.clone(), job.outputs.clone());
            steps.insert(
                step.id.clone(),
                StepCheckpoint {
                    job: job.id,
                    outputs: refs,
                },
            );
        }
        Ok(WorkflowCheckpoint {
            workflow: workflow.name.clone(),
            taken_at: now,
            steps,
        })
    }

    /// Split `workflow` into skippable and rerun steps against the current
    /// data plane: a step is skippable iff it is checkpointed and every
    /// output is reachable through the resume ladder (some worker cache
    /// holds it, or the object store does).
    pub fn recovery_plan(&self, workflow: &Workflow, plane: &DataPlane) -> RecoveryPlan {
        let mut plan = RecoveryPlan::default();
        for step in &workflow.steps {
            let reachable = self.steps.get(&step.id).is_some_and(|cp| {
                cp.outputs.iter().all(|o| {
                    plane.fleet.peer_with(o.content, "").is_some()
                        || plane.object.contains(o.content)
                })
            });
            if reachable {
                plan.skip
                    .insert(step.id.clone(), self.steps[&step.id].outputs.clone());
            } else {
                plan.rerun.push(step.id.clone());
            }
        }
        plan
    }

    /// Publish every checkpointed output into the data plane as held by
    /// `worker` — what a completing step does with its artifacts so that a
    /// later resume can find them.
    pub fn publish(&self, plane: &mut DataPlane, worker: &str) {
        plane.fleet.ensure_worker(worker);
        for cp in self.steps.values() {
            for o in &cp.outputs {
                plane.fleet.insert(worker, o.content, o.size);
                plane.object.put(o.content, o.size);
            }
        }
    }
}

/// Resume a workflow from `checkpoint` after a disruption.
///
/// Each skippable step's outputs are re-staged onto `worker` through the
/// data plane's normal ladder (local cache → peer cache → object store),
/// which both charges the honest recovery cost and warms the cache; the
/// remaining steps re-execute through the pool starting at `now` plus the
/// total re-staging time.
#[allow(clippy::too_many_arguments)]
pub fn resume_workflow(
    server: &mut GalaxyServer,
    pool: &mut CondorPool,
    plane: &mut DataPlane,
    worker: &str,
    now: SimTime,
    username: &str,
    history: HistoryId,
    workflow: &Workflow,
    inputs: &BTreeMap<String, DatasetId>,
    checkpoint: &WorkflowCheckpoint,
) -> Result<ResumeReport, GalaxyError> {
    let plan = checkpoint.recovery_plan(workflow, plane);
    let mut decisions = BTreeMap::new();
    let mut resumed: BTreeMap<String, ResumedStep> = BTreeMap::new();
    let mut restaged_bytes = DataSize::ZERO;
    let mut restage_time = SimDuration::ZERO;
    for (step_id, outputs) in &plan.skip {
        let specs: Vec<InputSpec> = outputs
            .iter()
            .map(|o| InputSpec {
                cid: o.content,
                size: o.size,
            })
            .collect();
        let staged = plane.stage_job(worker, &specs, 1);
        restaged_bytes += staged.network_bytes();
        restage_time += staged.total;
        decisions.insert(
            step_id.clone(),
            RecoveryDecision::Resumed {
                network_bytes: staged.network_bytes(),
            },
        );
        resumed.insert(
            step_id.clone(),
            ResumedStep {
                outputs: outputs.iter().map(|o| o.dataset).collect(),
                restage: staged.total,
            },
        );
    }
    for step_id in &plan.rerun {
        decisions.insert(step_id.clone(), RecoveryDecision::Rerun);
    }
    let result = drive_workflow(
        server,
        pool,
        now + restage_time,
        username,
        history,
        workflow,
        inputs,
        &resumed,
    )?;
    Ok(ResumeReport {
        result,
        decisions,
        restaged_bytes,
        restage_time,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Content;
    use crate::tool::{
        CostModel, OutputSpec, ParamSpec, ToolDefinition, ToolInvocation, ToolOutput,
    };
    use crate::workflow::{run_workflow, WorkflowStep};
    use cumulus_htc::Machine;
    use cumulus_net::NodeId;
    use cumulus_store::{EvictionPolicy, ObjectStoreConfig, SharingBackend};
    use std::sync::Arc;

    fn text_tool(id: &str, f: impl Fn(&str) -> String + Send + Sync + 'static) -> ToolDefinition {
        ToolDefinition {
            id: id.to_string(),
            name: id.to_string(),
            version: "1.0".to_string(),
            description: format!("{id} tool"),
            params: vec![ParamSpec::dataset("input", "Input")],
            outputs: vec![OutputSpec {
                name: "out".to_string(),
                dtype: "txt".to_string(),
            }],
            cost: CostModel::LIGHT,
            behavior: Arc::new(move |inv: &ToolInvocation| {
                let text = match inv.input("input") {
                    Some(Content::Text(s)) => s.clone(),
                    _ => return Err(crate::tool::ToolError("need text".to_string())),
                };
                Ok(vec![ToolOutput {
                    name: "out".to_string(),
                    dataset_name: "step output".to_string(),
                    content: Content::Text(f(&text)),
                    size: None,
                }])
            }),
        }
    }

    struct Fix {
        server: GalaxyServer,
        pool: CondorPool,
        history: HistoryId,
        input: DatasetId,
    }

    fn fix() -> Fix {
        let mut server = GalaxyServer::new(NodeId(0), None);
        server
            .registry
            .register("Text", text_tool("upper", |s| s.to_uppercase()))
            .unwrap();
        server
            .registry
            .register("Text", text_tool("rev", |s| s.chars().rev().collect()))
            .unwrap();
        server
            .registry
            .register("Text", text_tool("bang", |s| format!("{s}!")))
            .unwrap();
        server.register_user("boliu");
        let history = server.create_history(SimTime::ZERO, "boliu", "ck").unwrap();
        let input = server
            .add_dataset(
                SimTime::ZERO,
                history,
                "in.txt",
                "txt",
                DataSize::from_kb(1),
                Content::Text("abc".to_string()),
            )
            .unwrap();
        let mut pool = CondorPool::new();
        pool.add_machine(Machine::new("w1", 1.0, 1700, 1)).unwrap();
        Fix {
            server,
            pool,
            history,
            input,
        }
    }

    /// upper → rev → bang, a pure chain.
    fn chain() -> Workflow {
        Workflow::new("chain", &["data"])
            .step(WorkflowStep::new("up", "upper").input("input", "data"))
            .step(WorkflowStep::new("rv", "rev").from_step("input", "up", 0))
            .step(WorkflowStep::new("bg", "bang").from_step("input", "rv", 0))
    }

    fn plane() -> DataPlane {
        DataPlane::new(
            SharingBackend::CachedObjectStore,
            400.0,
            ObjectStoreConfig::default(),
            DataSize::from_gb(1),
            EvictionPolicy::Lru,
        )
    }

    fn inputs(f: &Fix) -> BTreeMap<String, DatasetId> {
        let mut m = BTreeMap::new();
        m.insert("data".to_string(), f.input);
        m
    }

    #[test]
    fn a_completed_run_checkpoints_every_step() {
        let mut f = fix();
        let ins = inputs(&f);
        let result = run_workflow(
            &mut f.server,
            &mut f.pool,
            SimTime::ZERO,
            "boliu",
            f.history,
            &chain(),
            &ins,
        )
        .unwrap();
        let ck = &result.checkpoint;
        assert_eq!(ck.workflow, "chain");
        assert_eq!(ck.steps.len(), 3);
        for (step, jobs) in &result.step_jobs {
            assert_eq!(ck.steps[step].job, *jobs);
        }
        // Output refs carry the real dataset content ids.
        let up_out = result.step_outputs["up"][0];
        let expected = f.server.dataset(up_out).unwrap().content_id();
        assert_eq!(ck.steps["up"].outputs[0].content, expected);
    }

    #[test]
    fn an_unpublished_checkpoint_reruns_everything() {
        let mut f = fix();
        let ins = inputs(&f);
        let result = run_workflow(
            &mut f.server,
            &mut f.pool,
            SimTime::ZERO,
            "boliu",
            f.history,
            &chain(),
            &ins,
        )
        .unwrap();
        // Nothing was published into the plane: no output is reachable.
        let plan = result.checkpoint.recovery_plan(&chain(), &plane());
        assert!(plan.skip.is_empty());
        assert_eq!(plan.rerun, vec!["up", "rv", "bg"]);
    }

    #[test]
    fn a_warm_cache_resumes_with_zero_network_bytes() {
        let mut f = fix();
        let ins = inputs(&f);
        let wf = chain();
        let result = run_workflow(
            &mut f.server,
            &mut f.pool,
            SimTime::ZERO,
            "boliu",
            f.history,
            &wf,
            &ins,
        )
        .unwrap();
        let mut pl = plane();
        result.checkpoint.publish(&mut pl, "w1");

        // Resume onto the same worker: every step skips, and the re-stage
        // hits the local cache — zero bytes cross the network.
        let report = resume_workflow(
            &mut f.server,
            &mut f.pool,
            &mut pl,
            "w1",
            result.finished_at,
            "boliu",
            f.history,
            &wf,
            &ins,
            &result.checkpoint,
        )
        .unwrap();
        assert_eq!(report.restaged_bytes, DataSize::ZERO);
        assert!(report.result.step_jobs.is_empty(), "no step re-executed");
        assert_eq!(report.result.step_outputs.len(), 3);
        assert!(report.decisions.values().all(
            |d| matches!(d, RecoveryDecision::Resumed { network_bytes } if network_bytes.is_zero())
        ));
    }

    #[test]
    fn a_lost_suffix_reruns_and_reproduces_the_result() {
        let mut f = fix();
        let ins = inputs(&f);
        let wf = chain();
        let result = run_workflow(
            &mut f.server,
            &mut f.pool,
            SimTime::ZERO,
            "boliu",
            f.history,
            &wf,
            &ins,
        )
        .unwrap();
        let final_before = result.step_outputs["bg"][0];
        let content_before = f.server.dataset(final_before).unwrap().content.clone();

        // Only the prefix survived the disruption: drop "bg" from the
        // checkpoint, publish the rest to a peer worker.
        let mut partial = result.checkpoint.clone();
        partial.steps.remove("bg");
        let mut pl = plane();
        partial.publish(&mut pl, "w-old");

        let report = resume_workflow(
            &mut f.server,
            &mut f.pool,
            &mut pl,
            "w-new",
            result.finished_at,
            "boliu",
            f.history,
            &wf,
            &ins,
            &partial,
        )
        .unwrap();
        assert_eq!(report.decisions["bg"], RecoveryDecision::Rerun);
        assert!(matches!(
            report.decisions["rv"],
            RecoveryDecision::Resumed { .. }
        ));
        // Only the suffix ran, on a fresh job.
        assert_eq!(report.result.step_jobs.len(), 1);
        assert!(report.result.step_jobs.contains_key("bg"));
        // The recovered prefix came from the peer/object ladder: bytes > 0.
        assert!(!report.restaged_bytes.is_zero());
        // And the rerun reproduces the same content.
        let rerun_out = report.result.step_outputs["bg"][0];
        assert_eq!(f.server.dataset(rerun_out).unwrap().content, content_before);
    }
}

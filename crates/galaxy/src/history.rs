//! Histories — per-user analysis workspaces.

use cumulus_simkit::time::SimTime;

use crate::dataset::DatasetId;

/// Identifier for a history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HistoryId(pub u64);

impl std::fmt::Display for HistoryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "history-{}", self.0)
    }
}

/// A history: an ordered workspace of datasets with annotations.
#[derive(Debug, Clone)]
pub struct History {
    /// Its id.
    pub id: HistoryId,
    /// Display name.
    pub name: String,
    /// Owning user.
    pub owner: String,
    /// Dataset ids in hid order.
    pub items: Vec<DatasetId>,
    /// Free-text annotation.
    pub annotation: Option<String>,
    /// Created at.
    pub created_at: SimTime,
    /// Next hid to assign.
    next_hid: u32,
}

impl History {
    /// A fresh history.
    pub fn new(id: HistoryId, name: &str, owner: &str, now: SimTime) -> Self {
        History {
            id,
            name: name.to_string(),
            owner: owner.to_string(),
            items: Vec::new(),
            annotation: None,
            created_at: now,
            next_hid: 1,
        }
    }

    /// Append a dataset; returns the hid it was given.
    pub fn push(&mut self, dataset: DatasetId) -> u32 {
        self.items.push(dataset);
        let hid = self.next_hid;
        self.next_hid += 1;
        hid
    }

    /// Number of items (including errored/deleted ones).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the history has no items.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Annotate (replaces any existing annotation).
    pub fn annotate(&mut self, text: &str) {
        self.annotation = Some(text.to_string());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hids_are_sequential_from_one() {
        let mut h = History::new(HistoryId(1), "analysis", "boliu", SimTime::ZERO);
        assert!(h.is_empty());
        assert_eq!(h.push(DatasetId(10)), 1);
        assert_eq!(h.push(DatasetId(20)), 2);
        assert_eq!(h.len(), 2);
        assert_eq!(h.items, vec![DatasetId(10), DatasetId(20)]);
    }

    #[test]
    fn annotations_replace() {
        let mut h = History::new(HistoryId(1), "x", "u", SimTime::ZERO);
        h.annotate("first");
        h.annotate("second");
        assert_eq!(h.annotation.as_deref(), Some("second"));
    }
}

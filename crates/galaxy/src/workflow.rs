//! Workflows: reusable DAGs of tool steps.
//!
//! "With Galaxy's workflow editor, various tools can be configured and
//! composed to complete an analysis" (§II.1). A workflow declares named
//! inputs and a list of steps; each step binds its dataset parameters
//! either to a workflow input or to another step's output. Running a
//! workflow schedules steps through the Condor pool as their dependencies
//! complete, reusing `cumulus-htc`'s DAG bookkeeping.

use std::collections::BTreeMap;

use cumulus_htc::{CondorPool, DagRun};
use cumulus_simkit::telemetry::{span::keys as span_keys, SpanKind};
use cumulus_simkit::time::{SimDuration, SimTime};

use crate::checkpoint::WorkflowCheckpoint;
use crate::dataset::DatasetId;
use crate::history::HistoryId;
use crate::job::{GalaxyJobId, GalaxyJobState};
use crate::server::{GalaxyError, GalaxyServer};

/// Where a step's dataset parameter comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Binding {
    /// A named workflow input.
    Input(String),
    /// Another step's output: (step id, output index).
    StepOutput(String, usize),
}

/// One step of a workflow.
#[derive(Debug, Clone)]
pub struct WorkflowStep {
    /// Step id, unique within the workflow.
    pub id: String,
    /// The tool to run.
    pub tool_id: String,
    /// Non-dataset parameters.
    pub params: BTreeMap<String, String>,
    /// Dataset parameter bindings.
    pub bindings: BTreeMap<String, Binding>,
}

impl WorkflowStep {
    /// Create a step.
    pub fn new(id: &str, tool_id: &str) -> Self {
        WorkflowStep {
            id: id.to_string(),
            tool_id: tool_id.to_string(),
            params: BTreeMap::new(),
            bindings: BTreeMap::new(),
        }
    }

    /// Set a scalar parameter (builder style).
    pub fn param(mut self, name: &str, value: &str) -> Self {
        self.params.insert(name.to_string(), value.to_string());
        self
    }

    /// Bind a dataset parameter to a workflow input (builder style).
    pub fn input(mut self, param: &str, workflow_input: &str) -> Self {
        self.bindings.insert(
            param.to_string(),
            Binding::Input(workflow_input.to_string()),
        );
        self
    }

    /// Bind a dataset parameter to another step's output (builder style).
    pub fn from_step(mut self, param: &str, step: &str, output: usize) -> Self {
        self.bindings.insert(
            param.to_string(),
            Binding::StepOutput(step.to_string(), output),
        );
        self
    }
}

/// A saved workflow.
#[derive(Debug, Clone)]
pub struct Workflow {
    /// Name shown in the UI.
    pub name: String,
    /// Declared input names.
    pub inputs: Vec<String>,
    /// Steps, in definition order.
    pub steps: Vec<WorkflowStep>,
}

impl Workflow {
    /// Create an empty workflow.
    pub fn new(name: &str, inputs: &[&str]) -> Self {
        Workflow {
            name: name.to_string(),
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            steps: Vec::new(),
        }
    }

    /// Append a step (builder style).
    pub fn step(mut self, step: WorkflowStep) -> Self {
        self.steps.push(step);
        self
    }

    /// Validate structure: bindings reference declared inputs / earlier
    /// steps, ids are unique.
    pub fn validate(&self) -> Result<(), String> {
        let mut seen = Vec::new();
        for step in &self.steps {
            if seen.contains(&step.id.as_str()) {
                return Err(format!("duplicate step id {:?}", step.id));
            }
            for binding in step.bindings.values() {
                match binding {
                    Binding::Input(name) => {
                        if !self.inputs.iter().any(|i| i == name) {
                            return Err(format!(
                                "step {:?} references unknown input {name:?}",
                                step.id
                            ));
                        }
                    }
                    Binding::StepOutput(src, _) => {
                        if !seen.contains(&src.as_str()) {
                            return Err(format!(
                                "step {:?} references step {src:?} which is not defined before it",
                                step.id
                            ));
                        }
                    }
                }
            }
            seen.push(step.id.as_str());
        }
        Ok(())
    }
}

/// Result of a workflow run.
#[derive(Debug, Clone)]
pub struct WorkflowRunResult {
    /// When the last step finished.
    pub finished_at: SimTime,
    /// Galaxy job per step id.
    pub step_jobs: BTreeMap<String, GalaxyJobId>,
    /// Output datasets per step id.
    pub step_outputs: BTreeMap<String, Vec<DatasetId>>,
    /// A restartable snapshot of the completed run, assembled from the
    /// provenance store and the output datasets' content ids. Feed it to
    /// [`resume_workflow`](crate::checkpoint::resume_workflow) to rerun
    /// the workflow without repeating recoverable steps.
    pub checkpoint: WorkflowCheckpoint,
}

/// A step a resumed run skips: its recovered outputs plus the staging
/// time already charged to re-materialize them.
#[derive(Debug, Clone)]
pub(crate) struct ResumedStep {
    /// The step's output datasets, recovered from the checkpoint.
    pub outputs: Vec<DatasetId>,
    /// Time spent re-staging those outputs through the data plane.
    pub restage: SimDuration,
}

/// Execute a workflow to completion, driving the pool.
///
/// Steps are submitted as soon as their dependencies complete — exactly
/// like DAGMan over Condor — so independent branches run concurrently when
/// the pool has capacity.
pub fn run_workflow(
    server: &mut GalaxyServer,
    pool: &mut CondorPool,
    now: SimTime,
    username: &str,
    history: HistoryId,
    workflow: &Workflow,
    inputs: &BTreeMap<String, DatasetId>,
) -> Result<WorkflowRunResult, GalaxyError> {
    drive_workflow(
        server,
        pool,
        now,
        username,
        history,
        workflow,
        inputs,
        &BTreeMap::new(),
    )
}

/// The shared driver behind [`run_workflow`] and
/// [`resume_workflow`](crate::checkpoint::resume_workflow): steps in
/// `resumed` are marked done up front (their outputs already exist), the
/// rest run through the pool as dependencies complete. On a resumed run
/// every step gets a recovery-decision telemetry phase.
#[allow(clippy::too_many_arguments)]
pub(crate) fn drive_workflow(
    server: &mut GalaxyServer,
    pool: &mut CondorPool,
    now: SimTime,
    username: &str,
    history: HistoryId,
    workflow: &Workflow,
    inputs: &BTreeMap<String, DatasetId>,
    resumed: &BTreeMap<String, ResumedStep>,
) -> Result<WorkflowRunResult, GalaxyError> {
    workflow
        .validate()
        .map_err(|m| GalaxyError::Tool(crate::tool::ToolError(m)))?;
    for name in &workflow.inputs {
        if !inputs.contains_key(name) {
            return Err(GalaxyError::Tool(crate::tool::ToolError(format!(
                "workflow input {name:?} not supplied"
            ))));
        }
    }

    // Build the dependency DAG.
    let mut dag = DagRun::new();
    for step in &workflow.steps {
        dag.add_node(&step.id)
            .map_err(|e| GalaxyError::Tool(crate::tool::ToolError(e.to_string())))?;
    }
    for step in &workflow.steps {
        for binding in step.bindings.values() {
            if let Binding::StepOutput(src, _) = binding {
                dag.add_edge(src, &step.id)
                    .map_err(|e| GalaxyError::Tool(crate::tool::ToolError(e.to_string())))?;
            }
        }
    }

    let step_by_id: BTreeMap<&str, &WorkflowStep> =
        workflow.steps.iter().map(|s| (s.id.as_str(), s)).collect();

    // A workflow run is one telemetry span: opened at submission, one
    // phase per completed step, closed when the DAG drains. The id is a
    // per-server serial so concurrent runs never collide.
    let telemetry = pool.telemetry().clone();
    let wf_id = server.next_workflow_id();
    telemetry.span_open(
        now,
        "workflow",
        span_keys::WORKFLOW_STARTED,
        SpanKind::Workflow,
        wf_id,
    );

    let mut step_jobs: BTreeMap<String, GalaxyJobId> = BTreeMap::new();
    let mut step_outputs: BTreeMap<String, Vec<DatasetId>> = BTreeMap::new();
    let mut condor_to_step: BTreeMap<cumulus_htc::JobId, String> = BTreeMap::new();
    let mut clock = now;

    // On a resumed run, every step records its recovery decision as a
    // telemetry phase, and skipped steps complete immediately with their
    // recovered outputs. A fresh run (empty map) emits nothing here.
    if !resumed.is_empty() {
        for step in &workflow.steps {
            match resumed.get(&step.id) {
                Some(r) => {
                    telemetry.span_phase(
                        clock,
                        "workflow",
                        span_keys::WORKFLOW_STEP_RESUMED,
                        SpanKind::Workflow,
                        wf_id,
                        r.restage,
                    );
                    dag.mark_done(&step.id)
                        .map_err(|e| GalaxyError::Tool(crate::tool::ToolError(e.to_string())))?;
                    step_outputs.insert(step.id.clone(), r.outputs.clone());
                }
                None => {
                    telemetry.span_phase(
                        clock,
                        "workflow",
                        span_keys::WORKFLOW_STEP_RERUN,
                        SpanKind::Workflow,
                        wf_id,
                        SimDuration::ZERO,
                    );
                }
            }
        }
    }

    // Submit whatever is ready.
    let submit_ready = |server: &mut GalaxyServer,
                        pool: &mut CondorPool,
                        dag: &mut DagRun,
                        condor_to_step: &mut BTreeMap<cumulus_htc::JobId, String>,
                        step_jobs: &mut BTreeMap<String, GalaxyJobId>,
                        step_outputs: &BTreeMap<String, Vec<DatasetId>>,
                        at: SimTime|
     -> Result<(), GalaxyError> {
        for node in dag.ready_nodes() {
            let step = step_by_id[node.as_str()];
            let mut params = step.params.clone();
            for (pname, binding) in &step.bindings {
                let ds = match binding {
                    Binding::Input(name) => inputs[name],
                    Binding::StepOutput(src, idx) => {
                        let outs = step_outputs.get(src).ok_or_else(|| {
                            GalaxyError::Tool(crate::tool::ToolError(format!(
                                "step {src:?} has no outputs yet"
                            )))
                        })?;
                        *outs.get(*idx).ok_or_else(|| {
                            GalaxyError::Tool(crate::tool::ToolError(format!(
                                "step {src:?} has no output #{idx}"
                            )))
                        })?
                    }
                };
                params.insert(pname.clone(), ds.0.to_string());
            }
            let job_id = server.run_tool(at, username, history, &step.tool_id, &params, pool)?;
            let condor_id = server
                .job(job_id)
                .expect("just created")
                .condor_job
                .expect("dispatched");
            dag.mark_submitted(&node, condor_id)
                .map_err(|e| GalaxyError::Tool(crate::tool::ToolError(e.to_string())))?;
            condor_to_step.insert(condor_id, node.clone());
            step_jobs.insert(node.clone(), job_id);
        }
        Ok(())
    };

    submit_ready(
        server,
        pool,
        &mut dag,
        &mut condor_to_step,
        &mut step_jobs,
        &step_outputs,
        clock,
    )?;

    // Drive to completion.
    let mut guard = 0u32;
    while !dag.is_complete() {
        guard += 1;
        if guard > 10_000 {
            return Err(GalaxyError::Tool(crate::tool::ToolError(
                "workflow did not converge".to_string(),
            )));
        }
        pool.negotiate(clock);
        let Some(next) = pool.next_completion_at() else {
            return Err(GalaxyError::Tool(crate::tool::ToolError(
                "workflow starved: no machines can run the remaining steps".to_string(),
            )));
        };
        clock = next;
        for condor_id in pool.settle(clock) {
            server.on_condor_completion(clock, condor_id);
            if let Some(step_id) = condor_to_step.remove(&condor_id) {
                let job_id = step_jobs[&step_id];
                let job = server.job(job_id)?;
                if job.state == GalaxyJobState::Error {
                    return Err(GalaxyError::Tool(crate::tool::ToolError(format!(
                        "workflow step {step_id:?} failed: {}",
                        job.error.clone().unwrap_or_default()
                    ))));
                }
                step_outputs.insert(step_id.clone(), job.outputs.clone());
                telemetry.span_phase(
                    clock,
                    "workflow",
                    span_keys::WORKFLOW_STEP,
                    SpanKind::Workflow,
                    wf_id,
                    cumulus_simkit::time::SimDuration::ZERO,
                );
                dag.on_job_completed(condor_id);
            }
        }
        submit_ready(
            server,
            pool,
            &mut dag,
            &mut condor_to_step,
            &mut step_jobs,
            &step_outputs,
            clock,
        )?;
    }

    telemetry.span_close(
        clock,
        "workflow",
        span_keys::WORKFLOW_COMPLETED,
        SpanKind::Workflow,
        wf_id,
    );

    let checkpoint = WorkflowCheckpoint::capture(clock, server, workflow, inputs)?;
    Ok(WorkflowRunResult {
        finished_at: clock,
        step_jobs,
        step_outputs,
        checkpoint,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Content;
    use crate::tool::{
        CostModel, OutputSpec, ParamSpec, ToolDefinition, ToolInvocation, ToolOutput,
    };
    use cumulus_htc::Machine;
    use cumulus_net::{DataSize, NodeId};
    use std::sync::Arc;

    fn text_tool(id: &str, f: impl Fn(&str) -> String + Send + Sync + 'static) -> ToolDefinition {
        ToolDefinition {
            id: id.to_string(),
            name: id.to_string(),
            version: "1.0".to_string(),
            description: format!("{id} tool"),
            params: vec![ParamSpec::dataset("input", "Input")],
            outputs: vec![OutputSpec {
                name: "out".to_string(),
                dtype: "txt".to_string(),
            }],
            cost: CostModel::LIGHT,
            behavior: Arc::new(move |inv: &ToolInvocation| {
                let text = match inv.input("input") {
                    Some(Content::Text(s)) => s.clone(),
                    _ => return Err(crate::tool::ToolError("need text".to_string())),
                };
                Ok(vec![ToolOutput {
                    name: "out".to_string(),
                    dataset_name: format!("{} output", inv.param("label").unwrap_or("step")),
                    content: Content::Text(f(&text)),
                    size: None,
                }])
            }),
        }
    }

    fn join_tool() -> ToolDefinition {
        ToolDefinition {
            id: "join".to_string(),
            name: "join".to_string(),
            version: "1.0".to_string(),
            description: "joins two texts".to_string(),
            params: vec![ParamSpec::dataset("a", "A"), ParamSpec::dataset("b", "B")],
            outputs: vec![OutputSpec {
                name: "out".to_string(),
                dtype: "txt".to_string(),
            }],
            cost: CostModel::LIGHT,
            behavior: Arc::new(|inv: &ToolInvocation| {
                let get = |n: &str| match inv.input(n) {
                    Some(Content::Text(s)) => Ok(s.clone()),
                    _ => Err(crate::tool::ToolError(format!("need text {n}"))),
                };
                Ok(vec![ToolOutput {
                    name: "out".to_string(),
                    dataset_name: "joined".to_string(),
                    content: Content::Text(format!("{}|{}", get("a")?, get("b")?)),
                    size: None,
                }])
            }),
        }
    }

    struct Fix {
        server: GalaxyServer,
        pool: CondorPool,
        history: HistoryId,
        input: DatasetId,
    }

    fn fix() -> Fix {
        let mut server = GalaxyServer::new(NodeId(0), None);
        server
            .registry
            .register("Text", text_tool("upper", |s| s.to_uppercase()))
            .unwrap();
        server
            .registry
            .register("Text", text_tool("rev", |s| s.chars().rev().collect()))
            .unwrap();
        server.registry.register("Text", join_tool()).unwrap();
        server.register_user("boliu");
        let history = server.create_history(SimTime::ZERO, "boliu", "wf").unwrap();
        let input = server
            .add_dataset(
                SimTime::ZERO,
                history,
                "in.txt",
                "txt",
                DataSize::from_kb(1),
                Content::Text("abc".to_string()),
            )
            .unwrap();
        let mut pool = CondorPool::new();
        pool.add_machine(Machine::new("w1", 1.0, 1700, 1)).unwrap();
        pool.add_machine(Machine::new("w2", 1.0, 1700, 1)).unwrap();
        Fix {
            server,
            pool,
            history,
            input,
        }
    }

    fn diamond() -> Workflow {
        Workflow::new("diamond", &["data"])
            .step(WorkflowStep::new("up", "upper").input("input", "data"))
            .step(WorkflowStep::new("rv", "rev").input("input", "data"))
            .step(
                WorkflowStep::new("jn", "join")
                    .from_step("a", "up", 0)
                    .from_step("b", "rv", 0),
            )
    }

    #[test]
    fn diamond_workflow_computes_correctly() {
        let mut f = fix();
        let mut inputs = BTreeMap::new();
        inputs.insert("data".to_string(), f.input);
        let result = run_workflow(
            &mut f.server,
            &mut f.pool,
            SimTime::ZERO,
            "boliu",
            f.history,
            &diamond(),
            &inputs,
        )
        .unwrap();
        assert_eq!(result.step_jobs.len(), 3);
        let final_out = result.step_outputs["jn"][0];
        let ds = f.server.dataset(final_out).unwrap();
        assert_eq!(ds.content, Content::Text("ABC|cba".to_string()));
        // Provenance spans the whole workflow.
        let lineage = f.server.provenance.lineage(final_out).unwrap();
        assert!(lineage.contains(&f.input));
        assert_eq!(lineage.len(), 3, "two intermediates + the input");
    }

    #[test]
    fn independent_branches_run_concurrently() {
        let mut f = fix();
        let mut inputs = BTreeMap::new();
        inputs.insert("data".to_string(), f.input);
        let result = run_workflow(
            &mut f.server,
            &mut f.pool,
            SimTime::ZERO,
            "boliu",
            f.history,
            &diamond(),
            &inputs,
        )
        .unwrap();
        // Each LIGHT step on 1 KB ≈ 2 s serial. Two machines run up/rev in
        // parallel, then join: ≈ 4 s, not 6.
        let secs = result.finished_at.as_secs_f64();
        assert!(secs < 5.0, "took {secs}, branches must overlap");
    }

    #[test]
    fn validation_catches_bad_references() {
        let w = Workflow::new("bad", &["data"])
            .step(WorkflowStep::new("s1", "upper").input("input", "ghost"));
        assert!(w.validate().is_err());

        let w = Workflow::new("bad2", &[])
            .step(WorkflowStep::new("s1", "upper").from_step("input", "later", 0))
            .step(WorkflowStep::new("later", "rev"));
        assert!(w.validate().is_err(), "forward reference");

        let w = Workflow::new("bad3", &[])
            .step(WorkflowStep::new("dup", "upper"))
            .step(WorkflowStep::new("dup", "rev"));
        assert!(w.validate().is_err(), "duplicate id");
    }

    #[test]
    fn missing_inputs_are_rejected() {
        let mut f = fix();
        let err = run_workflow(
            &mut f.server,
            &mut f.pool,
            SimTime::ZERO,
            "boliu",
            f.history,
            &diamond(),
            &BTreeMap::new(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("not supplied"));
    }

    #[test]
    fn starved_workflow_errors() {
        let mut f = fix();
        let mut empty = CondorPool::new();
        let mut inputs = BTreeMap::new();
        inputs.insert("data".to_string(), f.input);
        let err = run_workflow(
            &mut f.server,
            &mut empty,
            SimTime::ZERO,
            "boliu",
            f.history,
            &diamond(),
            &inputs,
        )
        .unwrap_err();
        assert!(err.to_string().contains("starved"));
    }
}

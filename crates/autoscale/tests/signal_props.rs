//! Property-style tests of the `percentile` helper: whatever sample set
//! it is fed — NaN-poisoned, infinite, duplicated, unsorted — it must be
//! total (never panic) and agree with the textbook sorted-rank reference
//! on the non-NaN values. Cases come from deterministic seeded streams
//! (the offline build ships no proptest), in the style of
//! `crates/net/tests/fault_props.rs`.

use cumulus_autoscale::percentile;
use cumulus_simkit::rng::RngStream;

const CASES: u64 = 128;

/// A random sample list: mixed magnitudes, duplicates, negatives, and —
/// with some probability per element — NaN or an infinity. This is the
/// shape a `SignalSample` wait list takes when a bad `WorkSpec` poisons
/// the simulated durations.
fn gen_values(rng: &mut RngStream) -> Vec<f64> {
    (0..rng.uniform_int(0, 24))
        .map(|_| match rng.uniform_int(0, 9) {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -rng.uniform_range(0.0, 100.0),
            _ => rng.uniform_range(0.0, 10_000.0),
        })
        .collect()
}

/// The reference: sort the non-NaN values ascending, take the
/// nearest-rank element `ceil(q·n)` (1-based), 0 for an empty list.
fn reference(values: &[f64], q: f64) -> f64 {
    let mut clean: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if clean.is_empty() {
        return 0.0;
    }
    clean.sort_by(|a, b| a.total_cmp(b));
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    let rank = ((q * clean.len() as f64).ceil() as usize).clamp(1, clean.len());
    clean[rank - 1]
}

#[test]
fn percentile_matches_the_sorted_rank_reference_on_any_input() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "signal-prop/reference");
        let values = gen_values(&mut rng);
        for _ in 0..8 {
            let q = match rng.uniform_int(0, 5) {
                0 => 0.0,
                1 => 1.0,
                2 => f64::NAN,
                3 => rng.uniform_range(-0.5, 1.5),
                _ => rng.uniform(),
            };
            let got = percentile(&values, q);
            let want = reference(&values, q);
            assert!(
                got == want || (got.is_nan() && want.is_nan()),
                "case {case}: percentile({values:?}, {q}) = {got}, reference = {want}"
            );
        }
    }
}

#[test]
fn percentile_is_total_and_never_nan_on_poisoned_input() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "signal-prop/total");
        let values = gen_values(&mut rng);
        let q = rng.uniform();
        // Must not panic, and NaN samples must never leak into the result
        // (infinities may — they are ordered, real values).
        let got = percentile(&values, q);
        assert!(!got.is_nan(), "case {case}: NaN leaked from {values:?}");
    }
}

#[test]
fn nan_samples_are_ignored_not_propagated() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "signal-prop/filter");
        let clean: Vec<f64> = (0..rng.uniform_int(1, 16))
            .map(|_| rng.uniform_range(0.0, 1_000.0))
            .collect();
        // Splice NaNs into random positions; the percentile of the
        // poisoned list must equal the percentile of the clean one.
        let mut poisoned = clean.clone();
        for _ in 0..rng.uniform_int(1, 6) {
            let at = rng.uniform_int(0, poisoned.len() as u64) as usize;
            poisoned.insert(at, f64::NAN);
        }
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(
                percentile(&poisoned, q),
                percentile(&clean, q),
                "case {case}: NaN splice changed the percentile at q={q}"
            );
        }
    }
}

#[test]
fn percentile_is_monotone_in_q() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "signal-prop/monotone");
        let values = gen_values(&mut rng);
        let mut qs: Vec<f64> = (0..10).map(|_| rng.uniform()).collect();
        qs.sort_by(|a, b| a.total_cmp(b));
        let picks: Vec<f64> = qs.iter().map(|&q| percentile(&values, q)).collect();
        for pair in picks.windows(2) {
            assert!(
                pair[0] <= pair[1] || pair.iter().any(|v| v.is_nan()),
                "case {case}: percentile not monotone in q: {picks:?}"
            );
        }
    }
}

#[test]
fn all_nan_input_reports_zero_like_empty() {
    assert_eq!(percentile(&[], 0.5), 0.0);
    assert_eq!(percentile(&[f64::NAN], 0.5), 0.0);
    assert_eq!(percentile(&[f64::NAN, f64::NAN], 0.95), 0.0);
}

//! Scaling signals: what the controller observes each tick.
//!
//! A [`SignalSample`] is one instantaneous reading of the HTC pool —
//! queue depth, utilization, free slots, and the wait-time percentiles of
//! the jobs currently queued. A [`SignalWindow`] keeps the last N samples
//! so policies can react to smoothed values instead of chasing every
//! single-tick spike (the classic cause of scaling flap).

use std::collections::VecDeque;

use cumulus_htc::CondorPool;
use cumulus_simkit::time::SimTime;

/// Nearest-rank percentile of an unsorted sample set. `q` is in `[0, 1]`
/// (clamped; a NaN `q` reads as the minimum). Empty input reports 0
/// (there is nothing waiting).
///
/// Total on any input: NaN samples are filtered out rather than poisoning
/// the sort — simulated wait durations flow through arithmetic a bad
/// `WorkSpec` can turn into NaN, and a monitoring-path helper must not
/// take the controller down over one bad sample. All-NaN input reports 0
/// like empty input.
pub fn percentile(values: &[f64], q: f64) -> f64 {
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.total_cmp(b));
    let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    debug_assert!((1..=sorted.len()).contains(&rank), "rank out of range");
    sorted[rank - 1]
}

/// One reading of the pool, taken at a control tick.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalSample {
    /// When the sample was taken.
    pub at: SimTime,
    /// Idle (queued, unmatched) jobs.
    pub queue_depth: usize,
    /// Jobs executing.
    pub running: usize,
    /// Workers in the instance topology (the controller's actuator state;
    /// excludes the head node).
    pub workers: usize,
    /// Free execution slots across accepting machines.
    pub free_slots: u32,
    /// Busy fraction of all slots, `[0, 1]`.
    pub utilization: f64,
    /// Median wait of currently-queued jobs, seconds.
    pub wait_p50_secs: f64,
    /// 95th-percentile wait of currently-queued jobs, seconds.
    pub wait_p95_secs: f64,
}

impl SignalSample {
    /// Read the pool at `now`. `workers` is the current topology worker
    /// count — the pool itself cannot distinguish head from worker slots.
    pub fn observe(now: SimTime, pool: &CondorPool, workers: usize) -> SignalSample {
        let waits: Vec<f64> = pool
            .idle_waits(now)
            .iter()
            .map(|d| d.as_secs_f64())
            .collect();
        SignalSample {
            at: now,
            queue_depth: pool.idle_count(),
            running: pool.running_count(),
            workers,
            free_slots: pool.free_slots(),
            utilization: pool.utilization(),
            wait_p50_secs: percentile(&waits, 0.50),
            wait_p95_secs: percentile(&waits, 0.95),
        }
    }

    /// Jobs in the system: queued plus executing. The backlog a
    /// capacity-planning policy sizes against.
    pub fn backlog(&self) -> usize {
        self.queue_depth + self.running
    }
}

/// Sliding window over the most recent [`SignalSample`]s.
#[derive(Debug, Clone)]
pub struct SignalWindow {
    capacity: usize,
    samples: VecDeque<SignalSample>,
}

impl SignalWindow {
    /// A window holding up to `capacity` samples (at least 1).
    pub fn new(capacity: usize) -> SignalWindow {
        SignalWindow {
            capacity: capacity.max(1),
            samples: VecDeque::new(),
        }
    }

    /// Append a sample, evicting the oldest past capacity.
    pub fn push(&mut self, sample: SignalSample) {
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// The newest sample, if any was pushed.
    pub fn latest(&self) -> Option<&SignalSample> {
        self.samples.back()
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no sample was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean queue depth over the window (0 when empty).
    pub fn mean_queue_depth(&self) -> f64 {
        self.mean(|s| s.queue_depth as f64)
    }

    /// Mean utilization over the window (0 when empty).
    pub fn mean_utilization(&self) -> f64 {
        self.mean(|s| s.utilization)
    }

    /// Mean p95 queued-job wait over the window, seconds.
    pub fn mean_wait_p95(&self) -> f64 {
        self.mean(|s| s.wait_p95_secs)
    }

    fn mean(&self, f: impl Fn(&SignalSample) -> f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(f).sum::<f64>() / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cumulus_htc::{Job, Machine, WorkSpec};
    use cumulus_simkit::time::SimDuration;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn sample(at_secs: u64, queue: usize, util: f64) -> SignalSample {
        SignalSample {
            at: t(at_secs),
            queue_depth: queue,
            running: 0,
            workers: 0,
            free_slots: 0,
            utilization: util,
            wait_p50_secs: 0.0,
            wait_p95_secs: 0.0,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 50.0);
        assert_eq!(percentile(&v, 0.95), 95.0);
        assert_eq!(percentile(&v, 1.0), 100.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.95), 7.0);
    }

    #[test]
    fn observe_reads_queue_and_waits() {
        let mut pool = CondorPool::new();
        pool.add_machine(Machine::new("w", 1.0, 1700, 1)).unwrap();
        pool.submit(Job::new("u", WorkSpec::serial(100.0)), t(0));
        pool.submit(Job::new("u", WorkSpec::serial(100.0)), t(0));
        pool.negotiate(t(0));
        let s = SignalSample::observe(t(60), &pool, 0);
        assert_eq!(s.queue_depth, 1);
        assert_eq!(s.running, 1);
        assert_eq!(s.backlog(), 2);
        assert_eq!(s.free_slots, 0);
        assert!((s.utilization - 1.0).abs() < 1e-12);
        assert_eq!(s.wait_p50_secs, 60.0);
        assert_eq!(s.wait_p95_secs, 60.0);
    }

    #[test]
    fn window_evicts_oldest_and_averages() {
        let mut w = SignalWindow::new(3);
        assert!(w.is_empty());
        assert_eq!(w.mean_queue_depth(), 0.0);
        for (i, q) in [10usize, 20, 30, 40].iter().enumerate() {
            w.push(sample(i as u64, *q, 0.5));
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.latest().unwrap().queue_depth, 40);
        // 10 was evicted: mean over {20, 30, 40}.
        assert!((w.mean_queue_depth() - 30.0).abs() < 1e-12);
        assert!((w.mean_utilization() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_capacity_window_still_holds_one() {
        let mut w = SignalWindow::new(0);
        w.push(sample(0, 1, 0.0));
        w.push(sample(1, 2, 0.0));
        assert_eq!(w.len(), 1);
        assert_eq!(w.latest().unwrap().queue_depth, 2);
    }
}

//! Spot-aware elasticity: a fleet-mix policy and a preemption-aware
//! episode driver.
//!
//! The plain controller treats every worker as on-demand capacity. This
//! module adds the economics: a [`SpotMix`] wrapper partitions the worker
//! index space into an on-demand core and a spot tail (the provision
//! layer's spot floor), and [`run_spot_episode`] drives a workload through
//! the closed loop while a [`SpotMarket`] reclaims spot workers along a
//! seeded preemption timeline. Each reclaim plays out end to end inside
//! the DES:
//!
//! 1. the market strikes a running spot instance — a two-minute
//!    interruption notice is served ([`Ec2Sim::preempt_instance`] via the
//!    market's [`Disruptable`] seam);
//! 2. at the deadline the instance settles to `Preempted`, billing stops,
//!    and [`GpCloud::repair_instance`] purges the lost host — **requeueing
//!    its in-flight jobs** — and relaunches the slot (as spot again, per
//!    the floor);
//! 3. the replacement joins the pool only when its provisioning
//!    completes (the same deferred-join rule scale-outs obey), and the
//!    requeued jobs renegotiate onto whatever capacity survives.
//!
//! The episode is byte-deterministic for a seed: the market timeline and
//! victim choices come from named [`RngStream`]s, so a calm market with a
//! zero spot fraction reproduces [`run_episode`] exactly.
//!
//! [`Ec2Sim::preempt_instance`]: cumulus_cloud::Ec2Sim::preempt_instance
//! [`GpCloud::repair_instance`]: cumulus_provision::deploy::GpCloud
//! [`Disruptable`]: cumulus_simkit::disrupt::Disruptable
//! [`run_episode`]: crate::controller::run_episode

use cumulus_cloud::{InstanceType, SpotMarket};
use cumulus_provision::deploy::GpCloud;
use cumulus_provision::Topology;
use cumulus_simkit::engine::Sim;
use cumulus_simkit::rng::RngStream;
use cumulus_simkit::runner::{run_replicas, ReplicaPlan};
use cumulus_simkit::time::{SimDuration, SimTime};

use crate::controller::{
    defer_worker_join, defer_worker_joins, Action, AutoScaler, CloudHost, ControllerConfig,
    EpisodeReport,
};
use crate::policy::ScalingPolicy;
use crate::signal::percentile;
use crate::workload::Workload;

/// Fleet-mix parameters for [`SpotMix`].
#[derive(Debug, Clone)]
pub struct SpotMixConfig {
    /// Fraction of the fleet cap eligible to run on spot, in `[0, 1]`.
    /// `0.0` is an all-on-demand fleet; `1.0` puts every worker on spot.
    pub spot_fraction: f64,
    /// The fleet cap the fraction is measured against (typically the
    /// wrapped policy's `max_workers` bound).
    pub max_workers: usize,
}

/// Wraps a sizing policy with a spot/on-demand fleet mix.
///
/// Sizing passes straight through to the inner policy (typically a
/// [`Hysteresis`]-wrapped one) — the mix never changes *how many* workers
/// run, only *what they cost*: workers at index `>=`
/// [`on_demand_floor`][SpotMix::on_demand_floor] launch as spot capacity.
/// Keeping the split positional means the on-demand core occupies the low
/// indexes the controller releases last, so scale-ins shed the reclaimable
/// spot tail first.
///
/// [`Hysteresis`]: crate::policy::Hysteresis
#[derive(Debug, Clone)]
pub struct SpotMix<P> {
    inner: P,
    /// The active mix.
    pub config: SpotMixConfig,
}

impl<P: ScalingPolicy> SpotMix<P> {
    /// Wrap `inner` with a fleet mix (`spot_fraction` clamped to `[0, 1]`).
    pub fn new(inner: P, config: SpotMixConfig) -> SpotMix<P> {
        SpotMix {
            inner,
            config: SpotMixConfig {
                spot_fraction: config.spot_fraction.clamp(0.0, 1.0),
                ..config
            },
        }
    }

    /// The worker index at and above which workers launch as spot —
    /// the value to hand to
    /// [`GpCloud::set_spot_worker_floor`](cumulus_provision::deploy::GpCloud::set_spot_worker_floor).
    /// `None` for a zero spot fraction (pure on-demand fleet).
    pub fn on_demand_floor(&self) -> Option<usize> {
        if self.config.spot_fraction <= 0.0 {
            return None;
        }
        let spot = (self.config.max_workers as f64 * self.config.spot_fraction).round() as usize;
        Some(self.config.max_workers.saturating_sub(spot))
    }
}

impl<P: ScalingPolicy> ScalingPolicy for SpotMix<P> {
    fn name(&self) -> String {
        format!(
            "{}+spot/{:.0}%",
            self.inner.name(),
            self.config.spot_fraction * 100.0
        )
    }

    fn desired_workers(&mut self, window: &crate::signal::SignalWindow) -> usize {
        self.inner.desired_workers(window)
    }

    fn observe_actuation(&mut self, feedback: &crate::policy::ActuationFeedback) {
        self.inner.observe_actuation(feedback);
    }
}

/// Parameters for a spot episode beyond the plain controller config.
#[derive(Debug, Clone)]
pub struct SpotEpisodeConfig {
    /// The controller parameters (tick, window, worker type).
    pub controller: ControllerConfig,
    /// Mean interval between market strikes (Poisson); `None` is a calm
    /// market that never reclaims anything.
    pub mean_preemption_interval: Option<SimDuration>,
    /// Extra time past the last arrival the market timeline covers (the
    /// drain tail is still exposed to reclaims).
    pub horizon_slack: SimDuration,
}

impl Default for SpotEpisodeConfig {
    fn default() -> Self {
        SpotEpisodeConfig {
            controller: ControllerConfig::default(),
            mean_preemption_interval: None,
            horizon_slack: SimDuration::from_hours(24),
        }
    }
}

/// Everything measured over one spot episode: the plain episode report
/// plus the disruption ledger.
#[derive(Debug, Clone)]
pub struct SpotEpisodeReport {
    /// The metrics every episode reports (cost, waits, makespan, log).
    pub base: EpisodeReport,
    /// Market strikes that actually reclaimed a spot worker.
    pub preemptions: usize,
    /// In-flight jobs requeued by reclaims (a job preempted twice counts
    /// twice).
    pub requeued_jobs: usize,
    /// Pool-wide eviction count at episode end (includes any non-market
    /// evictions, of which the episode driver produces none).
    pub total_evictions: u64,
    /// Completed-or-queued jobs that were evicted at least once.
    pub retried_jobs: usize,
}

struct SpotEpisodeWorld {
    cloud: GpCloud,
    scaler: AutoScaler,
    market: SpotMarket,
    total_jobs: usize,
    submitted: usize,
    end_at: Option<SimTime>,
    preemptions: usize,
    requeued_jobs: usize,
}

impl CloudHost for SpotEpisodeWorld {
    fn cloud_mut(&mut self) -> &mut GpCloud {
        &mut self.cloud
    }
}

/// Deploy a single-node Galaxy instance and run `workload` through it
/// under a spot/on-demand fleet mix while a seeded spot market reclaims
/// spot workers. See the module docs for the reclaim lifecycle; apart
/// from the market this is [`run_episode`][crate::controller::run_episode]
/// — same deployment, same arrival wiring, same control loop — so a calm
/// market with a zero spot fraction reproduces it number for number.
///
/// # Panics
/// Panics if the deployment fails or the episode exceeds its step budget
/// (both indicate a model bug, not a data-dependent condition).
pub fn run_spot_episode<P: ScalingPolicy + 'static>(
    seed: u64,
    policy: SpotMix<P>,
    config: SpotEpisodeConfig,
    workload: &Workload,
) -> SpotEpisodeReport {
    let floor = policy.on_demand_floor();
    let mut cloud = GpCloud::deterministic(seed);
    cloud.set_spot_worker_floor(floor);
    let id = cloud.create_instance(Topology::single_node(InstanceType::M1Small));
    let ready = cloud
        .start_instance(SimTime::ZERO, &id)
        .expect("single-node deployment succeeds")
        .ready_at;
    let scaler = AutoScaler::new(Box::new(policy), config.controller.clone());
    let policy_name = scaler.policy_name();

    // The market timeline covers deployment + trace + the drain tail.
    let market = match config.mean_preemption_interval {
        Some(mean) => {
            let mut events = RngStream::derive(seed, "spot/market-events");
            let horizon = ready.since(SimTime::ZERO) + workload.duration() + config.horizon_slack;
            SpotMarket::poisson(
                &mut events,
                RngStream::derive(seed, "spot/market-victims"),
                horizon,
                mean,
            )
        }
        None => SpotMarket::calm(RngStream::derive(seed, "spot/market-victims")),
    };
    let plan = market.plan().clone();

    let mut sim = Sim::new(SpotEpisodeWorld {
        cloud,
        scaler,
        market,
        total_jobs: workload.len(),
        submitted: 0,
        end_at: None,
        preemptions: 0,
        requeued_jobs: 0,
    });
    sim.fast_forward(ready);

    // Arrivals: submit and negotiate immediately, exactly as run_episode.
    for a in &workload.arrivals {
        let aid = id.clone();
        let owner = a.owner.clone();
        let work = a.work;
        sim.schedule_at(ready + a.at, move |sim| {
            let now = sim.now();
            let w = &mut sim.world;
            if let Ok(inst) = w.cloud.instance_mut(&aid) {
                inst.pool.submit(cumulus_htc::Job::new(&owner, work), now);
                inst.pool.settle(now);
                inst.pool.negotiate(now);
            }
            w.submitted += 1;
        });
    }

    // The market: each plan point is one strike. A strike that lands
    // serves a notice; the follow-through at the deadline settles the
    // reclaim, repairs the slot, and defers the replacement's pool join
    // to its provisioning-complete time.
    let mid = id.clone();
    plan.schedule_points_into(&mut sim, move |sim, _d| {
        let now = sim.now();
        let reclaim = {
            let w = &mut sim.world;
            if w.end_at.is_some() {
                return;
            }
            let Some(r) = w.market.strike(now, &mut w.cloud.ec2) else {
                return;
            };
            w.preemptions += 1;
            r
        };
        let rid = mid.clone();
        sim.schedule_at(reclaim.deadline, move |sim| {
            let now = sim.now();
            let joins: Vec<(usize, SimTime)> = {
                let w = &mut sim.world;
                if w.end_at.is_some() {
                    return;
                }
                w.cloud.ec2.settle(now);
                let Ok(report) = w.cloud.repair_instance(now, &rid) else {
                    return;
                };
                w.requeued_jobs += report.requeued().len();
                let mut joins = Vec::new();
                if let Some(ready_at) = report.repaired_at {
                    for lost in &report.lost {
                        if let Some(idx) = lost.worker_index {
                            joins.push((idx, ready_at));
                        }
                    }
                }
                // Requeued jobs rematch onto whatever capacity survives.
                if let Ok(inst) = w.cloud.instance_mut(&rid) {
                    inst.pool.negotiate(now);
                }
                joins
            };
            // repair added each replacement's pool machine eagerly; hold
            // it out until its provisioning lands.
            for (idx, ready_at) in joins {
                defer_worker_join(sim, &rid, idx, ready_at);
            }
        });
    });

    // The control loop — identical to run_episode's.
    let tid = id.clone();
    let tick = config.controller.tick;
    sim.schedule_every(ready, tick, move |sim| {
        let now = sim.now();
        let decision = {
            let w = &mut sim.world;
            if let Ok(inst) = w.cloud.instance_mut(&tid) {
                inst.pool.settle(now);
            }
            w.scaler
                .tick(now, &mut w.cloud, &tid)
                .expect("controller tick against a running instance")
        };

        if let (Action::ScaleOut { from, to }, Some(done)) = (&decision.action, decision.done_at) {
            defer_worker_joins(sim, &tid, *from, *to, done);
        }

        let w = &mut sim.world;
        if let Ok(inst) = w.cloud.instance_mut(&tid) {
            inst.pool.negotiate(now);
        }

        let inst = w.cloud.instance(&tid).expect("instance exists");
        let drained = w.submitted == w.total_jobs
            && inst.pool.idle_count() == 0
            && inst.pool.running_count() == 0;
        if drained {
            let wtype = w.scaler.config.worker_type;
            let _ = w.cloud.scale_workers(now, &tid, 0, wtype);
            w.end_at = Some(now);
            false
        } else {
            true
        }
    });

    let _ = sim.run(SimTime::MAX, 50_000_000);
    let end_at = sim.world.end_at.expect("episode drains within budget");

    let world = sim.world;
    let pool = &world.cloud.instance(&id).expect("instance exists").pool;
    let waits_mins: Vec<f64> = pool
        .completed_waits()
        .iter()
        .map(|d| d.as_mins_f64())
        .collect();
    let makespan_mins = pool
        .last_completion_at()
        .map(|t| t.since(ready).as_mins_f64())
        .unwrap_or(0.0);
    let total_evictions = pool.total_evictions();
    let retried_jobs = pool.retried_jobs();
    let log = world.scaler.log;
    let base = EpisodeReport {
        policy: policy_name,
        workload: workload.name.clone(),
        ready_at: ready,
        end_at,
        makespan_mins,
        cost_usd: world.cloud.ec2.ledger.window_cost(ready, end_at),
        wait_p50_mins: percentile(&waits_mins, 0.50),
        wait_p95_mins: percentile(&waits_mins, 0.95),
        jobs: waits_mins.len(),
        peak_workers: log
            .entries
            .iter()
            .map(|d| d.sample.workers)
            .max()
            .unwrap_or(0),
        log,
    };
    SpotEpisodeReport {
        base,
        preemptions: world.preemptions,
        requeued_jobs: world.requeued_jobs,
        total_evictions,
        retried_jobs,
    }
}

/// Run `combos` independent spot episodes against the same workload and
/// seed, fanned out over the parallel replica runner, and return the
/// reports **in combo order** — the spot analogue of
/// [`run_sweep`][crate::controller::run_sweep], with the same
/// serial-equals-parallel byte-identity guarantee.
pub fn run_spot_sweep<P, F>(
    seed: u64,
    combos: usize,
    make: F,
    workload: &Workload,
    threads: usize,
) -> Vec<SpotEpisodeReport>
where
    P: ScalingPolicy + 'static,
    F: Fn(usize) -> (SpotMix<P>, SpotEpisodeConfig) + Sync,
{
    let plan = ReplicaPlan::new(seed, combos).with_threads(threads);
    run_replicas(plan, |i, _seeds| {
        let (policy, config) = make(i);
        run_spot_episode(seed, policy, config, workload)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::run_episode;
    use crate::policy::{Hysteresis, HysteresisConfig, QueueStep};
    use cumulus_htc::WorkSpec;

    fn mix(fraction: f64, max: usize) -> SpotMix<Hysteresis<QueueStep>> {
        SpotMix::new(
            Hysteresis::new(
                QueueStep::new(2),
                HysteresisConfig {
                    min_workers: 0,
                    max_workers: max,
                    scale_out_cooldown: SimDuration::from_mins(2),
                    scale_in_cooldown: SimDuration::from_mins(5),
                },
            ),
            SpotMixConfig {
                spot_fraction: fraction,
                max_workers: max,
            },
        )
    }

    fn burst(n: usize) -> Workload {
        let work = WorkSpec {
            serial_secs: 112.0,
            cu_work: 418.0,
        };
        Workload::burst("burst", n, SimDuration::ZERO, work)
    }

    #[test]
    fn spot_mix_places_the_floor() {
        assert_eq!(mix(0.0, 8).on_demand_floor(), None);
        assert_eq!(mix(1.0, 8).on_demand_floor(), Some(0));
        assert_eq!(mix(0.5, 8).on_demand_floor(), Some(4));
        assert_eq!(mix(0.25, 8).on_demand_floor(), Some(6));
        assert_eq!(
            mix(0.5, 8).name(),
            "queue-step/2+hysteresis+spot/50%",
            "stable log name"
        );
    }

    #[test]
    fn calm_all_on_demand_episode_reproduces_run_episode() {
        let workload = burst(8);
        let spot = run_spot_episode(7, mix(0.0, 8), SpotEpisodeConfig::default(), &workload);
        let plain = run_episode(
            7,
            Box::new(Hysteresis::new(
                QueueStep::new(2),
                HysteresisConfig {
                    min_workers: 0,
                    max_workers: 8,
                    scale_out_cooldown: SimDuration::from_mins(2),
                    scale_in_cooldown: SimDuration::from_mins(5),
                },
            )),
            ControllerConfig::default(),
            &workload,
        );
        assert_eq!(spot.preemptions, 0);
        assert_eq!(spot.total_evictions, 0);
        assert_eq!(spot.base.jobs, plain.jobs);
        assert_eq!(spot.base.cost_usd, plain.cost_usd);
        assert_eq!(spot.base.wait_p95_mins, plain.wait_p95_mins);
        assert_eq!(spot.base.end_at, plain.end_at);
        assert_eq!(spot.base.log.render(), plain.log.render());
    }

    #[test]
    fn calm_spot_fleet_is_cheaper_at_identical_service() {
        let workload = burst(8);
        let od = run_spot_episode(7, mix(0.0, 8), SpotEpisodeConfig::default(), &workload);
        let spot = run_spot_episode(7, mix(1.0, 8), SpotEpisodeConfig::default(), &workload);
        // A calm market never reclaims, so the schedule is identical and
        // the only difference is the price of the worker fleet.
        assert_eq!(spot.base.wait_p95_mins, od.base.wait_p95_mins);
        assert_eq!(spot.base.makespan_mins, od.base.makespan_mins);
        assert!(
            spot.base.cost_usd < od.base.cost_usd,
            "spot {} !< on-demand {}",
            spot.base.cost_usd,
            od.base.cost_usd
        );
    }

    #[test]
    fn preemptions_requeue_work_and_the_episode_still_drains() {
        let workload = burst(12);
        let config = SpotEpisodeConfig {
            mean_preemption_interval: Some(SimDuration::from_mins(20)),
            ..SpotEpisodeConfig::default()
        };
        let report = run_spot_episode(11, mix(1.0, 8), config, &workload);
        assert_eq!(report.base.jobs, 12, "every job completes despite reclaims");
        assert!(report.preemptions >= 1, "market struck at least once");
        assert_eq!(
            report.requeued_jobs as u64, report.total_evictions,
            "every requeue is accounted as an eviction"
        );
        assert!(report.retried_jobs <= report.requeued_jobs);
        // Reclaims can only hurt service relative to a calm market.
        let calm = run_spot_episode(11, mix(1.0, 8), SpotEpisodeConfig::default(), &workload);
        assert!(report.base.end_at >= calm.base.end_at);
    }

    #[test]
    fn spot_episode_is_seed_deterministic() {
        let workload = burst(10);
        let config = SpotEpisodeConfig {
            mean_preemption_interval: Some(SimDuration::from_mins(30)),
            ..SpotEpisodeConfig::default()
        };
        let a = run_spot_episode(5, mix(0.5, 8), config.clone(), &workload);
        let b = run_spot_episode(5, mix(0.5, 8), config, &workload);
        assert_eq!(a.base.cost_usd, b.base.cost_usd);
        assert_eq!(a.preemptions, b.preemptions);
        assert_eq!(a.requeued_jobs, b.requeued_jobs);
        assert_eq!(a.base.log.render(), b.base.log.render());
    }
}

//! Demand forecasting and the predictive scaling policy.
//!
//! Every reactive policy pays the provisioning lead time on every
//! scale-out: capacity requested when the queue is already deep arrives
//! minutes later, and the jobs that triggered it wait out the whole
//! boot-and-converge window. On a diurnal trace that reactive lag shows
//! up as inflated p95 wait at the start of every ramp (the E9e numbers).
//!
//! This module removes the lag by provisioning *ahead* of demand:
//!
//! * [`Forecaster`] — an online Holt (EWMA level + trend) model of the
//!   demand signal, with an optional additive seasonal table keyed by
//!   phase-of-period for traces with a known cycle (the diurnal day);
//! * [`Predictive`] — a [`ScalingPolicy`] that feeds the forecaster each
//!   control tick and sizes the fleet for the *forecasted* backlog at
//!   `now + lead`, where `lead` is the decision-to-ready scale-out
//!   latency learned from the controller's own actuation feedback
//!   ([`observe_actuation`][ScalingPolicy::observe_actuation] `done_at`),
//!   not a hand-tuned constant.
//!
//! The policy stays a pure sizing function: the controller still clamps,
//! drains, and serializes reconfigurations. Determinism is untouched —
//! the forecaster is plain arithmetic over the signal window, so episode
//! logs remain byte-identical for a seed at any thread count.

use cumulus_simkit::time::{SimDuration, SimTime};

use crate::policy::{ActuationFeedback, ScalingPolicy};
use crate::signal::SignalWindow;

/// Seasonal decomposition parameters for [`Forecaster`].
#[derive(Debug, Clone)]
pub struct SeasonalConfig {
    /// The cycle length (e.g. 24 h for a diurnal trace).
    pub period: SimDuration,
    /// Number of phase bins the period is split into. More bins resolve
    /// sharper daily shapes but need more cycles to converge.
    pub bins: usize,
    /// Smoothing weight for the seasonal table, in `(0, 1]`.
    pub gamma: f64,
}

impl SeasonalConfig {
    /// A seasonal table over `period` with a bin per ~15 minutes
    /// (at least 4 bins) and moderate smoothing.
    pub fn quarter_hourly(period: SimDuration) -> SeasonalConfig {
        let bins = ((period.as_secs_f64() / 900.0).round() as usize).max(4);
        SeasonalConfig {
            period,
            bins,
            gamma: 0.3,
        }
    }
}

/// Holt smoothing parameters for [`Forecaster`].
#[derive(Debug, Clone)]
pub struct ForecastConfig {
    /// Level smoothing weight, in `(0, 1]`. Higher tracks faster.
    pub alpha: f64,
    /// Trend smoothing weight, in `(0, 1]`.
    pub beta: f64,
    /// Optional additive seasonal table (phase-of-period components).
    pub seasonal: Option<SeasonalConfig>,
}

impl Default for ForecastConfig {
    fn default() -> Self {
        ForecastConfig {
            alpha: 0.4,
            beta: 0.25,
            seasonal: None,
        }
    }
}

/// Online Holt level + trend forecaster with an optional additive
/// seasonal table.
///
/// Observations arrive one per control tick; the model is O(1) state and
/// O(1) per observation. The trend is kept per *second* so forecasts at
/// arbitrary horizons (and irregular observation gaps) need no notion of
/// a tick length.
#[derive(Debug, Clone)]
pub struct Forecaster {
    /// The active smoothing parameters.
    pub config: ForecastConfig,
    level: f64,
    /// Demand change per second.
    trend_per_sec: f64,
    last_at: Option<SimTime>,
    epoch: Option<SimTime>,
    /// Additive seasonal component per phase bin (empty without a
    /// seasonal config).
    season: Vec<f64>,
}

impl Forecaster {
    /// A forecaster with the given smoothing parameters (weights clamped
    /// to `(0, 1]`; a seasonal `bins` of zero disables the table).
    pub fn new(config: ForecastConfig) -> Forecaster {
        let mut config = ForecastConfig {
            alpha: config.alpha.clamp(0.01, 1.0),
            beta: config.beta.clamp(0.01, 1.0),
            ..config
        };
        if let Some(s) = &config.seasonal {
            if s.bins == 0 || s.period <= SimDuration::ZERO {
                config.seasonal = None;
            }
        }
        let season = config
            .seasonal
            .as_ref()
            .map(|s| vec![0.0; s.bins])
            .unwrap_or_default();
        Forecaster {
            config,
            level: 0.0,
            trend_per_sec: 0.0,
            last_at: None,
            epoch: None,
            season,
        }
    }

    /// Whether at least one observation was absorbed.
    pub fn primed(&self) -> bool {
        self.last_at.is_some()
    }

    /// The current deseasonalized level.
    pub fn level(&self) -> f64 {
        self.level
    }

    /// The current trend, in demand units per second.
    pub fn trend_per_sec(&self) -> f64 {
        self.trend_per_sec
    }

    fn bin_of(&self, at: SimTime) -> Option<usize> {
        let s = self.config.seasonal.as_ref()?;
        let epoch = self.epoch?;
        let period_us = s.period.as_micros();
        let phase = at.since(epoch).as_micros() % period_us;
        Some(((phase as u128 * s.bins as u128) / period_us as u128) as usize % s.bins)
    }

    fn season_at(&self, at: SimTime) -> f64 {
        self.bin_of(at)
            .and_then(|b| self.season.get(b).copied())
            .unwrap_or(0.0)
    }

    /// Absorb one observation of the demand signal at `at`. Observations
    /// must arrive in nondecreasing time order (control ticks do); a
    /// repeated timestamp only refreshes the level.
    pub fn observe(&mut self, at: SimTime, value: f64) {
        if !value.is_finite() {
            return; // a poisoned sample must not corrupt the model
        }
        self.epoch.get_or_insert(at);
        let deseason = value - self.season_at(at);
        match self.last_at {
            None => {
                self.level = deseason.max(0.0);
                self.trend_per_sec = 0.0;
            }
            Some(last) => {
                let dt = at.since(last).as_secs_f64();
                let predicted = self.level + self.trend_per_sec * dt;
                let new_level =
                    self.config.alpha * deseason + (1.0 - self.config.alpha) * predicted;
                if dt > 0.0 {
                    let observed_trend = (new_level - self.level) / dt;
                    self.trend_per_sec = self.config.beta * observed_trend
                        + (1.0 - self.config.beta) * self.trend_per_sec;
                }
                self.level = new_level;
            }
        }
        self.last_at = Some(at);
        if let (Some(bin), Some(s)) = (self.bin_of(at), self.config.seasonal.as_ref()) {
            let residual = value - self.level;
            self.season[bin] = s.gamma * residual + (1.0 - s.gamma) * self.season[bin];
        }
    }

    /// Forecast the demand at `at` (typically `now + lead`). Linear
    /// level + trend extrapolation from the last observation, plus the
    /// seasonal component of the target phase; floored at zero — demand
    /// cannot be negative. Unprimed forecasters report zero.
    pub fn forecast(&self, at: SimTime) -> f64 {
        let Some(last) = self.last_at else {
            return 0.0;
        };
        let horizon = at.since(last).as_secs_f64();
        (self.level + self.trend_per_sec * horizon + self.season_at(at)).max(0.0)
    }
}

/// Parameters for [`Predictive`].
#[derive(Debug, Clone)]
pub struct PredictiveConfig {
    /// Backlog each worker is expected to absorb (as
    /// [`QueueStep`][crate::policy::QueueStep]).
    pub jobs_per_worker: usize,
    /// Never fewer workers than this.
    pub min_workers: usize,
    /// Never more workers than this.
    pub max_workers: usize,
    /// Prior on the scale-out decision-to-ready latency, used until the
    /// first actuation feedback arrives.
    pub initial_lead: SimDuration,
    /// EWMA weight for learned lead observations, in `(0, 1]`.
    pub lead_smoothing: f64,
    /// Forecaster smoothing (and optional seasonal table).
    pub forecast: ForecastConfig,
}

impl Default for PredictiveConfig {
    fn default() -> Self {
        PredictiveConfig {
            jobs_per_worker: 3,
            min_workers: 0,
            max_workers: 8,
            initial_lead: SimDuration::from_mins(8),
            lead_smoothing: 0.5,
            forecast: ForecastConfig::default(),
        }
    }
}

/// Forecast-ahead scaling: size the fleet for the demand expected when a
/// scale-out issued *now* would come online.
///
/// Each tick the policy feeds the observed backlog into its
/// [`Forecaster`] and converts the forecast at `now + lead` into a
/// worker target (`ceil(demand / jobs_per_worker)`, clamped to the
/// configured bounds). `lead` starts at the configured prior and is
/// re-estimated from every scale-out's actuation feedback — the
/// controller reports `done_at` when it issues the reconfiguration, so
/// the policy learns the *actual* boot + converge latency of the fleet
/// it is driving rather than trusting a constant.
///
/// Two safety rails keep the forecast honest:
///
/// * the target never drops below what the *observed* backlog requires
///   (`ceil(backlog / jobs_per_worker)`) — the forecast only ever adds
///   capacity ahead of need, so a wrong low forecast cannot starve
///   queued work;
/// * smoothing (EWMA level/trend) means single-tick spikes move the
///   target a little, not all the way, so the bare policy does not flap
///   even without a [`Hysteresis`][crate::policy::Hysteresis] wrapper.
#[derive(Debug, Clone)]
pub struct Predictive {
    /// The active configuration.
    pub config: PredictiveConfig,
    forecaster: Forecaster,
    lead_secs: f64,
    lead_learned: bool,
}

impl Predictive {
    /// A predictive policy under `config`.
    pub fn new(config: PredictiveConfig) -> Predictive {
        let forecaster = Forecaster::new(config.forecast.clone());
        let lead_secs = config.initial_lead.as_secs_f64();
        Predictive {
            config,
            forecaster,
            lead_secs,
            lead_learned: false,
        }
    }

    /// The lead time the policy currently provisions ahead by.
    pub fn lead(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.lead_secs)
    }

    /// Whether the lead has been learned from actuation feedback (vs the
    /// configured prior).
    pub fn lead_learned(&self) -> bool {
        self.lead_learned
    }

    /// Read access to the underlying forecaster.
    pub fn forecaster(&self) -> &Forecaster {
        &self.forecaster
    }
}

impl ScalingPolicy for Predictive {
    fn name(&self) -> String {
        let seasonal = if self.config.forecast.seasonal.is_some() {
            "+seasonal"
        } else {
            ""
        };
        format!("predictive/{}{}", self.config.jobs_per_worker, seasonal)
    }

    fn desired_workers(&mut self, window: &SignalWindow) -> usize {
        let Some(latest) = window.latest() else {
            return self.config.min_workers;
        };
        let now = latest.at;
        let backlog = latest.backlog() as f64;
        self.forecaster.observe(now, backlog);

        let horizon = now + SimDuration::from_secs_f64(self.lead_secs);
        let demand = self.forecaster.forecast(horizon);
        let jpw = self.config.jobs_per_worker.max(1);
        let ahead = (demand / jpw as f64).ceil() as usize;
        // Reactive floor: the forecast only ever *adds* capacity ahead of
        // need — a low forecast must never undercut what the backlog
        // already observed requires, or queued work stalls on a model miss.
        let present = (backlog / jpw as f64).ceil() as usize;
        ahead
            .max(present)
            .clamp(self.config.min_workers, self.config.max_workers)
    }

    fn observe_actuation(&mut self, feedback: &ActuationFeedback) {
        if !feedback.is_scale_out() {
            return;
        }
        let observed = feedback.lead().as_secs_f64();
        if self.lead_learned {
            let w = self.config.lead_smoothing.clamp(0.01, 1.0);
            self.lead_secs = w * observed + (1.0 - w) * self.lead_secs;
        } else {
            self.lead_secs = observed;
            self.lead_learned = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{SignalSample, SignalWindow};

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn window_with(at_secs: u64, queue: usize, running: usize, workers: usize) -> SignalWindow {
        let mut w = SignalWindow::new(4);
        w.push(SignalSample {
            at: t(at_secs),
            queue_depth: queue,
            running,
            workers,
            free_slots: 0,
            utilization: 0.0,
            wait_p50_secs: 0.0,
            wait_p95_secs: 0.0,
        });
        w
    }

    #[test]
    fn forecaster_tracks_a_constant_signal() {
        let mut f = Forecaster::new(ForecastConfig::default());
        for k in 0..20u64 {
            f.observe(t(60 * k), 12.0);
        }
        assert!((f.level() - 12.0).abs() < 1e-6, "level={}", f.level());
        assert!(f.trend_per_sec().abs() < 1e-9);
        assert!((f.forecast(t(20 * 60 + 600)) - 12.0).abs() < 1e-6);
    }

    #[test]
    fn forecaster_extrapolates_a_linear_ramp() {
        // Signal grows 2 per minute; the forecast 5 minutes out must see
        // roughly 10 more than the latest observation.
        let mut f = Forecaster::new(ForecastConfig {
            alpha: 0.5,
            beta: 0.5,
            seasonal: None,
        });
        for k in 0..30u64 {
            f.observe(t(60 * k), 2.0 * k as f64);
        }
        let last = 2.0 * 29.0;
        let ahead = f.forecast(t(29 * 60 + 300));
        assert!(
            (ahead - (last + 10.0)).abs() < 3.0,
            "ahead={ahead}, want ~{}",
            last + 10.0
        );
    }

    #[test]
    fn forecast_never_goes_negative() {
        let mut f = Forecaster::new(ForecastConfig::default());
        for k in 0..10u64 {
            f.observe(t(60 * k), 50.0 - 5.0 * k as f64);
        }
        assert_eq!(f.forecast(t(3 * 3600)), 0.0, "demand cannot be negative");
    }

    #[test]
    fn forecaster_ignores_poisoned_samples() {
        let mut f = Forecaster::new(ForecastConfig::default());
        f.observe(t(0), 5.0);
        f.observe(t(60), f64::NAN);
        f.observe(t(120), f64::INFINITY);
        assert!((f.forecast(t(180)) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn seasonal_table_learns_the_cycle() {
        // A square-wave day: 0 in the first half-period, 20 in the
        // second. After a few cycles the seasonal forecast at a
        // high-phase time must clearly exceed one at a low-phase time.
        let period = SimDuration::from_hours(2);
        let mut f = Forecaster::new(ForecastConfig {
            alpha: 0.2,
            beta: 0.05,
            seasonal: Some(SeasonalConfig {
                period,
                bins: 8,
                gamma: 0.5,
            }),
        });
        let period_s = period.as_secs_f64() as u64;
        for k in 0..(6 * period_s / 300) {
            let at = t(300 * k);
            let phase = (300 * k) % period_s;
            let v = if phase < period_s / 2 { 0.0 } else { 20.0 };
            f.observe(at, v);
        }
        let last = 6 * period_s / 300 * 300;
        // Forecast one full period ahead at both phases.
        let low = f.forecast(t(last + period_s / 4));
        let high = f.forecast(t(last + 3 * period_s / 4));
        assert!(
            high > low + 5.0,
            "seasonal shape not learned: low={low} high={high}"
        );
    }

    fn ramp_config() -> PredictiveConfig {
        PredictiveConfig {
            jobs_per_worker: 3,
            min_workers: 0,
            max_workers: 100,
            initial_lead: SimDuration::from_mins(8),
            lead_smoothing: 0.5,
            forecast: ForecastConfig {
                alpha: 0.6,
                beta: 0.5,
                seasonal: None,
            },
        }
    }

    #[test]
    fn predictive_sizes_for_the_forecast_not_the_present() {
        let mut p = Predictive::new(ramp_config());
        // Ramp: backlog grows 3 per tick. With a 8-minute lead the policy
        // must ask for more than the present backlog needs.
        let mut last = 0;
        for k in 0..10u64 {
            let backlog = (3 * k) as usize;
            last = p.desired_workers(&window_with(60 * k, backlog, 0, last));
        }
        let present_need = (27f64 / 3.0).ceil() as usize;
        assert!(
            last > present_need,
            "predictive target {last} did not lead the ramp (present need {present_need})"
        );
    }

    #[test]
    fn predictive_learns_the_lead_from_feedback() {
        let mut p = Predictive::new(PredictiveConfig::default());
        assert!(!p.lead_learned());
        assert_eq!(p.lead(), SimDuration::from_mins(8));
        p.observe_actuation(&ActuationFeedback {
            at: t(0),
            from: 0,
            to: 4,
            done_at: t(360),
        });
        assert!(p.lead_learned());
        assert_eq!(p.lead(), SimDuration::from_secs(360));
        // Scale-ins carry no boot latency signal and must not move it.
        p.observe_actuation(&ActuationFeedback {
            at: t(600),
            from: 4,
            to: 2,
            done_at: t(601),
        });
        assert_eq!(p.lead(), SimDuration::from_secs(360));
        // A second scale-out blends in (EWMA, weight 0.5).
        p.observe_actuation(&ActuationFeedback {
            at: t(1200),
            from: 2,
            to: 6,
            done_at: t(1200 + 480),
        });
        assert_eq!(p.lead(), SimDuration::from_secs(420));
    }

    #[test]
    fn predictive_keeps_a_reactive_floor_for_queued_work() {
        let mut p = Predictive::new(PredictiveConfig::default());
        // Long-idle system: forecast is zero. A job appears — the floor
        // must provide at least one worker even though the forecast says
        // the demand is gone.
        for k in 0..5u64 {
            p.desired_workers(&window_with(60 * k, 0, 0, 0));
        }
        assert_eq!(p.desired_workers(&window_with(300, 1, 0, 0)), 1);
    }

    #[test]
    fn predictive_names_are_stable() {
        assert_eq!(
            Predictive::new(PredictiveConfig::default()).name(),
            "predictive/3"
        );
        let seasonal = PredictiveConfig {
            forecast: ForecastConfig {
                seasonal: Some(SeasonalConfig::quarter_hourly(SimDuration::from_hours(6))),
                ..ForecastConfig::default()
            },
            ..PredictiveConfig::default()
        };
        assert_eq!(Predictive::new(seasonal).name(), "predictive/3+seasonal");
    }
}

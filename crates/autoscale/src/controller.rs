//! The closed-loop controller and the episode driver that runs it
//! inside the DES.
//!
//! Each control tick the [`AutoScaler`] samples the pool into its signal
//! window, asks its policy for a desired worker count, and actuates the
//! difference through the provision layer's delta-based scaling API. Two
//! safety rules are enforced here, not in policies:
//!
//! * **no double-scaling** — while a reconfiguration is in flight the
//!   controller holds, whatever the policy wants;
//! * **drain-before-remove** — scale-in only releases trailing workers
//!   that are not executing a job; a busy tail blocks (and the provision
//!   layer drains regardless, so a running job can never be lost).
//!
//! Every tick produces a [`Decision`] appended to an [`ActivityLog`]
//! whose rendering is byte-for-byte deterministic for a given seed — the
//! audit trail the determinism suite fingerprints.

use cumulus_cloud::InstanceType;
use cumulus_provision::deploy::{GpCloud, GpError, GpInstanceId};
use cumulus_provision::Topology;
use cumulus_simkit::engine::Sim;
use cumulus_simkit::metrics::{MetricId, Metrics};
use cumulus_simkit::runner::{run_replicas, ReplicaPlan};
use cumulus_simkit::telemetry::{span::keys as span_keys, Key, Payload, Telemetry};
use cumulus_simkit::time::{SimDuration, SimTime};
use cumulus_store::CacheFleet;

use crate::policy::{ActuationFeedback, ScalingPolicy};
use crate::signal::{percentile, SignalSample, SignalWindow};
use crate::workload::Workload;

/// Metrics keys the controller records (see [`cumulus_simkit::metrics`]).
pub mod keys {
    /// Counter: control ticks evaluated.
    pub const TICKS: &str = "autoscale/ticks";
    /// Counter: scale-out actions issued.
    pub const SCALE_OUT: &str = "autoscale/scale_out";
    /// Counter: scale-in actions issued.
    pub const SCALE_IN: &str = "autoscale/scale_in";
    /// Counter: ticks held because a reconfiguration was in flight.
    pub const HOLD_IN_FLIGHT: &str = "autoscale/hold_in_flight";
    /// Counter: scale-ins blocked because the tail worker was busy.
    pub const HOLD_DRAIN: &str = "autoscale/hold_drain_blocked";
    /// Counter: scale-ins deferred because the removable tail was cache-warm
    /// while a colder worker would be retained.
    pub const HOLD_CACHE: &str = "autoscale/hold_cache_warm";
    /// Gauge: workers after the most recent tick.
    pub const WORKERS: &str = "autoscale/workers";
}

/// Pre-registered [`MetricId`] handles for every [`keys`] entry, so the
/// control loop's hot path never hashes a key string.
#[derive(Debug, Clone, Copy)]
struct ScalerMetricIds {
    ticks: MetricId,
    scale_out: MetricId,
    scale_in: MetricId,
    hold_in_flight: MetricId,
    hold_drain: MetricId,
    hold_cache: MetricId,
    workers: MetricId,
}

impl ScalerMetricIds {
    fn register() -> ScalerMetricIds {
        ScalerMetricIds {
            ticks: MetricId::register(keys::TICKS),
            scale_out: MetricId::register(keys::SCALE_OUT),
            scale_in: MetricId::register(keys::SCALE_IN),
            hold_in_flight: MetricId::register(keys::HOLD_IN_FLIGHT),
            hold_drain: MetricId::register(keys::HOLD_DRAIN),
            hold_cache: MetricId::register(keys::HOLD_CACHE),
            workers: MetricId::register(keys::WORKERS),
        }
    }
}

/// Why a tick did not change the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HoldReason {
    /// A previous reconfiguration has not completed yet.
    InFlight,
    /// The policy is satisfied with the current size.
    NoChange,
    /// Scale-in wanted, but every removable (tail) worker is busy.
    DrainBlocked,
    /// Scale-in deferred: the removable tail holds cached data while a
    /// colder worker would survive (bounded by
    /// [`ControllerConfig::max_cache_holds`]).
    CacheWarm,
}

/// What a control tick did.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Nothing actuated.
    Hold(HoldReason),
    /// Workers added: `from` → `to`.
    ScaleOut {
        /// Workers before.
        from: usize,
        /// Workers after.
        to: usize,
    },
    /// Workers released: `from` → `to`.
    ScaleIn {
        /// Workers before.
        from: usize,
        /// Workers after.
        to: usize,
    },
}

/// One audited control decision.
#[derive(Debug, Clone)]
pub struct Decision {
    /// Tick time.
    pub at: SimTime,
    /// The signals the decision was made on.
    pub sample: SignalSample,
    /// What the policy asked for (current size on an in-flight hold,
    /// where the policy is not consulted).
    pub desired: usize,
    /// What was done.
    pub action: Action,
    /// When the actuated reconfiguration completes, for scale actions.
    pub done_at: Option<SimTime>,
}

impl Decision {
    fn render(&self) -> String {
        let s = &self.sample;
        let action = match &self.action {
            Action::Hold(HoldReason::InFlight) => "hold (reconfig in flight)".to_string(),
            Action::Hold(HoldReason::NoChange) => "hold".to_string(),
            Action::Hold(HoldReason::DrainBlocked) => "hold (drain blocked)".to_string(),
            Action::Hold(HoldReason::CacheWarm) => "hold (cache warm)".to_string(),
            Action::ScaleOut { from, to } => format!("scale-out {from}->{to}"),
            Action::ScaleIn { from, to } => format!("scale-in {from}->{to}"),
        };
        let done = match self.done_at {
            Some(d) => format!(" (done {d})"),
            None => String::new(),
        };
        format!(
            "[{at}] q={q} r={r} w={w} util={u:.2} p95w={p:.1}s desired={d} | {action}{done}",
            at = self.at,
            q = s.queue_depth,
            r = s.running,
            w = s.workers,
            u = s.utilization,
            p = s.wait_p95_secs,
            d = self.desired,
        )
    }
}

/// The append-only scaling-activity log: every decision of a run, in tick
/// order, renderable to a deterministic text audit trail.
#[derive(Debug, Clone, Default)]
pub struct ActivityLog {
    /// Decisions in tick order.
    pub entries: Vec<Decision>,
}

impl ActivityLog {
    /// Number of decisions recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no decision was recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Scale-out actions recorded.
    pub fn scale_outs(&self) -> usize {
        self.entries
            .iter()
            .filter(|d| matches!(d.action, Action::ScaleOut { .. }))
            .count()
    }

    /// Scale-in actions recorded.
    pub fn scale_ins(&self) -> usize {
        self.entries
            .iter()
            .filter(|d| matches!(d.action, Action::ScaleIn { .. }))
            .count()
    }

    /// Render the audit trail, one line per decision. For a fixed seed the
    /// output is byte-identical run to run (the determinism suite relies
    /// on this).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.entries {
            out.push_str(&d.render());
            out.push('\n');
        }
        out
    }
}

/// Controller parameters.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Control-loop period.
    pub tick: SimDuration,
    /// Signal-window capacity, in samples.
    pub window: usize,
    /// Instance type for workers the controller launches.
    pub worker_type: InstanceType,
    /// The data plane's cache fleet, when the deployment runs worker
    /// caches. `None` (the default) disables cache-aware scale-in
    /// entirely, leaving decisions byte-identical to a store-less build.
    pub cache_fleet: Option<CacheFleet>,
    /// Consecutive cache-warm holds tolerated before a scale-in proceeds
    /// anyway (removal is positional, so the tail cannot cool off
    /// forever; this bounds the cost deferral).
    pub max_cache_holds: u32,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            tick: SimDuration::from_secs(60),
            window: 5,
            worker_type: InstanceType::C1Medium,
            cache_fleet: None,
            max_cache_holds: 3,
        }
    }
}

/// The closed-loop elasticity controller.
pub struct AutoScaler {
    policy: Box<dyn ScalingPolicy>,
    /// Active configuration.
    pub config: ControllerConfig,
    window: SignalWindow,
    in_flight_until: Option<SimTime>,
    /// Consecutive cache-warm holds since the last actuation.
    cache_holds: u32,
    /// Audit trail of every decision taken.
    pub log: ActivityLog,
    /// Counters and gauges (see [`keys`]).
    pub metrics: Metrics,
    ids: ScalerMetricIds,
    telemetry: Telemetry,
}

impl AutoScaler {
    /// A controller driving `policy` under `config`.
    pub fn new(policy: Box<dyn ScalingPolicy>, config: ControllerConfig) -> AutoScaler {
        let window = SignalWindow::new(config.window);
        AutoScaler {
            policy,
            config,
            window,
            in_flight_until: None,
            cache_holds: 0,
            log: ActivityLog::default(),
            metrics: Metrics::new(),
            ids: ScalerMetricIds::register(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attach a telemetry handle; each decision is then mirrored as a
    /// typed event ([`ActivityLog`] stays the renderable view).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The policy's log name.
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// Whether a reconfiguration issued earlier is still in flight at `now`.
    pub fn in_flight(&self, now: SimTime) -> bool {
        self.in_flight_until.is_some_and(|until| now < until)
    }

    /// Run one control tick against the instance: sample, decide, actuate.
    /// Returns the recorded decision (also appended to [`log`][Self::log]).
    pub fn tick(
        &mut self,
        now: SimTime,
        cloud: &mut GpCloud,
        id: &GpInstanceId,
    ) -> Result<Decision, GpError> {
        self.metrics.incr_id(self.ids.ticks, 1);
        let inst = cloud.instance(id)?;
        let workers = inst.topology.workers.len();
        let sample = SignalSample::observe(now, &inst.pool, workers);
        self.window.push(sample.clone());

        // Rule 1: never stack reconfigurations. The policy is not even
        // consulted, so stateful policies (one-shot latches, cooldown
        // clocks) see only actionable ticks.
        if let Some(until) = self.in_flight_until {
            if now < until {
                self.metrics.incr_id(self.ids.hold_in_flight, 1);
                return Ok(self.record(Decision {
                    at: now,
                    sample,
                    desired: workers,
                    action: Action::Hold(HoldReason::InFlight),
                    done_at: None,
                }));
            }
            self.in_flight_until = None;
        }

        let desired = self.policy.desired_workers(&self.window);
        let decision = if desired > workers {
            let report = cloud.scale_workers(now, id, desired, self.config.worker_type)?;
            let done = report.done_at(now);
            self.in_flight_until = Some(done);
            self.metrics.incr_id(self.ids.scale_out, 1);
            self.policy.observe_actuation(&ActuationFeedback {
                at: now,
                from: workers,
                to: desired,
                done_at: done,
            });
            Decision {
                at: now,
                sample,
                desired,
                action: Action::ScaleOut {
                    from: workers,
                    to: desired,
                },
                done_at: Some(done),
            }
        } else if desired < workers {
            // Rule 2: only release trailing workers that are idle. Removal
            // is positional from the tail, so stop at the first busy one.
            let mut to = workers;
            while to > desired && !cloud.worker_busy(id, to - 1)? {
                to -= 1;
            }
            if to == workers {
                self.metrics.incr_id(self.ids.hold_drain, 1);
                Decision {
                    at: now,
                    sample,
                    desired,
                    action: Action::Hold(HoldReason::DrainBlocked),
                    done_at: None,
                }
            } else if self.cache_warm_hold(id, to, workers) {
                // Rule 3 (data plane only): removal is positional, so a
                // cache-warm tail would be evicted while a colder worker
                // survives. Hold a bounded number of ticks to let the
                // warmth drain (jobs rank toward warm workers, so the
                // tail going un-matched usually means it is cooling off).
                self.cache_holds += 1;
                self.metrics.incr_id(self.ids.hold_cache, 1);
                Decision {
                    at: now,
                    sample,
                    desired,
                    action: Action::Hold(HoldReason::CacheWarm),
                    done_at: None,
                }
            } else {
                let report = cloud.scale_workers(now, id, to, self.config.worker_type)?;
                let done = report.done_at(now);
                self.in_flight_until = Some(done);
                self.metrics.incr_id(self.ids.scale_in, 1);
                self.cache_holds = 0;
                if let Some(fleet) = &self.config.cache_fleet {
                    // The released workers' instance storage is gone with
                    // them — their caches must not satisfy later lookups.
                    for idx in to..workers {
                        fleet.drop_worker(&format!("{id}.worker-{idx}"));
                    }
                }
                self.policy.observe_actuation(&ActuationFeedback {
                    at: now,
                    from: workers,
                    to,
                    done_at: done,
                });
                Decision {
                    at: now,
                    sample,
                    desired,
                    action: Action::ScaleIn { from: workers, to },
                    done_at: Some(done),
                }
            }
        } else {
            Decision {
                at: now,
                sample,
                desired,
                action: Action::Hold(HoldReason::NoChange),
                done_at: None,
            }
        };
        let after = cloud.instance(id)?.topology.workers.len();
        self.metrics.set_gauge_id(self.ids.workers, after as f64);
        Ok(self.record(decision))
    }

    /// Whether releasing workers `to..workers` should be deferred for
    /// cache warmth: some removed worker holds cached bytes while a
    /// strictly colder one would be retained, and the consecutive-hold
    /// budget is not exhausted. Without a fleet this is always `false`.
    fn cache_warm_hold(&self, id: &GpInstanceId, to: usize, workers: usize) -> bool {
        let Some(fleet) = &self.config.cache_fleet else {
            return false;
        };
        if self.cache_holds >= self.config.max_cache_holds {
            return false;
        }
        let bytes = |idx: usize| fleet.cached_bytes(&format!("{id}.worker-{idx}"));
        let Some(min_removed) = (to..workers).map(bytes).min() else {
            return false;
        };
        if min_removed.is_zero() {
            // At least one removed worker is stone cold; the positional
            // truncation is not obviously wrong, so let it proceed.
            return false;
        }
        (0..to).any(|idx| bytes(idx) < min_removed)
    }

    fn record(&mut self, decision: Decision) -> Decision {
        if self.telemetry.is_enabled() {
            let (key, payload) = match decision.action {
                Action::ScaleOut { from, to } => {
                    (span_keys::SCALE_OUT, Payload::Pair(from as u64, to as u64))
                }
                Action::ScaleIn { from, to } => {
                    (span_keys::SCALE_IN, Payload::Pair(from as u64, to as u64))
                }
                Action::Hold(reason) => {
                    let code = match reason {
                        HoldReason::InFlight => 0,
                        HoldReason::NoChange => 1,
                        HoldReason::DrainBlocked => 2,
                        HoldReason::CacheWarm => 3,
                    };
                    (span_keys::SCALE_HOLD, Payload::Count(code))
                }
            };
            self.telemetry
                .record(decision.at, "autoscale", Key::intern(key), payload);
        }
        self.log.entries.push(decision.clone());
        decision
    }
}

// ---------------------------------------------------------------------
// Episode driver
// ---------------------------------------------------------------------

/// Simulation worlds that own a [`GpCloud`] — the seam the episode
/// drivers share so deferred-join scheduling lives in exactly one place.
pub(crate) trait CloudHost {
    /// The cloud the episode runs against.
    fn cloud_mut(&mut self) -> &mut GpCloud;
}

/// Hold the freshly-launched `worker-{idx}` machines out of the pool and
/// schedule their joins at `done` (provisioning-complete time).
///
/// The worker's instance type is re-read from the topology **at join
/// time**, not captured at scale-out time: the slot may be scaled away
/// and re-launched as a different type while the join event is in
/// flight, and a machine built from the stale type would disagree with
/// `topology.workers[idx]` on compute units and memory.
pub(crate) fn defer_worker_joins<W: CloudHost + 'static>(
    sim: &mut Sim<W>,
    id: &GpInstanceId,
    from: usize,
    to: usize,
    done: SimTime,
) {
    for idx in from..to {
        defer_worker_join(sim, id, idx, done);
    }
}

/// Hold `worker-{idx}`'s machine out of the pool and schedule its join at
/// `done` — one slot of [`defer_worker_joins`], also used by the spot
/// repair path where replacement slots are not a contiguous range.
pub(crate) fn defer_worker_join<W: CloudHost + 'static>(
    sim: &mut Sim<W>,
    id: &GpInstanceId,
    idx: usize,
    done: SimTime,
) {
    let machine_name = format!("{id}.worker-{idx}");
    if let Ok(inst) = sim.world.cloud_mut().instance_mut(id) {
        let _ = inst.pool.drain_machine(&machine_name);
    }
    let jid = id.clone();
    sim.schedule_at(done, move |sim| {
        let now = sim.now();
        let Ok(inst) = sim.world.cloud_mut().instance_mut(&jid) else {
            return;
        };
        // The worker may have been scaled away again meanwhile; if it
        // was re-launched, its current type is authoritative.
        let Some(wtype) = inst.topology.workers.get(idx).copied() else {
            return;
        };
        let machine = cumulus_htc::Machine::new(
            &format!("{jid}.worker-{idx}"),
            wtype.compute_units(),
            (wtype.memory_gb() * 1024.0) as i64,
            1,
        );
        let _ = inst.pool.add_machine(machine);
        if let Ok(inst) = sim.world.cloud_mut().instance_mut(&jid) {
            inst.pool.negotiate(now);
        }
    });
}

/// Everything measured over one workload episode.
#[derive(Debug, Clone)]
pub struct EpisodeReport {
    /// Policy log name.
    pub policy: String,
    /// Workload trace name.
    pub workload: String,
    /// When the deployment was ready (episode start).
    pub ready_at: SimTime,
    /// When the queue drained and the cluster was torn down.
    pub end_at: SimTime,
    /// Ready → last job completion, minutes.
    pub makespan_mins: f64,
    /// EC2 spend over `[ready_at, end_at]`, dollars.
    pub cost_usd: f64,
    /// Median job wait (submission → start), minutes.
    pub wait_p50_mins: f64,
    /// 95th-percentile job wait, minutes.
    pub wait_p95_mins: f64,
    /// Jobs completed.
    pub jobs: usize,
    /// Largest worker count the controller reached.
    pub peak_workers: usize,
    /// The full audit trail.
    pub log: ActivityLog,
}

struct EpisodeWorld {
    cloud: GpCloud,
    scaler: AutoScaler,
    total_jobs: usize,
    submitted: usize,
    end_at: Option<SimTime>,
}

impl CloudHost for EpisodeWorld {
    fn cloud_mut(&mut self) -> &mut GpCloud {
        &mut self.cloud
    }
}

/// Deploy a single-node Galaxy instance, run `workload` through it under
/// `policy`, and tear the cluster down when the queue drains.
///
/// The whole episode runs inside the DES: arrivals are events, the
/// controller is a recurring tick, and worker *joins are deferred* — a
/// scaled-out worker only starts accepting jobs once its provisioning
/// (boot + converge) completes, so reaction lag is paid honestly by every
/// policy.
///
/// # Panics
/// Panics if the deployment fails or the episode exceeds its step budget
/// (both indicate a model bug, not a data-dependent condition).
pub fn run_episode(
    seed: u64,
    policy: Box<dyn ScalingPolicy>,
    config: ControllerConfig,
    workload: &Workload,
) -> EpisodeReport {
    let mut cloud = GpCloud::deterministic(seed);
    let id = cloud.create_instance(Topology::single_node(InstanceType::M1Small));
    let ready = cloud
        .start_instance(SimTime::ZERO, &id)
        .expect("single-node deployment succeeds")
        .ready_at;
    let scaler = AutoScaler::new(policy, config.clone());
    let policy_name = scaler.policy_name();

    let mut sim = Sim::new(EpisodeWorld {
        cloud,
        scaler,
        total_jobs: workload.len(),
        submitted: 0,
        end_at: None,
    });
    sim.fast_forward(ready);

    // Arrivals: submit and negotiate immediately (job starts are not
    // quantized to the control tick; completions settle each tick).
    for a in &workload.arrivals {
        let aid = id.clone();
        let owner = a.owner.clone();
        let work = a.work;
        sim.schedule_at(ready + a.at, move |sim| {
            let now = sim.now();
            let w = &mut sim.world;
            if let Ok(inst) = w.cloud.instance_mut(&aid) {
                inst.pool.submit(cumulus_htc::Job::new(&owner, work), now);
                inst.pool.settle(now);
                inst.pool.negotiate(now);
            }
            w.submitted += 1;
        });
    }

    // The control loop.
    let tid = id.clone();
    sim.schedule_every(ready, config.tick, move |sim| {
        let now = sim.now();
        let decision = {
            let w = &mut sim.world;
            if let Ok(inst) = w.cloud.instance_mut(&tid) {
                inst.pool.settle(now);
            }
            w.scaler
                .tick(now, &mut w.cloud, &tid)
                .expect("controller tick against a running instance")
        };

        // Deferred join: freshly-launched workers leave the pool until
        // their provisioning completes, then an event re-adds them. This
        // must happen before the queue is renegotiated below — otherwise
        // jobs match onto machines that are still provisioning.
        if let (Action::ScaleOut { from, to }, Some(done)) = (&decision.action, decision.done_at) {
            defer_worker_joins(sim, &tid, *from, *to, done);
        }

        // Match queued jobs onto whatever capacity is actually online.
        let w = &mut sim.world;
        if let Ok(inst) = w.cloud.instance_mut(&tid) {
            inst.pool.negotiate(now);
        }

        // Episode end: everything submitted and drained → tear down.
        let inst = w.cloud.instance(&tid).expect("instance exists");
        let drained = w.submitted == w.total_jobs
            && inst.pool.idle_count() == 0
            && inst.pool.running_count() == 0;
        if drained {
            let wtype = w.scaler.config.worker_type;
            let _ = w.cloud.scale_workers(now, &tid, 0, wtype);
            w.end_at = Some(now);
            false
        } else {
            true
        }
    });

    let _ = sim.run(SimTime::MAX, 50_000_000);
    let end_at = sim.world.end_at.expect("episode drains within budget");

    let world = sim.world;
    let pool = &world.cloud.instance(&id).expect("instance exists").pool;
    let waits_mins: Vec<f64> = pool
        .completed_waits()
        .iter()
        .map(|d| d.as_mins_f64())
        .collect();
    let makespan_mins = pool
        .last_completion_at()
        .map(|t| t.since(ready).as_mins_f64())
        .unwrap_or(0.0);
    let log = world.scaler.log;
    EpisodeReport {
        policy: policy_name,
        workload: workload.name.clone(),
        ready_at: ready,
        end_at,
        makespan_mins,
        cost_usd: world.cloud.ec2.ledger.window_cost(ready, end_at),
        wait_p50_mins: percentile(&waits_mins, 0.50),
        wait_p95_mins: percentile(&waits_mins, 0.95),
        jobs: waits_mins.len(),
        peak_workers: log
            .entries
            .iter()
            .map(|d| d.sample.workers)
            .max()
            .unwrap_or(0),
        log,
    }
}

/// Run `combos` independent policy episodes against the same workload and
/// seed, fanned out over the parallel replica runner, and return the
/// reports **in combo order**.
///
/// Each combo `i` runs `run_episode(seed, make_policy(i), …)` — the same
/// call a serial loop would make, with the same seed, so a parallel sweep
/// is byte-identical to a serial one (episodes are fully deterministic
/// given their seed, and the runner merges results by combo index, not by
/// completion order). `threads == 0` sizes the pool to the machine; pass
/// `1` to force a serial sweep.
pub fn run_sweep<F>(
    seed: u64,
    combos: usize,
    make_policy: F,
    config: &ControllerConfig,
    workload: &Workload,
    threads: usize,
) -> Vec<EpisodeReport>
where
    F: Fn(usize) -> Box<dyn ScalingPolicy> + Sync,
{
    let plan = ReplicaPlan::new(seed, combos).with_threads(threads);
    run_replicas(plan, |i, _seeds| {
        run_episode(seed, make_policy(i), config.clone(), workload)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Fixed, Hysteresis, HysteresisConfig, QueueStep};
    use cumulus_htc::{Job, JobState, WorkSpec};

    fn running_single(seed: u64) -> (GpCloud, GpInstanceId, SimTime) {
        let mut cloud = GpCloud::deterministic(seed);
        let id = cloud.create_instance(Topology::single_node(InstanceType::M1Small));
        let ready = cloud.start_instance(SimTime::ZERO, &id).unwrap().ready_at;
        (cloud, id, ready)
    }

    fn queue_jobs(cloud: &mut GpCloud, id: &GpInstanceId, n: usize, at: SimTime) {
        let inst = cloud.instance_mut(id).unwrap();
        for _ in 0..n {
            inst.pool.submit(
                Job::new("u", WorkSpec::serial(3600.0)).requirements("ComputeUnits >= 2"),
                at,
            );
        }
    }

    #[test]
    fn no_decision_issued_while_reconfig_in_flight() {
        let (mut cloud, id, ready) = running_single(101);
        let mut scaler = AutoScaler::new(Box::new(QueueStep::new(1)), ControllerConfig::default());
        queue_jobs(&mut cloud, &id, 4, ready);
        let d1 = scaler.tick(ready, &mut cloud, &id).unwrap();
        assert!(matches!(d1.action, Action::ScaleOut { from: 0, to: 4 }));
        let done = d1.done_at.unwrap();
        assert!(done > ready, "provisioning takes time");
        assert!(scaler.in_flight(ready + SimDuration::from_secs(1)));

        // More work shows up mid-flight: the controller must hold.
        queue_jobs(&mut cloud, &id, 6, ready + SimDuration::from_secs(60));
        let d2 = scaler
            .tick(ready + SimDuration::from_secs(60), &mut cloud, &id)
            .unwrap();
        assert_eq!(d2.action, Action::Hold(HoldReason::InFlight));
        assert_eq!(cloud.worker_count(&id).unwrap(), 4, "no double-scaling");
        assert_eq!(scaler.metrics.counter(keys::HOLD_IN_FLIGHT), 1);

        // Once the reconfiguration lands the controller acts again.
        let after = done + SimDuration::from_secs(1);
        assert!(!scaler.in_flight(after));
        let d3 = scaler.tick(after, &mut cloud, &id).unwrap();
        assert!(
            matches!(d3.action, Action::ScaleOut { from: 4, .. }),
            "got {:?}",
            d3.action
        );
        assert!(scaler.in_flight(after), "the new reconfig is in flight");
    }

    #[test]
    fn scale_in_never_terminates_a_machine_with_a_running_job() {
        let (mut cloud, id, ready) = running_single(102);
        cloud
            .scale_workers(ready, &id, 2, InstanceType::C1Medium)
            .unwrap();
        let start = ready + SimDuration::from_mins(20);
        // Pin a long job to the TAIL worker.
        let jid = {
            let inst = cloud.instance_mut(&id).unwrap();
            let machine = format!("{id}.worker-1");
            let jid = inst.pool.submit(
                Job::new("u", WorkSpec::serial(7200.0))
                    .try_requirements(&format!("Machine == \"{machine}\""))
                    .expect("machine pin expression"),
                start,
            );
            inst.pool.negotiate(start);
            jid
        };
        let mut scaler = AutoScaler::new(Box::new(Fixed(0)), ControllerConfig::default());
        let d = scaler.tick(start, &mut cloud, &id).unwrap();
        // The busy tail blocks the whole scale-in.
        assert_eq!(d.action, Action::Hold(HoldReason::DrainBlocked));
        assert_eq!(cloud.worker_count(&id).unwrap(), 2);
        let job = cloud.instance(&id).unwrap().pool.job(jid).unwrap();
        assert_eq!(job.state, JobState::Running);
        assert_eq!(job.evictions, 0);
        assert_eq!(scaler.metrics.counter(keys::HOLD_DRAIN), 1);
    }

    #[test]
    fn drain_blocked_scale_in_retries_next_tick_not_after_cooldown() {
        // Regression: Hysteresis used to stamp `last_scale_in` the moment
        // it *surfaced* a lower target, but the controller may then hold
        // with DrainBlocked (busy tail worker). The phantom cooldown
        // deferred the retry for the full scale_in_cooldown (10 min
        // default) even after the tail went idle. With cooldowns stamped
        // from actuation feedback, the retry lands on the very next tick.
        let (mut cloud, id, ready) = running_single(105);
        cloud
            .scale_workers(ready, &id, 2, InstanceType::C1Medium)
            .unwrap();
        let t0 = ready + SimDuration::from_mins(20);
        // Pin a SHORT job to the tail worker: busy at t0, done before the
        // next tick.
        {
            let inst = cloud.instance_mut(&id).unwrap();
            let machine = format!("{id}.worker-1");
            inst.pool.submit(
                Job::new("u", WorkSpec::serial(30.0))
                    .try_requirements(&format!("Machine == \"{machine}\""))
                    .expect("machine pin expression"),
                t0,
            );
            inst.pool.negotiate(t0);
        }
        // Default config: 10 min scale-in cooldown, 60 s tick.
        let policy = Hysteresis::new(Fixed(0), HysteresisConfig::default());
        let mut scaler = AutoScaler::new(Box::new(policy), ControllerConfig::default());

        let d0 = scaler.tick(t0, &mut cloud, &id).unwrap();
        assert_eq!(d0.action, Action::Hold(HoldReason::DrainBlocked));
        assert_eq!(cloud.worker_count(&id).unwrap(), 2);

        // One tick later the pinned job has finished and the tail is idle.
        let t1 = t0 + ControllerConfig::default().tick;
        cloud.instance_mut(&id).unwrap().pool.settle(t1);
        let d1 = scaler.tick(t1, &mut cloud, &id).unwrap();
        assert_eq!(
            d1.action,
            Action::ScaleIn { from: 2, to: 0 },
            "blocked scale-in must retry on the next tick, not after the \
             10-minute phantom cooldown"
        );
        assert_eq!(cloud.worker_count(&id).unwrap(), 0);
    }

    #[test]
    fn cache_warm_tail_defers_scale_in_then_proceeds() {
        use cumulus_store::{ContentId, DataSize};

        let (mut cloud, id, ready) = running_single(107);
        cloud
            .scale_workers(ready, &id, 2, InstanceType::C1Medium)
            .unwrap();
        // worker-1 (the removable tail) is warm; worker-0 is cold.
        let fleet = CacheFleet::default();
        fleet.insert(
            &format!("{id}.worker-1"),
            ContentId(7),
            DataSize::from_mb(200),
        );
        let config = ControllerConfig {
            cache_fleet: Some(fleet.clone()),
            max_cache_holds: 2,
            ..ControllerConfig::default()
        };
        let mut scaler = AutoScaler::new(Box::new(Fixed(1)), config);

        let mut at = ready + SimDuration::from_mins(20);
        for _ in 0..2 {
            let d = scaler.tick(at, &mut cloud, &id).unwrap();
            assert_eq!(d.action, Action::Hold(HoldReason::CacheWarm));
            assert_eq!(cloud.worker_count(&id).unwrap(), 2);
            at += SimDuration::from_secs(60);
        }
        assert_eq!(scaler.metrics.counter(keys::HOLD_CACHE), 2);

        // Hold budget exhausted: the scale-in proceeds and the released
        // worker's cache is invalidated with it.
        let d = scaler.tick(at, &mut cloud, &id).unwrap();
        assert_eq!(d.action, Action::ScaleIn { from: 2, to: 1 });
        assert_eq!(cloud.worker_count(&id).unwrap(), 1);
        assert_eq!(
            fleet.cached_bytes(&format!("{id}.worker-1")),
            DataSize::ZERO,
            "released worker's cache must be dropped"
        );
    }

    #[test]
    fn cache_cold_tail_scales_in_immediately() {
        use cumulus_store::{ContentId, DataSize};

        let (mut cloud, id, ready) = running_single(108);
        cloud
            .scale_workers(ready, &id, 2, InstanceType::C1Medium)
            .unwrap();
        // The RETAINED worker is the warm one — truncating the cold tail
        // is exactly right and must not be deferred.
        let fleet = CacheFleet::default();
        fleet.insert(
            &format!("{id}.worker-0"),
            ContentId(7),
            DataSize::from_mb(200),
        );
        let config = ControllerConfig {
            cache_fleet: Some(fleet.clone()),
            ..ControllerConfig::default()
        };
        let mut scaler = AutoScaler::new(Box::new(Fixed(1)), config);
        let d = scaler
            .tick(ready + SimDuration::from_mins(20), &mut cloud, &id)
            .unwrap();
        assert_eq!(d.action, Action::ScaleIn { from: 2, to: 1 });
        assert_eq!(scaler.metrics.counter(keys::HOLD_CACHE), 0);
        assert!(
            !fleet.cached_bytes(&format!("{id}.worker-0")).is_zero(),
            "survivor keeps its cache"
        );
    }

    #[test]
    fn scale_in_releases_only_the_idle_tail() {
        let (mut cloud, id, ready) = running_single(103);
        cloud
            .scale_workers(ready, &id, 3, InstanceType::C1Medium)
            .unwrap();
        let start = ready + SimDuration::from_mins(20);
        // Busy worker-0, idle workers 1 and 2.
        let jid = {
            let inst = cloud.instance_mut(&id).unwrap();
            let machine = format!("{id}.worker-0");
            let jid = inst.pool.submit(
                Job::new("u", WorkSpec::serial(7200.0))
                    .try_requirements(&format!("Machine == \"{machine}\""))
                    .expect("machine pin expression"),
                start,
            );
            inst.pool.negotiate(start);
            jid
        };
        let mut scaler = AutoScaler::new(Box::new(Fixed(0)), ControllerConfig::default());
        let d = scaler.tick(start, &mut cloud, &id).unwrap();
        assert_eq!(d.action, Action::ScaleIn { from: 3, to: 1 });
        assert_eq!(cloud.worker_count(&id).unwrap(), 1);
        let job = cloud.instance(&id).unwrap().pool.job(jid).unwrap();
        assert_eq!(job.state, JobState::Running, "running job untouched");
        assert_eq!(job.evictions, 0);
    }

    #[test]
    fn deferred_join_reads_worker_type_at_join_time() {
        // Regression: the join event used to rebuild the machine from the
        // worker type captured at scale-out time. If the slot is scaled
        // away and re-launched as a *different* type before the join
        // fires, the joining machine's resources must match the current
        // topology, not the stale capture.
        struct World {
            cloud: GpCloud,
        }
        impl CloudHost for World {
            fn cloud_mut(&mut self) -> &mut GpCloud {
                &mut self.cloud
            }
        }
        let mut cloud = GpCloud::deterministic(106);
        let id = cloud.create_instance(Topology::single_node(InstanceType::M1Small));
        let ready = cloud.start_instance(SimTime::ZERO, &id).unwrap().ready_at;
        let mut sim = Sim::new(World { cloud });
        sim.fast_forward(ready);

        // Scale out to one c1.medium; hold its join until provisioning
        // lands, exactly as the episode driver does.
        let report = sim
            .world
            .cloud
            .scale_workers(ready, &id, 1, InstanceType::C1Medium)
            .unwrap();
        let join_at = report.done_at(ready);
        assert!(join_at > ready);
        defer_worker_joins(&mut sim, &id, 0, 1, join_at);

        // Before the join fires: shrink the slot away, then regrow it as
        // an m1.small.
        let churn_at = ready + SimDuration::from_secs(30);
        assert!(churn_at < join_at, "churn must land mid-provisioning");
        let cid = id.clone();
        sim.schedule_at(churn_at, move |sim| {
            let now = sim.now();
            sim.world
                .cloud
                .scale_workers(now, &cid, 0, InstanceType::C1Medium)
                .unwrap();
            let report = sim
                .world
                .cloud
                .scale_workers(now, &cid, 1, InstanceType::M1Small)
                .unwrap();
            let done = report.done_at(now);
            defer_worker_joins(sim, &cid, 0, 1, done);
        });

        sim.run_to_completion();

        let inst = sim.world.cloud.instance(&id).unwrap();
        assert_eq!(inst.topology.workers, vec![InstanceType::M1Small]);
        let machine = inst
            .pool
            .machine(&format!("{id}.worker-0"))
            .expect("the worker joined the pool");
        assert_eq!(
            machine.compute_units_per_slot(),
            InstanceType::M1Small.compute_units(),
            "joined machine must carry the re-launched type's resources, \
             not the scaled-away type's"
        );
    }

    #[test]
    fn steady_state_holds_and_logs() {
        let (mut cloud, id, ready) = running_single(104);
        let mut scaler = AutoScaler::new(Box::new(Fixed(0)), ControllerConfig::default());
        for k in 0..3u64 {
            let d = scaler
                .tick(ready + SimDuration::from_secs(60 * k), &mut cloud, &id)
                .unwrap();
            assert_eq!(d.action, Action::Hold(HoldReason::NoChange));
        }
        assert_eq!(scaler.log.len(), 3);
        assert_eq!(scaler.log.scale_outs(), 0);
        assert_eq!(scaler.metrics.counter(keys::TICKS), 3);
        let rendered = scaler.log.render();
        assert_eq!(rendered.lines().count(), 3);
        assert!(rendered.contains("| hold"), "log:\n{rendered}");
    }

    #[test]
    fn episode_runs_a_burst_through_the_closed_loop() {
        let work = WorkSpec {
            serial_secs: 112.0,
            cu_work: 418.0,
        };
        let workload = Workload::burst("burst-8", 8, SimDuration::ZERO, work);
        let policy = Hysteresis::new(
            QueueStep::new(2),
            HysteresisConfig {
                min_workers: 0,
                max_workers: 8,
                scale_out_cooldown: SimDuration::from_mins(2),
                scale_in_cooldown: SimDuration::from_mins(5),
            },
        );
        let report = run_episode(7, Box::new(policy), ControllerConfig::default(), &workload);
        assert_eq!(report.jobs, 8);
        assert!(report.peak_workers >= 2, "peak={}", report.peak_workers);
        assert!(report.log.scale_outs() >= 1);
        assert!(report.log.scale_ins() >= 1, "cluster torn back down");
        assert!(report.cost_usd > 0.0);
        assert!(report.makespan_mins > 5.0, "provisioning lag is real");
        assert!(report.makespan_mins < 60.0, "but the burst still drains");
        // The teardown left nothing behind.
        assert_eq!(report.log.entries.last().unwrap().sample.queue_depth, 0);
    }

    #[test]
    fn episode_with_no_workload_ends_immediately() {
        let workload = Workload::burst("empty", 0, SimDuration::ZERO, WorkSpec::serial(1.0));
        let report = run_episode(
            8,
            Box::new(Fixed(0)),
            ControllerConfig::default(),
            &workload,
        );
        assert_eq!(report.jobs, 0);
        assert_eq!(report.makespan_mins, 0.0);
        assert_eq!(report.end_at, report.ready_at);
    }
}

//! Scaling policies: signals in, desired worker count out.
//!
//! A [`ScalingPolicy`] is a pure sizing function — it never touches the
//! cloud. The controller clamps and actuates its output, so policies stay
//! small and composable:
//!
//! * [`QueueStep`] — proportional-to-backlog (CloudMan-style queue steps);
//! * [`TargetTracking`] — hold pool utilization near a setpoint
//!   (EC2-auto-scaling-style target tracking);
//! * [`Scheduled`] — time-of-day worker counts, ignoring load;
//! * [`OneShot`] — size once from the first non-empty observation and
//!   never look again (the open-loop strawman the paper's manual
//!   `gp-instance-update` workflow corresponds to);
//! * [`Fixed`] — a constant cluster (the static baseline);
//! * [`Hysteresis`] — wraps any policy with min/max bounds and separate
//!   scale-out/scale-in cooldowns.

use cumulus_simkit::time::{SimDuration, SimTime};

use crate::signal::SignalWindow;

/// What the controller actually did with a recommendation: reported back
/// to the policy via [`ScalingPolicy::observe_actuation`] after a scale
/// action is issued to the cloud.
///
/// Recommendation and actuation are not the same thing — a surfaced
/// scale-in can be held by the drain rule (busy tail worker), and a
/// policy that keys state off its own recommendations would start
/// phantom cooldowns for actions that never happened. Feedback closes
/// that gap, and `done_at` additionally tells the policy how long the
/// actuation takes to land (the provisioning lead a predictive policy
/// wants to learn).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ActuationFeedback {
    /// When the action was issued (the decision tick).
    pub at: SimTime,
    /// Workers before the action.
    pub from: usize,
    /// Workers after the action (may differ from the recommendation when
    /// a scale-in stops at the first busy tail worker).
    pub to: usize,
    /// When the reconfiguration completes (boot + converge for
    /// scale-outs; drain + terminate for scale-ins).
    pub done_at: SimTime,
}

impl ActuationFeedback {
    /// Whether the action added workers.
    pub fn is_scale_out(&self) -> bool {
        self.to > self.from
    }

    /// Decision-to-ready latency — the provisioning lead time the fleet
    /// pays on this actuation.
    pub fn lead(&self) -> SimDuration {
        self.done_at.since(self.at)
    }
}

/// A worker-count recommendation engine. Implementations may keep state
/// (cooldowns, one-shot latches), hence `&mut self`.
pub trait ScalingPolicy {
    /// Short stable name used in the scaling-activity log.
    fn name(&self) -> String;

    /// Desired worker count given the observed signal window. The window
    /// always holds at least one sample when the controller calls this.
    fn desired_workers(&mut self, window: &SignalWindow) -> usize;

    /// Called by the controller after it issues a scale action to the
    /// cloud. Never called for held ticks, so state keyed off this hook
    /// (cooldown clocks, lead-time estimates) tracks what the cluster
    /// *did*, not what the policy asked for. Default: ignore.
    fn observe_actuation(&mut self, feedback: &ActuationFeedback) {
        let _ = feedback;
    }
}

/// Keep `jobs_per_worker` jobs (queued + running) per worker: desired is
/// `ceil(backlog / jobs_per_worker)`. An empty system wants zero workers.
#[derive(Debug, Clone)]
pub struct QueueStep {
    /// Backlog each worker is expected to absorb.
    pub jobs_per_worker: usize,
}

impl QueueStep {
    /// Policy with the given per-worker backlog target (at least 1).
    pub fn new(jobs_per_worker: usize) -> QueueStep {
        QueueStep {
            jobs_per_worker: jobs_per_worker.max(1),
        }
    }
}

impl ScalingPolicy for QueueStep {
    fn name(&self) -> String {
        format!("queue-step/{}", self.jobs_per_worker)
    }

    fn desired_workers(&mut self, window: &SignalWindow) -> usize {
        let backlog = window.latest().map(|s| s.backlog()).unwrap_or(0);
        backlog.div_ceil(self.jobs_per_worker)
    }
}

/// Hold mean utilization near `target`: desired is
/// `ceil(workers × utilization / target)` — the standard target-tracking
/// rearrangement (with N workers at utilization u, N·u/target workers
/// would run at exactly the setpoint). Bootstraps to one worker when work
/// is queued against an empty cluster, and releases everything when the
/// system is empty.
#[derive(Debug, Clone)]
pub struct TargetTracking {
    /// Utilization setpoint in `(0, 1]`.
    pub target: f64,
}

impl TargetTracking {
    /// Policy tracking the given utilization setpoint (clamped sane).
    pub fn new(target: f64) -> TargetTracking {
        TargetTracking {
            target: target.clamp(0.05, 1.0),
        }
    }
}

impl ScalingPolicy for TargetTracking {
    fn name(&self) -> String {
        format!("target-tracking/{:.2}", self.target)
    }

    fn desired_workers(&mut self, window: &SignalWindow) -> usize {
        let Some(latest) = window.latest() else {
            return 0;
        };
        if latest.backlog() == 0 {
            return 0;
        }
        if latest.workers == 0 {
            return 1; // nothing measured yet: bootstrap and re-observe
        }
        let util = window.mean_utilization();
        (latest.workers as f64 * util / self.target).ceil() as usize
    }
}

/// Time-of-day schedule: worker counts by offset into a repeating period,
/// load-blind. The entry with the largest offset at or before
/// `t mod period` wins; before the first entry the last one applies
/// (the schedule wraps).
#[derive(Debug, Clone)]
pub struct Scheduled {
    period: SimDuration,
    /// `(offset into period, workers)`, sorted by offset.
    points: Vec<(SimDuration, usize)>,
    epoch: Option<SimTime>,
}

impl Scheduled {
    /// Build a schedule over `period` from `(offset, workers)` points.
    /// Offsets beyond the period are folded into it. Offsets are measured
    /// from the first sample the policy sees (deployment-relative, so the
    /// same schedule works wherever the episode starts).
    ///
    /// # Panics
    /// Panics on an empty point list or a zero period.
    pub fn new(period: SimDuration, mut points: Vec<(SimDuration, usize)>) -> Scheduled {
        assert!(
            period > SimDuration::ZERO,
            "schedule period must be positive"
        );
        assert!(!points.is_empty(), "schedule needs at least one point");
        let period_us = period.as_micros();
        for p in &mut points {
            *p = (SimDuration::from_micros(p.0.as_micros() % period_us), p.1);
        }
        points.sort_by_key(|p| p.0);
        points.dedup_by_key(|p| p.0);
        Scheduled {
            period,
            points,
            epoch: None,
        }
    }

    fn workers_at(&self, offset: SimDuration) -> usize {
        let folded = offset.as_micros() % self.period.as_micros();
        self.points
            .iter()
            .rev()
            .find(|(o, _)| o.as_micros() <= folded)
            .or(self.points.last())
            .map(|(_, w)| *w)
            .expect("non-empty by construction")
    }
}

impl ScalingPolicy for Scheduled {
    fn name(&self) -> String {
        format!("scheduled/{}pt", self.points.len())
    }

    fn desired_workers(&mut self, window: &SignalWindow) -> usize {
        let Some(latest) = window.latest() else {
            return 0;
        };
        let epoch = *self.epoch.get_or_insert(latest.at);
        self.workers_at(latest.at.since(epoch))
    }
}

/// Size the cluster once, from the first observation with a non-empty
/// backlog, then never react again. This is the open-loop baseline: what
/// an operator gets by eyeballing the queue and running one manual
/// `gp-instance-update`.
#[derive(Debug, Clone)]
pub struct OneShot {
    /// Backlog each worker is sized for at the single decision point.
    pub jobs_per_worker: usize,
    /// Hard cap on the chosen size.
    pub cap: usize,
    chosen: Option<usize>,
}

impl OneShot {
    /// Open-loop sizing with the given per-worker backlog and cap.
    pub fn new(jobs_per_worker: usize, cap: usize) -> OneShot {
        OneShot {
            jobs_per_worker: jobs_per_worker.max(1),
            cap,
            chosen: None,
        }
    }
}

impl ScalingPolicy for OneShot {
    fn name(&self) -> String {
        format!("one-shot/{}", self.jobs_per_worker)
    }

    fn desired_workers(&mut self, window: &SignalWindow) -> usize {
        if let Some(chosen) = self.chosen {
            return chosen;
        }
        let backlog = window.latest().map(|s| s.backlog()).unwrap_or(0);
        if backlog == 0 {
            return 0; // nothing seen yet; keep waiting for the first work
        }
        let size = backlog.div_ceil(self.jobs_per_worker).min(self.cap);
        self.chosen = Some(size);
        size
    }
}

/// A constant cluster size — the static baseline every elastic policy is
/// judged against.
#[derive(Debug, Clone)]
pub struct Fixed(pub usize);

impl ScalingPolicy for Fixed {
    fn name(&self) -> String {
        format!("fixed/{}", self.0)
    }

    fn desired_workers(&mut self, _window: &SignalWindow) -> usize {
        self.0
    }
}

/// Bounds and damping for [`Hysteresis`].
#[derive(Debug, Clone)]
pub struct HysteresisConfig {
    /// Never fewer workers than this.
    pub min_workers: usize,
    /// Never more workers than this.
    pub max_workers: usize,
    /// Minimum time between scale-out recommendations.
    pub scale_out_cooldown: SimDuration,
    /// Minimum time between scale-in recommendations (typically longer:
    /// adding capacity is urgent, releasing it is not).
    pub scale_in_cooldown: SimDuration,
}

impl Default for HysteresisConfig {
    fn default() -> Self {
        HysteresisConfig {
            min_workers: 0,
            max_workers: 8,
            scale_out_cooldown: SimDuration::from_mins(2),
            scale_in_cooldown: SimDuration::from_mins(10),
        }
    }
}

/// Wraps an inner policy with min/max clamping and directional cooldowns.
///
/// While a cooldown is active, the wrapper reports the *current* worker
/// count (no change) rather than the inner recommendation, so the
/// controller sees a steady state instead of a thrashing one. Cooldown
/// clocks start from **actuation feedback**
/// ([`observe_actuation`][ScalingPolicy::observe_actuation]), not when a
/// changed recommendation is surfaced: a surfaced scale-in can still be
/// held by the controller's drain rule (busy tail worker), and stamping
/// at recommendation time would start a phantom cooldown that defers the
/// retry for the full cooldown even after the tail goes idle.
#[derive(Debug, Clone)]
pub struct Hysteresis<P> {
    inner: P,
    /// The active bounds and cooldowns.
    pub config: HysteresisConfig,
    last_scale_out: Option<SimTime>,
    last_scale_in: Option<SimTime>,
}

impl<P: ScalingPolicy> Hysteresis<P> {
    /// Wrap `inner` with `config`.
    pub fn new(inner: P, config: HysteresisConfig) -> Hysteresis<P> {
        Hysteresis {
            inner,
            config,
            last_scale_out: None,
            last_scale_in: None,
        }
    }

    fn cooling(last: Option<SimTime>, now: SimTime, cooldown: SimDuration) -> bool {
        last.is_some_and(|at| now.since(at) < cooldown)
    }
}

impl<P: ScalingPolicy> ScalingPolicy for Hysteresis<P> {
    fn name(&self) -> String {
        format!("{}+hysteresis", self.inner.name())
    }

    fn desired_workers(&mut self, window: &SignalWindow) -> usize {
        let current = window.latest().map(|s| s.workers).unwrap_or(0);
        let raw = self.inner.desired_workers(window);
        let clamped = raw.clamp(self.config.min_workers, self.config.max_workers);
        let now = match window.latest() {
            Some(s) => s.at,
            None => return clamped,
        };
        if clamped > current {
            if Self::cooling(self.last_scale_out, now, self.config.scale_out_cooldown) {
                return current;
            }
            clamped
        } else if clamped < current {
            if Self::cooling(self.last_scale_in, now, self.config.scale_in_cooldown) {
                return current;
            }
            clamped
        } else {
            clamped
        }
    }

    fn observe_actuation(&mut self, feedback: &ActuationFeedback) {
        if feedback.is_scale_out() {
            self.last_scale_out = Some(feedback.at);
        } else {
            self.last_scale_in = Some(feedback.at);
        }
        self.inner.observe_actuation(feedback);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signal::{SignalSample, SignalWindow};

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn window_with(
        at_secs: u64,
        queue: usize,
        running: usize,
        workers: usize,
        util: f64,
    ) -> SignalWindow {
        let mut w = SignalWindow::new(4);
        w.push(SignalSample {
            at: t(at_secs),
            queue_depth: queue,
            running,
            workers,
            free_slots: 0,
            utilization: util,
            wait_p50_secs: 0.0,
            wait_p95_secs: 0.0,
        });
        w
    }

    #[test]
    fn queue_step_sizes_by_backlog() {
        let mut p = QueueStep::new(2);
        assert_eq!(p.desired_workers(&window_with(0, 0, 0, 3, 0.0)), 0);
        assert_eq!(p.desired_workers(&window_with(0, 1, 0, 0, 0.0)), 1);
        assert_eq!(p.desired_workers(&window_with(0, 5, 2, 0, 0.0)), 4);
    }

    #[test]
    fn target_tracking_converges_on_setpoint() {
        let mut p = TargetTracking::new(0.7);
        // Empty system releases everything.
        assert_eq!(p.desired_workers(&window_with(0, 0, 0, 4, 0.0)), 0);
        // Bootstraps from zero workers.
        assert_eq!(p.desired_workers(&window_with(0, 3, 0, 0, 0.0)), 1);
        // Saturated 4 workers at target 0.7 → grow to ceil(4/0.7) = 6.
        assert_eq!(p.desired_workers(&window_with(0, 8, 4, 4, 1.0)), 6);
        // Underused cluster shrinks: 6 workers at 0.2 → ceil(6·0.2/0.7) = 2.
        assert_eq!(p.desired_workers(&window_with(0, 0, 1, 6, 0.2)), 2);
    }

    #[test]
    fn scheduled_follows_time_of_day() {
        let day = SimDuration::from_hours(24);
        let mut p = Scheduled::new(
            day,
            vec![
                (SimDuration::from_hours(8), 6),
                (SimDuration::from_hours(18), 1),
            ],
        );
        // Epoch = first observation. Before 08:00 the schedule wraps to the
        // 18:00 entry.
        assert_eq!(p.desired_workers(&window_with(0, 0, 0, 0, 0.0)), 1);
        assert_eq!(p.desired_workers(&window_with(9 * 3600, 0, 0, 0, 0.0)), 6);
        assert_eq!(p.desired_workers(&window_with(20 * 3600, 0, 0, 0, 0.0)), 1);
        // Next day, same shape.
        assert_eq!(p.desired_workers(&window_with(33 * 3600, 0, 0, 0, 0.0)), 6);
    }

    #[test]
    fn one_shot_latches_its_first_decision() {
        let mut p = OneShot::new(2, 8);
        // Empty observations before the work arrives do not latch.
        assert_eq!(p.desired_workers(&window_with(0, 0, 0, 0, 0.0)), 0);
        assert_eq!(p.desired_workers(&window_with(60, 5, 0, 0, 0.0)), 3);
        // Later, much bigger backlog: the one-shot never reacts.
        assert_eq!(p.desired_workers(&window_with(600, 40, 3, 3, 1.0)), 3);
    }

    #[test]
    fn one_shot_respects_cap() {
        let mut p = OneShot::new(1, 4);
        assert_eq!(p.desired_workers(&window_with(0, 100, 0, 0, 0.0)), 4);
    }

    #[test]
    fn hysteresis_clamps_to_bounds() {
        let cfg = HysteresisConfig {
            min_workers: 1,
            max_workers: 4,
            scale_out_cooldown: SimDuration::ZERO,
            scale_in_cooldown: SimDuration::ZERO,
        };
        let mut p = Hysteresis::new(QueueStep::new(1), cfg);
        assert_eq!(p.desired_workers(&window_with(0, 100, 0, 2, 1.0)), 4);
        assert_eq!(p.desired_workers(&window_with(1, 0, 0, 2, 0.0)), 1);
    }

    #[test]
    fn hysteresis_cooldowns_are_directional() {
        let cfg = HysteresisConfig {
            min_workers: 0,
            max_workers: 10,
            scale_out_cooldown: SimDuration::from_secs(100),
            scale_in_cooldown: SimDuration::from_secs(1000),
        };
        let mut p = Hysteresis::new(QueueStep::new(1), cfg);
        // Replays what the controller does after actuating a change.
        let fed = |p: &mut Hysteresis<QueueStep>, at_secs: u64, from: usize, to: usize| {
            p.observe_actuation(&ActuationFeedback {
                at: t(at_secs),
                from,
                to,
                done_at: t(at_secs + 30),
            });
        };
        // First scale-out goes through and starts the out-cooldown.
        assert_eq!(p.desired_workers(&window_with(0, 4, 0, 0, 0.0)), 4);
        fed(&mut p, 0, 0, 4);
        // 50 s later a bigger queue is held by the out-cooldown.
        assert_eq!(p.desired_workers(&window_with(50, 8, 0, 4, 1.0)), 4);
        // 150 s later the out-cooldown expired.
        assert_eq!(p.desired_workers(&window_with(150, 8, 0, 4, 1.0)), 8);
        fed(&mut p, 150, 4, 8);
        // Queue empties at 300 s: scale-in allowed (first one) …
        assert_eq!(p.desired_workers(&window_with(300, 0, 0, 8, 0.0)), 0);
        fed(&mut p, 300, 8, 0);
        // … but if workers linger, a repeat scale-in inside 1000 s is held.
        assert_eq!(p.desired_workers(&window_with(500, 0, 0, 8, 0.0)), 8);
        // A scale-out during the in-cooldown is still allowed (clamped to
        // the max bound).
        assert_eq!(p.desired_workers(&window_with(600, 12, 0, 8, 1.0)), 10);
    }

    #[test]
    fn unactuated_scale_in_does_not_start_a_cooldown() {
        // The phantom-cooldown bug: the controller surfaces a scale-in but
        // the drain rule blocks it (busy tail). No feedback arrives, so
        // the wrapper must keep recommending the scale-in on every
        // subsequent tick rather than silently holding for the cooldown.
        let cfg = HysteresisConfig {
            min_workers: 0,
            max_workers: 8,
            scale_out_cooldown: SimDuration::from_secs(100),
            scale_in_cooldown: SimDuration::from_secs(600),
        };
        let mut p = Hysteresis::new(QueueStep::new(1), cfg);
        // Tick at t=0: wants 0 of 2 — surfaced, but (drain-)blocked, so no
        // feedback is delivered.
        assert_eq!(p.desired_workers(&window_with(0, 0, 0, 2, 0.0)), 0);
        // Next tick, well inside the 600 s cooldown: still recommends it.
        assert_eq!(p.desired_workers(&window_with(60, 0, 0, 2, 0.0)), 0);
        // Once actuation feedback lands, the cooldown clock starts.
        p.observe_actuation(&ActuationFeedback {
            at: t(60),
            from: 2,
            to: 0,
            done_at: t(90),
        });
        assert_eq!(p.desired_workers(&window_with(120, 0, 0, 1, 0.0)), 1);
    }

    #[test]
    fn policy_names_are_stable() {
        assert_eq!(QueueStep::new(2).name(), "queue-step/2");
        assert_eq!(TargetTracking::new(0.7).name(), "target-tracking/0.70");
        assert_eq!(OneShot::new(2, 8).name(), "one-shot/2");
        assert_eq!(Fixed(0).name(), "fixed/0");
        assert_eq!(
            Hysteresis::new(QueueStep::new(2), HysteresisConfig::default()).name(),
            "queue-step/2+hysteresis"
        );
    }
}

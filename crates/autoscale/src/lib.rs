//! # cumulus-autoscale — closed-loop cluster elasticity
//!
//! The paper's elasticity story (§III.C) is *manual*: an operator watches
//! the Galaxy queue and runs `gp-instance-update` to add or remove Condor
//! workers. This crate closes the loop: a controller running inside the
//! DES samples the pool each tick, asks a pluggable [`ScalingPolicy`] for
//! a desired worker count, and actuates the difference through the
//! provision layer's delta-scaling API — CloudMan-style auto-scaling
//! grafted onto a Globus Provision deployment.
//!
//! Layout:
//! * [`signal`] — sliding-window pool observations (queue depth,
//!   utilization, free slots, wait-time percentiles);
//! * [`policy`] — sizing policies ([`QueueStep`], [`TargetTracking`],
//!   [`Scheduled`], plus the [`OneShot`] open-loop and [`Fixed`] static
//!   baselines) composable under a [`Hysteresis`] wrapper with bounds and
//!   directional cooldowns;
//! * [`forecast`] — online demand forecasting (Holt level/trend EWMA
//!   with an optional phase-of-period seasonal table) and the
//!   [`Predictive`] policy, which provisions for the forecasted backlog
//!   at `now + lead`, the lead learned from actuation feedback;
//! * [`controller`] — the [`AutoScaler`] tick loop: in-flight
//!   reconfiguration tracking (no double-scaling), drain-before-remove
//!   scale-in protection, and a deterministic [`ActivityLog`] audit
//!   trail; plus [`run_episode`], which drives a whole workload through a
//!   deployment inside the DES;
//! * [`spot`] — the cost dimension: a [`SpotMix`] fleet-mix wrapper
//!   (on-demand core, spot tail) and [`run_spot_episode`], the episode
//!   driver that exposes the spot tail to a seeded preemption market and
//!   plays every reclaim out end to end (notice → requeue → repair);
//! * [`workload`] — seeded open-loop arrival generators (burst, Poisson,
//!   diurnal).
//!
//! ```
//! use cumulus_autoscale::prelude::*;
//! use cumulus_htc::WorkSpec;
//! use cumulus_simkit::time::SimDuration;
//!
//! let work = WorkSpec { serial_secs: 112.0, cu_work: 418.0 };
//! let trace = Workload::burst("burst", 6, SimDuration::ZERO, work);
//! let policy = Hysteresis::new(QueueStep::new(2), HysteresisConfig::default());
//! let report = run_episode(42, Box::new(policy), ControllerConfig::default(), &trace);
//! assert_eq!(report.jobs, 6);
//! assert!(report.peak_workers >= 1);
//! ```

#![warn(missing_docs)]

pub mod controller;
pub mod forecast;
pub mod policy;
pub mod signal;
pub mod spot;
pub mod workload;

pub use controller::{
    run_episode, run_sweep, Action, ActivityLog, AutoScaler, ControllerConfig, Decision,
    EpisodeReport, HoldReason,
};
pub use forecast::{ForecastConfig, Forecaster, Predictive, PredictiveConfig, SeasonalConfig};
pub use policy::{
    ActuationFeedback, Fixed, Hysteresis, HysteresisConfig, OneShot, QueueStep, ScalingPolicy,
    Scheduled, TargetTracking,
};
pub use signal::{percentile, SignalSample, SignalWindow};
pub use spot::{
    run_spot_episode, run_spot_sweep, SpotEpisodeConfig, SpotEpisodeReport, SpotMix, SpotMixConfig,
};
pub use workload::{JobArrival, Workload};

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::controller::{
        run_episode, run_sweep, Action, ActivityLog, AutoScaler, ControllerConfig, Decision,
        EpisodeReport, HoldReason,
    };
    pub use crate::forecast::{
        ForecastConfig, Forecaster, Predictive, PredictiveConfig, SeasonalConfig,
    };
    pub use crate::policy::{
        ActuationFeedback, Fixed, Hysteresis, HysteresisConfig, OneShot, QueueStep, ScalingPolicy,
        Scheduled, TargetTracking,
    };
    pub use crate::signal::{percentile, SignalSample, SignalWindow};
    pub use crate::spot::{
        run_spot_episode, run_spot_sweep, SpotEpisodeConfig, SpotEpisodeReport, SpotMix,
        SpotMixConfig,
    };
    pub use crate::workload::{JobArrival, Workload};
}

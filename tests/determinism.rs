//! Determinism: the foundation every experiment rests on. Identical seeds
//! must produce identical deployments, identical transfer timelines, and
//! identical statistical artifacts — including when replicas run across
//! threads.

use cumulus::scenario::UseCaseScenario;
use cumulus::simkit::prelude::*;
use cumulus::simkit::{run_replicas, ReplicaPlan};

/// A compact fingerprint of one full use-case run.
fn run_fingerprint(seed: u64) -> (u64, u64, String) {
    let (mut s, report) = UseCaseScenario::deploy(seed, SimTime::ZERO).unwrap();
    let (ds, t1) = s.transfer_four_cel_samples(report.ready_at).unwrap();
    let (job, t2) = s.run_differential_expression(t1, ds).unwrap();
    let outputs = &s.galaxy.job(job).unwrap().outputs;
    let table = s.galaxy.dataset(outputs[0]).unwrap();
    let top_row = table
        .content
        .as_table()
        .map(|(_, rows)| rows[0].join("|"))
        .unwrap_or_default();
    (report.ready_at.as_micros(), t2.as_micros(), top_row)
}

#[test]
fn identical_seeds_give_identical_runs() {
    let a = run_fingerprint(7);
    let b = run_fingerprint(7);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_give_different_artifacts() {
    let a = run_fingerprint(7);
    let b = run_fingerprint(8);
    // Timing constants are deterministic (jitter disabled), but the
    // generated data — and hence the statistics — must differ.
    assert_ne!(a.2, b.2, "different seeds produced identical top tables");
}

#[test]
fn parallel_replicas_match_sequential_execution() {
    let work = |i: usize, _seeds: cumulus::simkit::SeedFactory| run_fingerprint(1000 + i as u64);
    let sequential = run_replicas(ReplicaPlan::new(5, 4).with_threads(1), work);
    let parallel = run_replicas(ReplicaPlan::new(5, 4).with_threads(4), work);
    assert_eq!(sequential, parallel);
}

#[test]
fn des_event_traces_are_reproducible() {
    // Drive a nontrivial event cascade twice and compare traces.
    fn trace(seed: u64) -> u64 {
        let mut sim = Sim::new(TraceLog::enabled());
        let mut rng = RngStream::derive(seed, "cascade");
        for i in 0..50u64 {
            let delay = SimDuration::from_millis(rng.uniform_int(1, 1000));
            sim.schedule_in(delay, move |sim: &mut Sim<TraceLog>| {
                let now = sim.now();
                sim.world.emit(now, "evt", format!("event {i}"));
                if i % 7 == 0 {
                    sim.schedule_in(SimDuration::from_millis(i + 1), move |sim| {
                        let now = sim.now();
                        sim.world.emit(now, "evt", format!("follow-up {i}"));
                    });
                }
            });
        }
        sim.run_to_completion();
        sim.world.digest()
    }
    assert_eq!(trace(3), trace(3));
    assert_ne!(trace(3), trace(4));
}

/// One closed-loop autoscaling episode on a seeded diurnal trace, reduced
/// to its rendered scaling-activity log. Both the trace generation and the
/// controller's decisions depend on the seed, so this exercises the whole
/// autoscale stack.
fn scaling_activity_log(seed: u64) -> String {
    use cumulus::autoscale::{
        run_episode, ControllerConfig, Hysteresis, HysteresisConfig, QueueStep, Workload,
    };
    use cumulus::htc::WorkSpec;

    let work = WorkSpec {
        serial_secs: 60.0,
        cu_work: 240.0,
    };
    let trace = Workload::diurnal(
        "diurnal",
        seed,
        2.0,
        40.0,
        SimDuration::from_hours(2),
        SimDuration::from_hours(4),
        work,
    )
    .with_initial_burst(4, work);
    let policy = Hysteresis::new(QueueStep::new(2), HysteresisConfig::default());
    let report = run_episode(seed, Box::new(policy), ControllerConfig::default(), &trace);
    report.log.render()
}

#[test]
fn identical_seeds_give_byte_identical_scaling_logs() {
    let a = scaling_activity_log(21);
    let b = scaling_activity_log(21);
    assert_eq!(a, b, "same seed must replay the same scaling decisions");
    assert!(a.contains("scale-out"), "episode never scaled:\n{a}");
    let c = scaling_activity_log(22);
    assert_ne!(a, c, "different seeds produced identical scaling logs");
}

#[test]
fn scaling_logs_survive_the_parallel_replica_runner() {
    let work = |i: usize, _seeds: cumulus::simkit::SeedFactory| scaling_activity_log(30 + i as u64);
    let sequential = run_replicas(ReplicaPlan::new(9, 4).with_threads(1), work);
    let parallel = run_replicas(ReplicaPlan::new(9, 4).with_threads(4), work);
    assert_eq!(sequential, parallel);
}

/// One predictive-policy episode reduced to its rendered activity log.
/// The forecaster (Holt level/trend + seasonal table) and the learned
/// lead both feed every decision, so any nondeterminism in the forecast
/// path would fingerprint here.
fn predictive_activity_log(seed: u64) -> String {
    use cumulus::autoscale::{
        run_episode, ControllerConfig, ForecastConfig, Predictive, PredictiveConfig,
        SeasonalConfig, Workload,
    };
    use cumulus::htc::WorkSpec;

    let work = WorkSpec {
        serial_secs: 60.0,
        cu_work: 240.0,
    };
    let trace = Workload::diurnal(
        "diurnal",
        seed,
        2.0,
        40.0,
        SimDuration::from_hours(2),
        SimDuration::from_hours(4),
        work,
    )
    .with_initial_burst(4, work);
    let policy = Predictive::new(PredictiveConfig {
        forecast: ForecastConfig {
            seasonal: Some(SeasonalConfig::quarter_hourly(SimDuration::from_hours(2))),
            ..ForecastConfig::default()
        },
        ..PredictiveConfig::default()
    });
    let report = run_episode(seed, Box::new(policy), ControllerConfig::default(), &trace);
    report.log.render()
}

#[test]
fn identical_seeds_give_byte_identical_predictive_logs() {
    let a = predictive_activity_log(23);
    let b = predictive_activity_log(23);
    assert_eq!(a, b, "same seed must replay the same predictive decisions");
    assert!(a.contains("scale-out"), "episode never scaled:\n{a}");
    let c = predictive_activity_log(24);
    assert_ne!(a, c, "different seeds produced identical predictive logs");
}

#[test]
fn predictive_logs_survive_the_parallel_replica_runner() {
    let work =
        |i: usize, _seeds: cumulus::simkit::SeedFactory| predictive_activity_log(40 + i as u64);
    let sequential = run_replicas(ReplicaPlan::new(11, 4).with_threads(1), work);
    let parallel = run_replicas(ReplicaPlan::new(11, 4).with_threads(4), work);
    assert_eq!(sequential, parallel);
}

/// The matchmaker-rewrite gate: every experiment grid that leans on the
/// pool (E9e policy sweep, E10 spot, E12 predictive, E13 datashare) must
/// render byte-identically whether its replicas run serially or across
/// threads. Quick mode keeps the grids small; the full-size runs are
/// asserted the same way inside each `--bin` itself.
#[test]
fn experiment_grids_are_thread_invariant() {
    use cumulus_bench::experiments::{datashare, extensions, predictive, spot};

    let seed = 20120512;
    assert_eq!(
        extensions::run_policy_sweep_threads(seed, 1),
        extensions::run_policy_sweep_threads(seed, 3),
        "E9e policy sweep diverged across threads"
    );

    let serial = spot::run_grid(seed, 1, true);
    let parallel = spot::run_grid(seed, 3, true);
    assert_eq!(
        spot::render(&serial),
        spot::render(&parallel),
        "E10 spot grid diverged across threads"
    );
    assert_eq!(
        spot::json_doc(seed, &serial).render(),
        spot::json_doc(seed, &parallel).render()
    );

    let serial = predictive::run_grid(seed, 1, true);
    let parallel = predictive::run_grid(seed, 3, true);
    assert_eq!(
        predictive::render(&serial),
        predictive::render(&parallel),
        "E12 predictive grid diverged across threads"
    );
    assert_eq!(
        predictive::json_doc(seed, &serial).render(),
        predictive::json_doc(seed, &parallel).render()
    );

    let serial = datashare::run_grid(seed, 1, true);
    let parallel = datashare::run_grid(seed, 3, true);
    assert_eq!(
        datashare::render(&serial),
        datashare::render(&parallel),
        "E13 datashare grid diverged across threads"
    );
    assert_eq!(
        datashare::json_doc(seed, &serial).render(),
        datashare::json_doc(seed, &parallel).render()
    );
}

#[test]
fn metrics_merge_is_order_independent_for_counters() {
    let a = Metrics::new();
    let b = Metrics::new();
    let c = Metrics::new();
    a.incr("jobs", 3);
    b.incr("jobs", 4);
    c.incr("jobs", 5);
    let left = Metrics::new();
    left.merge(&a);
    left.merge(&b);
    left.merge(&c);
    let right = Metrics::new();
    right.merge(&c);
    right.merge(&a);
    right.merge(&b);
    assert_eq!(left.counter("jobs"), right.counter("jobs"));
}

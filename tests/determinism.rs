//! Determinism: the foundation every experiment rests on. Identical seeds
//! must produce identical deployments, identical transfer timelines, and
//! identical statistical artifacts — including when replicas run across
//! threads.

use cumulus::scenario::UseCaseScenario;
use cumulus::simkit::prelude::*;
use cumulus::simkit::{run_replicas, ReplicaPlan};

/// A compact fingerprint of one full use-case run.
fn run_fingerprint(seed: u64) -> (u64, u64, String) {
    let (mut s, report) = UseCaseScenario::deploy(seed, SimTime::ZERO).unwrap();
    let (ds, t1) = s.transfer_four_cel_samples(report.ready_at).unwrap();
    let (job, t2) = s.run_differential_expression(t1, ds).unwrap();
    let outputs = &s.galaxy.job(job).unwrap().outputs;
    let table = s.galaxy.dataset(outputs[0]).unwrap();
    let top_row = table
        .content
        .as_table()
        .map(|(_, rows)| rows[0].join("|"))
        .unwrap_or_default();
    (report.ready_at.as_micros(), t2.as_micros(), top_row)
}

#[test]
fn identical_seeds_give_identical_runs() {
    let a = run_fingerprint(7);
    let b = run_fingerprint(7);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_give_different_artifacts() {
    let a = run_fingerprint(7);
    let b = run_fingerprint(8);
    // Timing constants are deterministic (jitter disabled), but the
    // generated data — and hence the statistics — must differ.
    assert_ne!(a.2, b.2, "different seeds produced identical top tables");
}

#[test]
fn parallel_replicas_match_sequential_execution() {
    let work = |i: usize, _seeds: cumulus::simkit::SeedFactory| run_fingerprint(1000 + i as u64);
    let sequential = run_replicas(ReplicaPlan::new(5, 4).with_threads(1), work);
    let parallel = run_replicas(ReplicaPlan::new(5, 4).with_threads(4), work);
    assert_eq!(sequential, parallel);
}

#[test]
fn des_event_traces_are_reproducible() {
    // Drive a nontrivial event cascade twice and compare traces.
    fn trace(seed: u64) -> u64 {
        let mut sim = Sim::new(TraceLog::enabled());
        let mut rng = RngStream::derive(seed, "cascade");
        for i in 0..50u64 {
            let delay = SimDuration::from_millis(rng.uniform_int(1, 1000));
            sim.schedule_in(delay, move |sim: &mut Sim<TraceLog>| {
                let now = sim.now();
                sim.world.emit(now, "evt", format!("event {i}"));
                if i % 7 == 0 {
                    sim.schedule_in(SimDuration::from_millis(i + 1), move |sim| {
                        let now = sim.now();
                        sim.world.emit(now, "evt", format!("follow-up {i}"));
                    });
                }
            });
        }
        sim.run_to_completion();
        sim.world.digest()
    }
    assert_eq!(trace(3), trace(3));
    assert_ne!(trace(3), trace(4));
}

/// One closed-loop autoscaling episode on a seeded diurnal trace, reduced
/// to its rendered scaling-activity log. Both the trace generation and the
/// controller's decisions depend on the seed, so this exercises the whole
/// autoscale stack.
fn scaling_activity_log(seed: u64) -> String {
    use cumulus::autoscale::{
        run_episode, ControllerConfig, Hysteresis, HysteresisConfig, QueueStep, Workload,
    };
    use cumulus::htc::WorkSpec;

    let work = WorkSpec {
        serial_secs: 60.0,
        cu_work: 240.0,
    };
    let trace = Workload::diurnal(
        "diurnal",
        seed,
        2.0,
        40.0,
        SimDuration::from_hours(2),
        SimDuration::from_hours(4),
        work,
    )
    .with_initial_burst(4, work);
    let policy = Hysteresis::new(QueueStep::new(2), HysteresisConfig::default());
    let report = run_episode(seed, Box::new(policy), ControllerConfig::default(), &trace);
    report.log.render()
}

#[test]
fn identical_seeds_give_byte_identical_scaling_logs() {
    let a = scaling_activity_log(21);
    let b = scaling_activity_log(21);
    assert_eq!(a, b, "same seed must replay the same scaling decisions");
    assert!(a.contains("scale-out"), "episode never scaled:\n{a}");
    let c = scaling_activity_log(22);
    assert_ne!(a, c, "different seeds produced identical scaling logs");
}

#[test]
fn scaling_logs_survive_the_parallel_replica_runner() {
    let work = |i: usize, _seeds: cumulus::simkit::SeedFactory| scaling_activity_log(30 + i as u64);
    let sequential = run_replicas(ReplicaPlan::new(9, 4).with_threads(1), work);
    let parallel = run_replicas(ReplicaPlan::new(9, 4).with_threads(4), work);
    assert_eq!(sequential, parallel);
}

/// One predictive-policy episode reduced to its rendered activity log.
/// The forecaster (Holt level/trend + seasonal table) and the learned
/// lead both feed every decision, so any nondeterminism in the forecast
/// path would fingerprint here.
fn predictive_activity_log(seed: u64) -> String {
    use cumulus::autoscale::{
        run_episode, ControllerConfig, ForecastConfig, Predictive, PredictiveConfig,
        SeasonalConfig, Workload,
    };
    use cumulus::htc::WorkSpec;

    let work = WorkSpec {
        serial_secs: 60.0,
        cu_work: 240.0,
    };
    let trace = Workload::diurnal(
        "diurnal",
        seed,
        2.0,
        40.0,
        SimDuration::from_hours(2),
        SimDuration::from_hours(4),
        work,
    )
    .with_initial_burst(4, work);
    let policy = Predictive::new(PredictiveConfig {
        forecast: ForecastConfig {
            seasonal: Some(SeasonalConfig::quarter_hourly(SimDuration::from_hours(2))),
            ..ForecastConfig::default()
        },
        ..PredictiveConfig::default()
    });
    let report = run_episode(seed, Box::new(policy), ControllerConfig::default(), &trace);
    report.log.render()
}

#[test]
fn identical_seeds_give_byte_identical_predictive_logs() {
    let a = predictive_activity_log(23);
    let b = predictive_activity_log(23);
    assert_eq!(a, b, "same seed must replay the same predictive decisions");
    assert!(a.contains("scale-out"), "episode never scaled:\n{a}");
    let c = predictive_activity_log(24);
    assert_ne!(a, c, "different seeds produced identical predictive logs");
}

#[test]
fn predictive_logs_survive_the_parallel_replica_runner() {
    let work =
        |i: usize, _seeds: cumulus::simkit::SeedFactory| predictive_activity_log(40 + i as u64);
    let sequential = run_replicas(ReplicaPlan::new(11, 4).with_threads(1), work);
    let parallel = run_replicas(ReplicaPlan::new(11, 4).with_threads(4), work);
    assert_eq!(sequential, parallel);
}

/// The matchmaker-rewrite gate: every experiment grid that leans on the
/// pool (E9e policy sweep, E10 spot, E12 predictive, E13 datashare) must
/// render byte-identically whether its replicas run serially or across
/// threads. Quick mode keeps the grids small; the full-size runs are
/// asserted the same way inside each `--bin` itself.
#[test]
fn experiment_grids_are_thread_invariant() {
    use cumulus_bench::experiments::{datashare, extensions, predictive, spot};

    let seed = 20120512;
    assert_eq!(
        extensions::run_policy_sweep_threads(seed, 1),
        extensions::run_policy_sweep_threads(seed, 3),
        "E9e policy sweep diverged across threads"
    );

    let serial = spot::run_grid(seed, 1, true);
    let parallel = spot::run_grid(seed, 3, true);
    assert_eq!(
        spot::render(&serial),
        spot::render(&parallel),
        "E10 spot grid diverged across threads"
    );
    assert_eq!(
        spot::json_doc(seed, &serial).render(),
        spot::json_doc(seed, &parallel).render()
    );

    let serial = predictive::run_grid(seed, 1, true);
    let parallel = predictive::run_grid(seed, 3, true);
    assert_eq!(
        predictive::render(&serial),
        predictive::render(&parallel),
        "E12 predictive grid diverged across threads"
    );
    assert_eq!(
        predictive::json_doc(seed, &serial).render(),
        predictive::json_doc(seed, &parallel).render()
    );

    let serial = datashare::run_grid(seed, 1, true);
    let parallel = datashare::run_grid(seed, 3, true);
    assert_eq!(
        datashare::render(&serial),
        datashare::render(&parallel),
        "E13 datashare grid diverged across threads"
    );
    assert_eq!(
        datashare::json_doc(seed, &serial).render(),
        datashare::json_doc(seed, &parallel).render()
    );
}

/// Seeded-loop span property: generate randomized-but-valid span streams
/// (random entity counts, open times, phase schedules) across many seeds
/// and assert the assembler round-trips every one — each opened span
/// closes exactly once, phases stay inside `[open, close]` in monotone
/// order, and the event digest is a pure function of the stream.
#[test]
fn assembler_round_trips_randomized_span_streams() {
    use cumulus::simkit::telemetry::{assemble, span::keys, SpanKind, Telemetry};

    for seed in 0..24u64 {
        let mut rng = RngStream::derive(seed, "span-props");
        let n = rng.uniform_int(1, 30) as usize;
        // (time, entity, step) — step 0 opens, 1..=phases marks, last closes.
        let mut script: Vec<(u64, u64, usize, usize)> = Vec::new();
        for id in 0..n as u64 {
            let open = rng.uniform_int(0, 1_000_000);
            let phases = rng.uniform_int(0, 4) as usize;
            let mut t = open;
            for step in 0..=phases + 1 {
                script.push((t, id, step, phases));
                t += rng.uniform_int(1, 50_000);
            }
        }
        // Interleave entities the way a simulator would: by timestamp.
        script.sort();

        let emit = || {
            let tel = Telemetry::enabled();
            for &(t, id, step, phases) in &script {
                let at = SimTime::ZERO + SimDuration::from_micros(t);
                if step == 0 {
                    tel.span_open(at, "prop", keys::JOB_SUBMITTED, SpanKind::Job, id);
                } else if step == phases + 1 {
                    tel.span_close(at, "prop", keys::JOB_COMPLETED, SpanKind::Job, id);
                } else {
                    tel.span_phase(
                        at,
                        "prop",
                        keys::JOB_MATCHED,
                        SpanKind::Job,
                        id,
                        SimDuration::from_micros(step as u64),
                    );
                }
            }
            tel
        };

        let tel = emit();
        let spans = assemble(&tel.events()).unwrap_or_else(|e| panic!("seed {seed}: {e:?}"));
        assert_eq!(spans.len(), n, "seed {seed}: a span was lost or duplicated");
        let mut seen = std::collections::BTreeSet::new();
        for s in &spans {
            assert!(seen.insert(s.id), "seed {seed}: span {} closed twice", s.id);
            assert!(s.opened_at <= s.closed_at, "seed {seed}: negative span");
            let mut last = s.opened_at;
            for p in &s.phases {
                assert!(
                    p.at >= last,
                    "seed {seed}: phase regressed in span {}",
                    s.id
                );
                assert!(p.at <= s.closed_at, "seed {seed}: phase after close");
                last = p.at;
            }
        }
        // The digest is a pure function of the stream: replaying the same
        // script reproduces it, and it survives a snapshot.
        assert_eq!(
            tel.digest(),
            emit().digest(),
            "seed {seed}: digest unstable"
        );
        assert_eq!(tel.digest(), tel.snapshot().digest());
    }
}

/// Span invariants on real episodes: instrumented E13 cells across a loop
/// of seeds. Every job and workflow span must close, phases must sit
/// inside their span, and every job's breakdown must sum to its walltime.
#[test]
fn span_invariants_hold_across_seeded_episodes() {
    use cumulus::simkit::telemetry::{assemble_lenient, JobBreakdown, SpanKind};
    use cumulus_bench::experiments::datashare;

    for seed in [7u64, 20120512, 99991] {
        for (row, telemetry) in datashare::run_grid_instrumented(seed, 1, true) {
            let set = assemble_lenient(&telemetry.events())
                .unwrap_or_else(|e| panic!("seed {seed} {}: {e:?}", row.spec.label()));
            for (kind, id, _) in &set.open {
                assert!(
                    !matches!(kind, SpanKind::Job | SpanKind::Workflow),
                    "seed {seed} {}: {kind:?} span {id} never closed",
                    row.spec.label()
                );
            }
            let mut jobs = 0;
            for s in set.of_kind(SpanKind::Job) {
                let bd = JobBreakdown::of(s).unwrap_or_else(|| {
                    panic!(
                        "seed {seed} {}: job {} has no breakdown",
                        row.spec.label(),
                        s.id
                    )
                });
                assert_eq!(
                    bd.total(),
                    s.duration(),
                    "seed {seed} {}: job {} breakdown does not sum to walltime",
                    row.spec.label(),
                    s.id
                );
                jobs += 1;
            }
            assert!(
                jobs > 0,
                "seed {seed} {}: episode ran no jobs",
                row.spec.label()
            );
        }
    }
}

/// The telemetry digest — key names, times, payloads over the whole event
/// stream — must not depend on how many threads the replica runner used.
#[test]
fn telemetry_digests_are_thread_invariant() {
    use cumulus_bench::experiments::datashare;

    let seed = 20120512;
    let serial = datashare::run_grid_instrumented(seed, 1, true);
    let parallel = datashare::run_grid_instrumented(seed, 3, true);
    assert_eq!(serial.len(), parallel.len());
    for ((row_s, tel_s), (row_p, tel_p)) in serial.iter().zip(&parallel) {
        assert_eq!(row_s.spec.label(), row_p.spec.label());
        assert_eq!(
            tel_s.digest(),
            tel_p.digest(),
            "{}: telemetry digest diverged across threads",
            row_s.spec.label()
        );
        assert_eq!(tel_s.len(), tel_p.len());
    }
    assert_eq!(
        datashare::episode_report(&serial),
        datashare::episode_report(&parallel),
        "episode report diverged across threads"
    );
}

#[test]
fn metrics_merge_is_order_independent_for_counters() {
    let a = Metrics::new();
    let b = Metrics::new();
    let c = Metrics::new();
    a.incr("jobs", 3);
    b.incr("jobs", 4);
    c.incr("jobs", 5);
    let left = Metrics::new();
    left.merge(&a);
    left.merge(&b);
    left.merge(&c);
    let right = Metrics::new();
    right.merge(&c);
    right.merge(&a);
    right.merge(&b);
    assert_eq!(left.counter("jobs"), right.counter("jobs"));
}

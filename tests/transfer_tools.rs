//! The three Globus Transfer tools (§IV.A) exercised end to end, plus the
//! legacy FTP/HTTP upload paths they replace.

use cumulus::galaxy::{Content, DatasetState};
use cumulus::net::DataSize;
use cumulus::scenario::UseCaseScenario;
use cumulus::simkit::time::SimTime;

#[test]
fn globus_toolset_appears_in_the_tool_panel() {
    let (s, _) = UseCaseScenario::deploy(401, SimTime::ZERO).unwrap();
    // The three transfer tools plus the 35 CRData tools.
    assert_eq!(s.galaxy.registry.len(), 3 + cumulus::crdata::TOOL_COUNT);
    let sections = s.galaxy.registry.sections();
    assert!(sections.contains(&"Globus Online"));
    assert_eq!(
        s.galaxy.registry.tools_in("Globus Online"),
        vec!["globus_go_transfer", "globus_get_data", "globus_send_data"]
    );
    // Figure 4: the GO Transfer form exposes source/destination/deadline.
    let form = s
        .galaxy
        .registry
        .tool("globus_go_transfer")
        .unwrap()
        .form_model();
    assert!(form.contains("Source endpoint"));
    assert!(form.contains("Deadline"));
}

#[test]
fn send_data_via_globus_downloads_a_result() {
    // "using the 'Send data via Globus Online' tool, the 'Source endpoint'
    // is the Galaxy server."
    let (mut s, report) = UseCaseScenario::deploy(402, SimTime::ZERO).unwrap();
    let (cel, t1) = s.transfer_four_cel_samples(report.ready_at).unwrap();
    let (job, t2) = s.run_differential_expression(t1, cel).unwrap();
    let top_table = s.galaxy.job(job).unwrap().outputs[0];

    let laptop = s.laptop_endpoint.clone();
    let (task, finished) = {
        let cumulus::provision::GpCloud {
            ref mut transfer,
            ref network,
            ..
        } = s.world;
        s.galaxy
            .send_data_via_globus(
                t2,
                "boliu",
                top_table,
                transfer,
                network,
                (&laptop, "/downloads/toptable.tsv"),
            )
            .unwrap()
    };
    assert!(finished > t2);
    let record = s.world.transfer.task(task).unwrap();
    assert_eq!(record.status, cumulus::transfer::TaskStatus::Succeeded);
    assert_eq!(record.request.source_endpoint, "cvrg#galaxy");
    assert_eq!(record.request.dest_endpoint, laptop);
}

#[test]
fn sending_a_pending_dataset_is_refused() {
    let (mut s, report) = UseCaseScenario::deploy(403, SimTime::ZERO).unwrap();
    let (cel, t1) = s.transfer_four_cel_samples(report.ready_at).unwrap();
    // Submit the job but do NOT drive it to completion — outputs stay
    // pending.
    let mut params = std::collections::BTreeMap::new();
    params.insert("input".to_string(), cel.0.to_string());
    let pending = {
        let pool = &mut s.world.instance_mut(&s.instance).unwrap().pool;
        let job = s
            .galaxy
            .run_tool(
                t1,
                "boliu",
                s.history,
                "crdata_affyDifferentialExpression",
                &params,
                pool,
            )
            .unwrap();
        s.galaxy.job(job).unwrap().outputs[0]
    };
    let laptop = s.laptop_endpoint.clone();
    let err = {
        let cumulus::provision::GpCloud {
            ref mut transfer,
            ref network,
            ..
        } = s.world;
        s.galaxy
            .send_data_via_globus(t1, "boliu", pending, transfer, network, (&laptop, "/x"))
            .unwrap_err()
    };
    assert!(err.to_string().contains("not ready"), "{err}");
}

#[test]
fn third_party_go_transfer_between_remote_endpoints() {
    let (mut s, report) = UseCaseScenario::deploy(404, SimTime::ZERO).unwrap();
    let laptop = s.laptop_endpoint.clone();
    let remote = s.remote_endpoint.clone();
    let (ds, task, when) = {
        let cumulus::provision::GpCloud {
            ref mut transfer,
            ref network,
            ..
        } = s.world;
        s.galaxy
            .go_transfer(
                report.ready_at,
                "boliu",
                s.history,
                transfer,
                network,
                (&remote, "/archive/reads.bam"),
                (&laptop, "/data/reads.bam"),
                DataSize::from_mb(500),
                None,
            )
            .unwrap()
    };
    assert!(when > report.ready_at);
    // The history records the transfer as a stub entry.
    let d = s.galaxy.dataset(ds).unwrap();
    assert_eq!(d.state, DatasetState::Ok);
    assert!(d.name.contains(&remote));
    // Neither endpoint is the Galaxy server: true third-party.
    let record = s.world.transfer.task(task).unwrap();
    assert_ne!(record.request.source_endpoint, "cvrg#galaxy");
    assert_ne!(record.request.dest_endpoint, "cvrg#galaxy");
}

#[test]
fn ftp_upload_is_slower_than_globus_for_the_same_file() {
    let (mut s, report) = UseCaseScenario::deploy(405, SimTime::ZERO).unwrap();
    let t0 = report.ready_at;
    let size = DataSize::from_mb(100);

    // Globus from the laptop.
    let laptop = s.laptop_endpoint.clone();
    let go_done = {
        let cumulus::provision::GpCloud {
            ref mut transfer,
            ref network,
            ..
        } = s.world;
        let request = cumulus::transfer::TransferRequest::globus(
            "boliu",
            (&laptop, "/data/reads.fastq"),
            ("cvrg#galaxy", "/nfs/home/boliu/reads.fastq"),
            size,
        );
        let id = transfer.submit(t0, network, request).unwrap();
        transfer.task(id).unwrap().finished_at
    };

    // FTP from the same laptop node.
    let laptop_node = s.world.network.node("boliu-laptop").unwrap();
    let (ftp_ds, ftp_done) = s
        .galaxy
        .upload_ftp(
            t0,
            s.history,
            "reads.fastq",
            "fastq",
            size,
            Content::Opaque,
            &s.world.network,
            laptop_node,
        )
        .unwrap();
    assert_eq!(s.galaxy.dataset(ftp_ds).unwrap().state, DatasetState::Ok);

    let go_secs = go_done.since(t0).as_secs_f64();
    let ftp_secs = ftp_done.since(t0).as_secs_f64();
    assert!(
        ftp_secs > 4.0 * go_secs,
        "FTP {ftp_secs}s should be much slower than GO {go_secs}s"
    );
}

#[test]
fn receipt_tools_run_through_the_pool_like_any_tool() {
    let (mut s, report) = UseCaseScenario::deploy(406, SimTime::ZERO).unwrap();
    let mut params = std::collections::BTreeMap::new();
    params.insert("source_endpoint".to_string(), s.remote_endpoint.clone());
    params.insert("path".to_string(), "/home/boliu/x.zip".to_string());
    let job = {
        let pool = &mut s.world.instance_mut(&s.instance).unwrap().pool;
        let job = s
            .galaxy
            .run_tool(
                report.ready_at,
                "boliu",
                s.history,
                "globus_get_data",
                &params,
                pool,
            )
            .unwrap();
        s.galaxy.drive_jobs(report.ready_at, pool, 100).unwrap();
        job
    };
    let out = s.galaxy.job(job).unwrap().outputs[0];
    match &s.galaxy.dataset(out).unwrap().content {
        Content::Text(text) => {
            assert!(text.contains("galaxy#CVRG-Galaxy"));
            assert!(text.contains("submitted to Globus Online"));
        }
        other => panic!("expected receipt text, got {other:?}"),
    }
}

//! Failure injection across the stack: instance loss mid-workload,
//! network faults mid-transfer, deadlines, and quota pressure.

use std::collections::BTreeMap;

use cumulus::cloud::InstanceType;
use cumulus::galaxy::GalaxyJobState;
use cumulus::htc::JobState;
use cumulus::net::{DataSize, FaultPlan, Outage};
use cumulus::provision::Topology;
use cumulus::scenario::UseCaseScenario;
use cumulus::simkit::time::{SimDuration, SimTime};
use cumulus::transfer::{Protocol, TaskStatus, TransferRequest};

#[test]
fn worker_loss_evicts_and_reruns_the_job() {
    let mut topology = Topology::single_node(InstanceType::M1Small);
    topology.workers = vec![InstanceType::C1Medium];
    let (mut s, report) = UseCaseScenario::deploy_with(201, SimTime::ZERO, topology).unwrap();
    let (ds, t1) = s.transfer_four_cel_samples(report.ready_at).unwrap();

    // Submit the analysis; it matches the faster c1.medium worker.
    let mut params = BTreeMap::new();
    params.insert("input".to_string(), ds.0.to_string());
    let job = {
        let pool = &mut s.world.instance_mut(&s.instance).unwrap().pool;
        let job = s
            .galaxy
            .run_tool(
                t1,
                "boliu",
                s.history,
                "crdata_affyDifferentialExpression",
                &params,
                pool,
            )
            .unwrap();
        let matches = pool.negotiate(t1);
        assert_eq!(matches.len(), 1);
        assert!(
            matches[0].machine.0.contains("worker-0"),
            "ranked to the medium node"
        );
        job
    };

    // The worker's EC2 instance dies mid-run.
    let crash_at = t1 + SimDuration::from_secs(60);
    let (worker_ec2, worker_host) = {
        let inst = s.world.instance(&s.instance).unwrap();
        let w = inst.workers()[0];
        (w.ec2_id, format!("{}.{}", s.instance, w.hostname))
    };
    s.world.ec2.fail_instance(crash_at, worker_ec2).unwrap();
    {
        let pool = &mut s.world.instance_mut(&s.instance).unwrap().pool;
        let evicted = pool.remove_machine(&worker_host, crash_at).unwrap();
        assert_eq!(evicted.len(), 1, "the running job was evicted");
        let condor_job = s.galaxy.job(job).unwrap().condor_job.unwrap();
        assert_eq!(pool.job(condor_job).unwrap().state, JobState::Idle);
        assert_eq!(pool.job(condor_job).unwrap().evictions, 1);
    }

    // The head node picks the job up and finishes it.
    let pool = &mut s.world.instance_mut(&s.instance).unwrap().pool;
    let done = s
        .galaxy
        .drive_jobs(crash_at, pool, 10_000)
        .expect("job reruns on the head");
    assert!(done > crash_at);
    assert_eq!(s.galaxy.job(job).unwrap().state, GalaxyJobState::Ok);
}

#[test]
fn transfer_faults_retry_to_success_with_restart_markers() {
    let (mut s, report) = UseCaseScenario::deploy(202, SimTime::ZERO).unwrap();
    // Put a rough fault plan on the laptop path.
    let start = report.ready_at;
    let windows: Vec<Outage> = (0..3)
        .map(|i| {
            Outage::new(
                start + SimDuration::from_secs(20 + i * 120),
                start + SimDuration::from_secs(50 + i * 120),
            )
            .unwrap()
        })
        .collect();
    s.world.transfer.set_fault_plan(
        &s.laptop_endpoint,
        "cvrg#galaxy",
        FaultPlan::from_windows(windows),
    );
    let request = TransferRequest::globus(
        "boliu",
        (&s.laptop_endpoint, "/data/local-reads.bam"),
        ("cvrg#galaxy", "/nfs/home/boliu/local-reads.bam"),
        DataSize::from_gb(1),
    );
    let id = {
        let cumulus::provision::GpCloud {
            ref mut transfer,
            ref network,
            ..
        } = s.world;
        transfer.submit(start, network, request).unwrap()
    };
    let task = s.world.transfer.task(id).unwrap();
    assert_eq!(task.status, TaskStatus::Succeeded);
    assert!(task.faults >= 1, "the plan must have bitten");
    assert_eq!(task.bytes_transferred, DataSize::from_gb(1));
    assert_eq!(task.bytes_retransmitted, DataSize::ZERO, "GridFTP resumes");
}

#[test]
fn deadline_failures_surface_in_the_history_panel() {
    // "If a Deadline … is specified, the job will be terminated if it is
    // not completed within the specified time period and Galaxy will
    // indicate an error in its history panel."
    let (mut s, report) = UseCaseScenario::deploy(203, SimTime::ZERO).unwrap();
    let start = report.ready_at;
    let deadline = start + SimDuration::from_secs(2); // far too tight
    let spec = cumulus::crdata::CelBundleSpec::affy_cel_samples();
    let bundle =
        cumulus::crdata::generate_cel_bundle(&spec, &mut s.world.seeds().stream("deadline-bundle"));
    let content = cumulus::crdata::matrix_to_content(bundle.matrix);
    let (ds, _task, when) = {
        let transfer = &mut s.world.transfer;
        let network = &s.world.network;
        s.galaxy
            .get_data_via_globus(
                start,
                "boliu",
                s.history,
                transfer,
                network,
                ("galaxy#CVRG-Galaxy", "/home/boliu/affyCelFileSamples.zip"),
                spec.archive_size,
                content,
                Some(deadline),
            )
            .unwrap()
    };
    assert_eq!(when, deadline, "aborted exactly at the deadline");
    assert_eq!(
        s.galaxy.dataset(ds).unwrap().state,
        cumulus::galaxy::DatasetState::Error
    );
    let panel = s.galaxy.history_panel(s.history).unwrap();
    assert!(
        panel.contains("[error]"),
        "history shows the error: {panel}"
    );
}

#[test]
fn chronic_faults_fail_the_task_after_retries() {
    let (mut s, report) = UseCaseScenario::deploy(204, SimTime::ZERO).unwrap();
    let start = report.ready_at;
    // Outages that always return faster than the transfer can finish.
    let windows: Vec<Outage> = (0..5000)
        .map(|i| {
            Outage::new(
                start + SimDuration::from_secs(5 + i * 40),
                start + SimDuration::from_secs(35 + i * 40),
            )
            .unwrap()
        })
        .collect();
    s.world.transfer.set_fault_plan(
        &s.laptop_endpoint,
        "cvrg#galaxy",
        FaultPlan::from_windows(windows),
    );
    let request = TransferRequest::globus(
        "boliu",
        (&s.laptop_endpoint, "/data/huge.bam"),
        ("cvrg#galaxy", "/nfs/home/boliu/huge.bam"),
        DataSize::from_gb(8),
    )
    .with_protocol(Protocol::Ftp); // no restart markers: chronic faults kill it
    let id = s
        .world
        .transfer
        .submit(start, &s.world.network, request)
        .unwrap();
    let task = s.world.transfer.task(id).unwrap();
    assert_eq!(task.status, TaskStatus::Failed);
    assert!(task.faults > 10);
    assert!(task
        .events
        .iter()
        .any(|e| e.description.contains("retry limit exhausted")));
}

#[test]
fn instance_limit_rejects_oversized_topologies() {
    let mut world = cumulus::provision::GpCloud::deterministic(205);
    let mut topology = Topology::single_node(InstanceType::T1Micro);
    topology.workers = vec![InstanceType::T1Micro; 25]; // EC2 limit is 20
    let id = world.create_instance(topology);
    let err = world.start_instance(SimTime::ZERO, &id).unwrap_err();
    assert!(
        err.to_string().contains("limit"),
        "expected a limit error, got: {err}"
    );
}

#[test]
fn expired_credentials_block_transfers_until_renewed() {
    let (mut s, report) = UseCaseScenario::deploy(206, SimTime::ZERO).unwrap();
    // 13 hours later the 12-hour GP certificate has lapsed.
    let much_later = report.ready_at + SimDuration::from_hours(13);
    let request = TransferRequest::globus(
        "boliu",
        ("galaxy#CVRG-Galaxy", "/home/boliu/x.zip"),
        (&s.laptop_endpoint, "/downloads/x.zip"),
        DataSize::from_mb(10),
    );
    let err = s
        .world
        .transfer
        .submit(much_later, &s.world.network, request.clone())
        .unwrap_err();
    assert!(err.to_string().contains("expired"), "{err}");

    // Re-issuing the certificate (what resume does) unblocks the user.
    let cred = {
        let inst = s.world.instance_mut(&s.instance).unwrap();
        inst.ca
            .issue("boliu", much_later, cumulus::provision::CERT_LIFETIME)
    };
    s.world.transfer.credentials.register(cred);
    assert!(s
        .world
        .transfer
        .submit(much_later, &s.world.network, request)
        .is_ok());
}

//! Workflows, provenance completeness, and sharing across the full stack:
//! a multi-step CRData workflow runs on a deployed cluster, every output is
//! traceable to its inputs and parameters, and the results can be shared
//! as a Galaxy Page.

use std::collections::BTreeMap;

use cumulus::cloud::InstanceType;
use cumulus::galaxy::{run_workflow, Content, ShareItem, Visibility, Workflow, WorkflowStep};
use cumulus::provision::Topology;
use cumulus::scenario::UseCaseScenario;
use cumulus::simkit::time::SimTime;

/// A realistic analysis workflow: normalize → (differential expression,
/// QC) in parallel → the DE table feeds a multiple-testing correction.
fn analysis_workflow() -> Workflow {
    Workflow::new("cvrg-analysis", &["cel_data"])
        .step(WorkflowStep::new("normalize", "crdata_affyNormalize").input("input", "cel_data"))
        .step(
            WorkflowStep::new("de", "crdata_affyDifferentialExpression")
                .from_step("input", "normalize", 0)
                .param("normalize", "no")
                .param("top", "100"),
        )
        .step(WorkflowStep::new("qc", "crdata_affyQC").from_step("input", "normalize", 0))
        .step(
            WorkflowStep::new("correct", "crdata_multipleTestingCorrection")
                .from_step("input", "de", 0)
                .param("column", "P.Value")
                .param("method", "holm"),
        )
}

#[test]
fn crdata_workflow_runs_end_to_end_with_full_provenance() {
    let mut topology = Topology::single_node(InstanceType::M1Small);
    topology.workers = vec![InstanceType::C1Medium; 2];
    let (mut s, report) = UseCaseScenario::deploy_with(301, SimTime::ZERO, topology).unwrap();
    let (cel, t1) = s.transfer_four_cel_samples(report.ready_at).unwrap();

    let mut inputs = BTreeMap::new();
    inputs.insert("cel_data".to_string(), cel);
    let result = {
        let instance = s.instance.clone();
        let pool = &mut s.world.instance_mut(&instance).unwrap().pool;
        run_workflow(
            &mut s.galaxy,
            pool,
            t1,
            "boliu",
            s.history,
            &analysis_workflow(),
            &inputs,
        )
        .unwrap()
    };
    assert_eq!(result.step_jobs.len(), 4);
    assert!(result.finished_at > t1);

    // Every step output exists and is Ok.
    for (step, outputs) in &result.step_outputs {
        for ds in outputs {
            let d = s.galaxy.dataset(*ds).unwrap();
            assert_eq!(
                d.state,
                cumulus::galaxy::DatasetState::Ok,
                "step {step} output {ds} not ok"
            );
        }
    }

    // The corrected table really carries the extra column.
    let corrected = result.step_outputs["correct"][0];
    let (cols, rows) = s
        .galaxy
        .dataset(corrected)
        .unwrap()
        .content
        .as_table()
        .expect("corrected table");
    assert_eq!(cols.last().map(String::as_str), Some("adj.P.Val"));
    assert_eq!(rows.len(), 100);

    // Provenance: the corrected table's lineage reaches the uploaded CEL
    // bundle through the normalized matrix and the DE table.
    let lineage = s.galaxy.provenance.lineage(corrected).unwrap();
    assert!(
        lineage.contains(&cel),
        "lineage misses the upload: {lineage:?}"
    );
    assert!(lineage.len() >= 3, "lineage too shallow: {lineage:?}");
    // Replay plan is in execution order and starts at the normalizer.
    let plan = s.galaxy.provenance.replay_plan(corrected).unwrap();
    assert_eq!(plan.first().unwrap().tool.0, "crdata_affyNormalize");
    assert_eq!(
        plan.last().unwrap().tool.0,
        "crdata_multipleTestingCorrection"
    );
    // Every recorded step retains its exact parameters.
    let de_record = plan
        .iter()
        .find(|r| r.tool.0 == "crdata_affyDifferentialExpression")
        .unwrap();
    assert_eq!(de_record.params.get("top").map(String::as_str), Some("100"));
    assert_eq!(
        de_record.params.get("adjust").map(String::as_str),
        Some("BH"),
        "defaulted parameters are captured too"
    );
}

#[test]
fn parallel_workflow_branches_use_multiple_workers() {
    let mut topology = Topology::single_node(InstanceType::M1Small);
    topology.workers = vec![InstanceType::C1Medium; 2];
    let (mut s, report) = UseCaseScenario::deploy_with(302, SimTime::ZERO, topology).unwrap();
    let (cel, t1) = s.transfer_four_cel_samples(report.ready_at).unwrap();
    let mut inputs = BTreeMap::new();
    inputs.insert("cel_data".to_string(), cel);

    // Workflow: one normalize, then 3 independent analyses.
    let wf = Workflow::new("fan-out", &["cel_data"])
        .step(WorkflowStep::new("norm", "crdata_affyNormalize").input("input", "cel_data"))
        .step(
            WorkflowStep::new("de", "crdata_affyDifferentialExpression")
                .from_step("input", "norm", 0),
        )
        .step(WorkflowStep::new("qc", "crdata_affyQC").from_step("input", "norm", 0))
        .step(WorkflowStep::new("pca", "crdata_affyPCA").from_step("input", "norm", 0));

    let result = {
        let instance = s.instance.clone();
        let pool = &mut s.world.instance_mut(&instance).unwrap().pool;
        run_workflow(&mut s.galaxy, pool, t1, "boliu", s.history, &wf, &inputs).unwrap()
    };
    // The three dependent steps ran concurrently: total < serialized time.
    // Each CRData run is ≥ 112 s serial; serialized would be ≥ 4×.
    let elapsed = result.finished_at.since(t1).as_secs_f64();
    assert!(
        elapsed < 3.0 * 112.0 + 300.0,
        "no parallelism visible: {elapsed}s"
    );
    // Jobs landed on distinct machines at some point.
    let machines: std::collections::BTreeSet<String> = {
        let pool = &s.world.instance(&s.instance).unwrap().pool;
        result
            .step_jobs
            .values()
            .filter_map(|j| s.galaxy.job(*j).ok())
            .filter_map(|j| j.condor_job)
            .filter_map(|cj| pool.job(cj).ok().and_then(|j| j.running_on.clone()))
            .map(|m| m.0)
            .collect()
    };
    assert!(
        machines.len() >= 2,
        "all jobs ran on one machine: {machines:?}"
    );
}

#[test]
fn results_can_be_published_as_a_page() {
    let (mut s, report) = UseCaseScenario::deploy(303, SimTime::ZERO).unwrap();
    let (cel, t1) = s.transfer_four_cel_samples(report.ready_at).unwrap();
    let (job, _) = s.run_differential_expression(t1, cel).unwrap();
    let table = s.galaxy.job(job).unwrap().outputs[0];

    // Private by default: another user cannot see it.
    assert!(!s
        .galaxy
        .sharing
        .can_view(ShareItem::Dataset(table), "reviewer", true));

    // Publishing a public page with a private embed is refused.
    let page = cumulus::galaxy::Page {
        slug: "cvrg-de".to_string(),
        title: "Differential expression in CVRG samples".to_string(),
        owner: "boliu".to_string(),
        body: "Methods and the resulting top table.".to_string(),
        embeds: vec![ShareItem::Dataset(table), ShareItem::History(s.history)],
        visibility: Visibility::Public,
    };
    assert!(s.galaxy.sharing.publish_page(page.clone()).is_err());

    // Make the embeds public, then publish.
    s.galaxy
        .sharing
        .set_visibility(ShareItem::Dataset(table), "boliu", Visibility::Public)
        .unwrap();
    s.galaxy
        .sharing
        .set_visibility(ShareItem::History(s.history), "boliu", Visibility::Public)
        .unwrap();
    let link = s.galaxy.sharing.publish_page(page).unwrap();
    assert_eq!(link, "/u/boliu/p/cvrg-de");
    let viewed = s
        .galaxy
        .sharing
        .view_page("cvrg-de", "reviewer", false)
        .unwrap();
    assert_eq!(viewed.embeds.len(), 2);
}

#[test]
fn workflow_rerun_reproduces_identical_results() {
    // "Galaxy supports reproducibility by capturing sufficient information
    // … so that the analysis can be repeated in the future."
    let run = |seed: u64| {
        let (mut s, report) = UseCaseScenario::deploy(seed, SimTime::ZERO).unwrap();
        let (cel, t1) = s.transfer_four_cel_samples(report.ready_at).unwrap();
        let mut inputs = BTreeMap::new();
        inputs.insert("cel_data".to_string(), cel);
        let result = {
            let instance = s.instance.clone();
            let pool = &mut s.world.instance_mut(&instance).unwrap().pool;
            run_workflow(
                &mut s.galaxy,
                pool,
                t1,
                "boliu",
                s.history,
                &analysis_workflow(),
                &inputs,
            )
            .unwrap()
        };
        let corrected = result.step_outputs["correct"][0];
        match &s.galaxy.dataset(corrected).unwrap().content {
            Content::Table { rows, .. } => rows.clone(),
            _ => panic!("expected table"),
        }
    };
    assert_eq!(run(304), run(304), "same inputs, same results");
}

//! Differential property test for the event-queue rewrite.
//!
//! Random schedule/cancel/step interleavings — generated from seeded
//! in-repo [`RngStream`]s, so every case is reproducible — run against
//! both the production [`Sim`] (slab + index heap + bucket ring) and a
//! trivially-correct reference model (a sorted list keyed by
//! `(time, schedule order)` with a cancelled-set). The two must agree on
//! *everything* observable: the exact fire sequence, every `cancel`
//! return value, and the pending-event count at every step.
//!
//! Delays are drawn so the sweep crosses the engine's internal tiers:
//! same-instant events, near-future deltas that land in the bucket ring,
//! boundary-straddling deltas, and far-horizon deltas that go to the
//! heap. Some events schedule follow-ups from inside their handler, which
//! exercises in-run insertion behind the ring's scan cursor.

use std::collections::HashSet;

use cumulus::simkit::prelude::*;
use cumulus::simkit::EventId;

const CASES: u64 = 96;

/// The reference model: an unordered vector of `(at_us, label)` plus a
/// cancelled-label set. Firing scans for the minimum `(at, label)` — O(n),
/// obviously correct, and label order IS schedule order, which is exactly
/// the engine's FIFO-within-timestamp guarantee.
#[derive(Default)]
struct Model {
    live: Vec<(u64, u64)>,
    cancelled: HashSet<u64>,
    now: u64,
}

impl Model {
    fn schedule(&mut self, at: u64, label: u64) {
        assert!(at >= self.now);
        self.live.push((at, label));
    }

    /// Mirrors `Sim::cancel`: true only for a still-pending event.
    fn cancel(&mut self, label: u64) -> bool {
        let pos = self.live.iter().position(|&(_, l)| l == label);
        match pos {
            Some(p) if self.cancelled.insert(label) => {
                self.live.remove(p);
                true
            }
            _ => false,
        }
    }

    fn pending(&self) -> usize {
        self.live.len()
    }

    /// Pop the next `(at, label)` in fire order, if any.
    fn step(&mut self) -> Option<(u64, u64)> {
        let min = self.live.iter().copied().min()?;
        self.live.retain(|&e| e != min);
        self.now = min.0;
        Some(min)
    }
}

/// Follow-up rule shared by both sides: an event whose label satisfies
/// `label % 5 == 0` schedules one child at `now + (label % 293 + 1)` µs
/// under label `label + FOLLOW_UP_BASE`.
const FOLLOW_UP_BASE: u64 = 1_000_000;

fn follow_up_delay(label: u64) -> u64 {
    label % 293 + 1
}

fn spawns_follow_up(label: u64) -> bool {
    label.is_multiple_of(5) && label < FOLLOW_UP_BASE
}

/// Schedule `label` on the real engine; the handler logs `(now, label)`
/// and applies the follow-up rule.
fn schedule_real(sim: &mut Sim<Vec<(u64, u64)>>, at: u64, label: u64) -> EventId {
    sim.schedule_at(SimTime::from_micros(at), move |sim| {
        let now = sim.now().as_micros();
        sim.world.push((now, label));
        if spawns_follow_up(label) {
            let child = label + FOLLOW_UP_BASE;
            sim.schedule_in(
                SimDuration::from_micros(follow_up_delay(label)),
                move |sim| {
                    let now = sim.now().as_micros();
                    sim.world.push((now, child));
                },
            );
        }
    })
}

/// A delay that sweeps across queue tiers: same-instant, in-ring,
/// boundary, and far-heap.
fn pick_delay(rng: &mut RngStream) -> u64 {
    match rng.uniform_int(0, 9) {
        0 => 0,
        1..=5 => rng.uniform_int(1, 900),        // bucket ring
        6 | 7 => rng.uniform_int(900, 1_200),    // straddles the ring window
        8 => rng.uniform_int(1_200, 50_000),     // far heap
        _ => rng.uniform_int(50_000, 5_000_000), // deep far heap
    }
}

#[test]
fn random_interleavings_match_the_reference_model() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "prop/queue-differential");
        let mut sim = Sim::new(Vec::new());
        let mut model = Model::default();
        // Cancel targets are drawn from every label ever scheduled, so
        // some hit already-fired or already-cancelled events — those must
        // be reported no-ops on both sides.
        let mut ids: Vec<(u64, EventId)> = Vec::new();
        let mut next_label = 0u64;

        let ops = rng.uniform_int(50, 250);
        for _ in 0..ops {
            match rng.uniform_int(0, 9) {
                // Schedule (most common op).
                0..=5 => {
                    let at = sim.now().as_micros() + pick_delay(&mut rng);
                    let label = next_label;
                    next_label += 1;
                    let id = schedule_real(&mut sim, at, label);
                    model.schedule(at, label);
                    ids.push((label, id));
                }
                // Cancel a random label (may already have fired).
                6 | 7 => {
                    if ids.is_empty() {
                        continue;
                    }
                    let k = rng.uniform_int(0, ids.len() as u64 - 1) as usize;
                    let (label, id) = ids[k];
                    let real = sim.cancel(id);
                    let reference = model.cancel(label);
                    assert_eq!(
                        real, reference,
                        "case {case}: cancel({label}) disagreed with the model"
                    );
                }
                // Step a small burst of events on both sides.
                _ => {
                    for _ in 0..rng.uniform_int(1, 8) {
                        let fired = sim.step();
                        let expected = model.step();
                        assert_eq!(
                            fired,
                            expected.is_some(),
                            "case {case}: step() liveness diverged"
                        );
                        let Some((at, label)) = expected else { break };
                        let got = *sim.world.last().expect("an event fired");
                        assert_eq!(
                            got,
                            (at, label),
                            "case {case}: fire order diverged from the model"
                        );
                        // Mirror the follow-up the real handler created.
                        if spawns_follow_up(label) {
                            model.schedule(at + follow_up_delay(label), label + FOLLOW_UP_BASE);
                        }
                    }
                }
            }
            assert_eq!(
                sim.pending_events(),
                model.pending(),
                "case {case}: pending-event count drifted"
            );
        }

        // Drain both to the end and compare the complete fire sequences.
        let outcome = sim.run_to_completion();
        assert_eq!(outcome, RunOutcome::QueueEmpty, "case {case}");
        let mut expected_tail = Vec::new();
        while let Some((at, label)) = model.step() {
            expected_tail.push((at, label));
            if spawns_follow_up(label) {
                model.schedule(at + follow_up_delay(label), label + FOLLOW_UP_BASE);
            }
        }
        let fired = sim.world.len();
        let tail = &sim.world[fired - expected_tail.len()..];
        assert_eq!(
            tail,
            &expected_tail[..],
            "case {case}: final drain diverged from the model"
        );
        assert_eq!(sim.pending_events(), 0, "case {case}");
    }
}

/// Same-instant bursts: many events at exactly equal timestamps must fire
/// strictly in schedule order on both sides, including across cancel
/// churn inside the burst.
#[test]
fn equal_timestamp_bursts_fire_in_schedule_order() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "prop/queue-ties");
        let mut sim = Sim::new(Vec::new());
        let mut expected = Vec::new();
        let mut ids = Vec::new();
        let at = rng.uniform_int(0, 2_000);
        let n = rng.uniform_int(2, 40);
        for label in 0..n {
            let id = sim.schedule_at(SimTime::from_micros(at), move |sim: &mut Sim<Vec<u64>>| {
                sim.world.push(label);
            });
            ids.push((label, id));
        }
        // Cancel a random subset.
        for &(label, id) in &ids {
            if rng.uniform_int(0, 3) == 0 {
                assert!(sim.cancel(id), "case {case}: first cancel must succeed");
                assert!(!sim.cancel(id), "case {case}: double cancel must fail");
            } else {
                expected.push(label);
            }
        }
        assert_eq!(sim.run_to_completion(), RunOutcome::QueueEmpty);
        assert_eq!(sim.world, expected, "case {case}: tie order broke");
    }
}

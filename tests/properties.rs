//! Property-style tests over core invariants.
//!
//! The offline build ships no proptest, so these run each property over a
//! deterministic sweep of randomized cases generated from named
//! [`RngStream`]s — same spirit (generate, check an invariant, report the
//! violating case), fully reproducible by construction.

use cumulus::cloud::{BillingLedger, BillingMode, InstanceId, InstanceType};
use cumulus::crdata::stats::fdr::{adjust, Adjustment};
use cumulus::crdata::stats::special::{normal_cdf, t_cdf};
use cumulus::htc::{ClassAd, Expr, Value};
use cumulus::net::{DataSize, Link, TcpConfig};
use cumulus::provision::{IniDoc, Json, Topology};
use cumulus::simkit::prelude::*;
use cumulus::transfer::Protocol;

const CASES: u64 = 64;

fn pick_type(rng: &mut RngStream) -> InstanceType {
    let all = InstanceType::ALL;
    all[rng.uniform_int(0, all.len() as u64 - 1) as usize]
}

// ----- DES kernel -------------------------------------------------

#[test]
fn des_executes_events_in_nondecreasing_time_order() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "prop/des-order");
        let n = rng.uniform_int(1, 59) as usize;
        let mut sim = Sim::new(Vec::<u64>::new());
        for _ in 0..n {
            let d = rng.uniform_int(0, 99_999);
            sim.schedule_at(SimTime::from_micros(d), move |sim: &mut Sim<Vec<u64>>| {
                let now = sim.now().as_micros();
                sim.world.push(now);
            });
        }
        sim.run_to_completion();
        for pair in sim.world.windows(2) {
            assert!(pair[0] <= pair[1], "case {case}: time went backwards");
        }
    }
}

#[test]
fn des_cancellation_never_fires() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "prop/des-cancel");
        let n = rng.uniform_int(2, 39) as usize;
        let mut sim = Sim::new(0u32);
        let mut ids = Vec::new();
        for _ in 0..n {
            let d = rng.uniform_int(1, 9_999);
            ids.push(
                sim.schedule_at(SimTime::from_micros(d), |sim: &mut Sim<u32>| {
                    sim.world += 1;
                }),
            );
        }
        let mut cancelled = 0;
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                sim.cancel(*id);
                cancelled += 1;
            }
        }
        sim.run_to_completion();
        assert_eq!(sim.world as usize, n - cancelled, "case {case}");
    }
}

// ----- billing -----------------------------------------------------

#[test]
fn billing_is_monotone_and_additive() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "prop/billing");
        let itype = pick_type(&mut rng);
        let start = rng.uniform_int(0, 9_999);
        let len1 = rng.uniform_int(1, 49_999);
        let gap = rng.uniform_int(1, 49_999);
        let len2 = rng.uniform_int(1, 49_999);

        let mut ledger = BillingLedger::new();
        let t = |s: u64| SimTime::ZERO + SimDuration::from_secs(s);
        ledger.open(InstanceId(1), itype, t(start));
        ledger.close(InstanceId(1), t(start + len1));
        ledger.open(InstanceId(1), itype, t(start + len1 + gap));
        ledger.close(InstanceId(1), t(start + len1 + gap + len2));
        let end = t(start + len1 + gap + len2);

        // Monotone in observation time.
        let mut prev = 0.0;
        for s in [
            start,
            start + len1,
            start + len1 + gap,
            start + len1 + gap + len2,
        ] {
            let c = ledger.total_cost(BillingMode::PerSecond, t(s));
            assert!(c >= prev - 1e-12, "case {case}: cost decreased");
            prev = c;
        }
        // Additive: total equals the sum of the two segments; the gap is free.
        let expected = (len1 + len2) as f64 / 3600.0 * itype.price_per_hour();
        let total = ledger.total_cost(BillingMode::PerSecond, end);
        assert!(
            (total - expected).abs() < 1e-9,
            "case {case}: total={total}"
        );
        // Hourly mode never undercuts proportional mode.
        assert!(
            ledger.total_cost(BillingMode::HourlyRoundUp, end) >= total - 1e-12,
            "case {case}"
        );
    }
}

// ----- transfer models ----------------------------------------------

#[test]
fn transfer_rates_are_monotone_in_size() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "prop/transfer-mono");
        let mb_small = rng.uniform_int(1, 99);
        let factor = rng.uniform_int(2, 49);
        let link = cumulus::transfer::calibrated_wan_link();
        for protocol in [Protocol::GLOBUS_DEFAULT, Protocol::Ftp] {
            let small = protocol
                .achieved_rate(DataSize::from_mb(mb_small), &link)
                .unwrap();
            let large = protocol
                .achieved_rate(DataSize::from_mb(mb_small * factor), &link)
                .unwrap();
            assert!(large.as_mbps() >= small.as_mbps(), "case {case}");
            // And never exceeds the steady-state rate.
            assert!(
                large.as_mbps() <= protocol.steady_rate(&link).as_mbps() + 1e-9,
                "case {case}"
            );
        }
    }
}

#[test]
fn tcp_rate_monotone_in_bandwidth_and_streams() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "prop/tcp-mono");
        let bw = rng.uniform_range(1.0, 1000.0);
        let streams = rng.uniform_int(1, 15) as u32;
        let cfg = TcpConfig::default();
        let slow = Link::new(30.0, bw);
        let fast = Link::new(30.0, bw * 2.0);
        assert!(
            cfg.steady_rate(&fast, streams).as_mbps() >= cfg.steady_rate(&slow, streams).as_mbps(),
            "case {case}"
        );
        assert!(
            cfg.steady_rate(&slow, streams + 1).as_mbps()
                >= cfg.steady_rate(&slow, streams).as_mbps(),
            "case {case}"
        );
    }
}

// ----- statistics ----------------------------------------------------

#[test]
fn bh_adjustment_invariants() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "prop/bh");
        let n = rng.uniform_int(1, 79) as usize;
        let ps: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let adj = adjust(&ps, Adjustment::BenjaminiHochberg);
        assert_eq!(adj.len(), ps.len());
        for (raw, a) in ps.iter().zip(&adj) {
            assert!(
                *a >= *raw - 1e-12,
                "case {case}: adjustment reduced a p-value"
            );
            assert!(*a <= 1.0 + 1e-12, "case {case}");
        }
        // Order preservation.
        let mut idx: Vec<usize> = (0..ps.len()).collect();
        idx.sort_by(|&a, &b| ps[a].partial_cmp(&ps[b]).unwrap());
        for pair in idx.windows(2) {
            assert!(adj[pair[0]] <= adj[pair[1]] + 1e-12, "case {case}");
        }
    }
}

#[test]
fn cdfs_are_monotone_and_bounded() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "prop/cdf");
        let z1 = rng.uniform_range(-6.0, 6.0);
        let z2 = rng.uniform_range(-6.0, 6.0);
        let df = rng.uniform_range(1.0, 200.0);
        let (lo, hi) = if z1 <= z2 { (z1, z2) } else { (z2, z1) };
        assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12, "case {case}");
        assert!(t_cdf(lo, df) <= t_cdf(hi, df) + 1e-12, "case {case}");
        for z in [lo, hi] {
            assert!((0.0..=1.0).contains(&normal_cdf(z)), "case {case}");
            assert!((0.0..=1.0).contains(&t_cdf(z, df)), "case {case}");
        }
        // Symmetry.
        assert!(
            (normal_cdf(lo) + normal_cdf(-lo) - 1.0).abs() < 1e-9,
            "case {case}"
        );
        assert!(
            (t_cdf(lo, df) + t_cdf(-lo, df) - 1.0).abs() < 1e-9,
            "case {case}"
        );
    }
}

// ----- ClassAd expressions ------------------------------------------

#[test]
fn classad_numeric_comparisons_match_rust() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "prop/classad");
        let a = rng.uniform_int(0, 1999) as i64 - 1000;
        let b = rng.uniform_int(0, 1999) as i64 - 1000;
        let target = ClassAd::new()
            .with("A", Value::Int(a))
            .with("B", Value::Int(b));
        let own = ClassAd::new();
        let cases = [
            ("A > B", a > b),
            ("A >= B", a >= b),
            ("A < B", a < b),
            ("A <= B", a <= b),
            ("A == B", a == b),
            ("A != B", a != b),
        ];
        for (src, expected) in cases {
            let e = Expr::parse(src).unwrap();
            assert_eq!(e.eval_bool(&target, &own), expected, "case {case}: {src}");
        }
    }
}

// ----- config parsers -------------------------------------------------

#[test]
fn ini_round_trips_arbitrary_settings() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "prop/ini");
        let n = rng.uniform_int(1, 9) as usize;
        let mut doc = IniDoc::new();
        for i in 0..n {
            let len = rng.uniform_int(1, 10) as usize;
            let v: String = (0..len)
                .map(|_| (b'a' + rng.uniform_int(0, 25) as u8) as char)
                .collect();
            doc.set("section", &format!("key{i}"), &v);
        }
        let parsed = IniDoc::parse(&doc.render()).unwrap();
        assert_eq!(parsed, doc, "case {case}");
    }
}

#[test]
fn json_round_trips_strings() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "prop/json");
        let len = rng.uniform_int(0, 60) as usize;
        // Printable ASCII, including quotes and backslashes.
        let s: String = (0..len)
            .map(|_| (rng.uniform_int(0x20, 0x7e) as u8) as char)
            .collect();
        let v = Json::str(&s);
        let rendered = v.render();
        assert_eq!(Json::parse(&rendered).unwrap(), v, "case {case}: {s:?}");
    }
}

// ----- topology diff/apply convergence --------------------------------

#[test]
fn topology_diff_of_identical_is_empty_and_diff_apply_converges() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "prop/topology");
        let initial_workers = rng.uniform_int(0, 4) as usize;
        let target_workers = rng.uniform_int(0, 4) as usize;
        let head = pick_type(&mut rng);
        let wtype = pick_type(&mut rng);

        let mut a = Topology::single_node(head);
        a.workers = vec![wtype; initial_workers];
        assert!(a.diff(&a.clone()).is_empty(), "case {case}");

        let mut b = a.clone();
        b.workers = vec![wtype; target_workers];
        let delta = a.diff(&b);
        // The delta sizes match the worker count difference.
        if target_workers >= initial_workers {
            assert_eq!(
                delta.add_workers.len(),
                target_workers - initial_workers,
                "case {case}"
            );
            assert!(delta.remove_workers.is_empty(), "case {case}");
        } else {
            assert_eq!(
                delta.remove_workers.len(),
                initial_workers - target_workers,
                "case {case}"
            );
            assert!(delta.add_workers.is_empty(), "case {case}");
        }
        // Applying the "update" then diffing again is empty.
        assert!(b.diff(&b.clone()).is_empty(), "case {case}");
    }
}

// ----- data sizes -----------------------------------------------------

#[test]
fn data_size_arithmetic_is_consistent() {
    for case in 0..CASES {
        let mut rng = RngStream::derive(case, "prop/datasize");
        let a = rng.uniform_int(0, u32::MAX as u64 - 1);
        let b = rng.uniform_int(0, u32::MAX as u64 - 1);
        let da = DataSize::from_bytes(a);
        let db = DataSize::from_bytes(b);
        assert_eq!((da + db).as_bytes(), a + b, "case {case}");
        assert_eq!(
            da.saturating_sub(db).as_bytes(),
            a.saturating_sub(b),
            "case {case}"
        );
        assert_eq!(da.min(db).as_bytes(), a.min(b), "case {case}");
        let mb = da.as_mb_f64();
        assert!((mb * 1e6 - a as f64).abs() < 1.0, "case {case}");
    }
}

//! Property-based tests over core invariants (proptest).

use proptest::prelude::*;

use cumulus::cloud::{BillingLedger, BillingMode, InstanceId, InstanceType};
use cumulus::crdata::stats::fdr::{adjust, Adjustment};
use cumulus::crdata::stats::special::{normal_cdf, t_cdf};
use cumulus::htc::{ClassAd, Expr, Value};
use cumulus::net::{DataSize, Link, TcpConfig};
use cumulus::provision::{IniDoc, Json, Topology};
use cumulus::simkit::prelude::*;
use cumulus::transfer::Protocol;

fn instance_type_strategy() -> impl Strategy<Value = InstanceType> {
    prop::sample::select(InstanceType::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ----- DES kernel -------------------------------------------------

    #[test]
    fn des_executes_events_in_nondecreasing_time_order(delays in prop::collection::vec(0u64..100_000, 1..60)) {
        let mut sim = Sim::new(Vec::<u64>::new());
        for d in delays {
            sim.schedule_at(SimTime::from_micros(d), move |sim: &mut Sim<Vec<u64>>| {
                let now = sim.now().as_micros();
                sim.world.push(now);
            });
        }
        sim.run_to_completion();
        for pair in sim.world.windows(2) {
            prop_assert!(pair[0] <= pair[1]);
        }
    }

    #[test]
    fn des_cancellation_never_fires(delays in prop::collection::vec(1u64..10_000, 2..40)) {
        let mut sim = Sim::new(0u32);
        let mut ids = Vec::new();
        for d in &delays {
            ids.push(sim.schedule_at(SimTime::from_micros(*d), |sim: &mut Sim<u32>| {
                sim.world += 1;
            }));
        }
        // Cancel every other event.
        let mut cancelled = 0;
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                sim.cancel(*id);
                cancelled += 1;
            }
        }
        sim.run_to_completion();
        prop_assert_eq!(sim.world as usize, delays.len() - cancelled);
    }

    // ----- billing -----------------------------------------------------

    #[test]
    fn billing_is_monotone_and_additive(
        itype in instance_type_strategy(),
        start in 0u64..10_000,
        len1 in 1u64..50_000,
        gap in 1u64..50_000,
        len2 in 1u64..50_000,
    ) {
        let mut ledger = BillingLedger::new();
        let t = |s: u64| SimTime::ZERO + SimDuration::from_secs(s);
        ledger.open(InstanceId(1), itype, t(start));
        ledger.close(InstanceId(1), t(start + len1));
        ledger.open(InstanceId(1), itype, t(start + len1 + gap));
        ledger.close(InstanceId(1), t(start + len1 + gap + len2));
        let end = t(start + len1 + gap + len2);

        // Monotone in observation time.
        let mut prev = 0.0;
        for s in [start, start + len1, start + len1 + gap, start + len1 + gap + len2] {
            let c = ledger.total_cost(BillingMode::PerSecond, t(s));
            prop_assert!(c >= prev - 1e-12);
            prev = c;
        }
        // Additive: total equals the sum of the two segments; the gap is free.
        let expected = (len1 + len2) as f64 / 3600.0 * itype.price_per_hour();
        let total = ledger.total_cost(BillingMode::PerSecond, end);
        prop_assert!((total - expected).abs() < 1e-9);
        // Hourly mode never undercuts proportional mode.
        prop_assert!(ledger.total_cost(BillingMode::HourlyRoundUp, end) >= total - 1e-12);
    }

    // ----- transfer models ----------------------------------------------

    #[test]
    fn transfer_rates_are_monotone_in_size(
        mb_small in 1u64..100,
        factor in 2u64..50,
    ) {
        let link = cumulus::transfer::calibrated_wan_link();
        for protocol in [Protocol::GLOBUS_DEFAULT, Protocol::Ftp] {
            let small = protocol.achieved_rate(DataSize::from_mb(mb_small), &link).unwrap();
            let large = protocol.achieved_rate(DataSize::from_mb(mb_small * factor), &link).unwrap();
            prop_assert!(large.as_mbps() >= small.as_mbps());
            // And never exceeds the steady-state rate.
            prop_assert!(large.as_mbps() <= protocol.steady_rate(&link).as_mbps() + 1e-9);
        }
    }

    #[test]
    fn tcp_rate_monotone_in_bandwidth_and_streams(
        bw in 1.0f64..1000.0,
        streams in 1u32..16,
    ) {
        let cfg = TcpConfig::default();
        let slow = Link::new(30.0, bw);
        let fast = Link::new(30.0, bw * 2.0);
        prop_assert!(cfg.steady_rate(&fast, streams).as_mbps() >= cfg.steady_rate(&slow, streams).as_mbps());
        prop_assert!(cfg.steady_rate(&slow, streams + 1).as_mbps() >= cfg.steady_rate(&slow, streams).as_mbps());
    }

    // ----- statistics ----------------------------------------------------

    #[test]
    fn bh_adjustment_invariants(ps in prop::collection::vec(0.0f64..=1.0, 1..80)) {
        let adj = adjust(&ps, Adjustment::BenjaminiHochberg);
        prop_assert_eq!(adj.len(), ps.len());
        for (raw, a) in ps.iter().zip(&adj) {
            prop_assert!(*a >= *raw - 1e-12, "adjustment reduced a p-value");
            prop_assert!(*a <= 1.0 + 1e-12);
        }
        // Order preservation.
        let mut idx: Vec<usize> = (0..ps.len()).collect();
        idx.sort_by(|&a, &b| ps[a].partial_cmp(&ps[b]).unwrap());
        for pair in idx.windows(2) {
            prop_assert!(adj[pair[0]] <= adj[pair[1]] + 1e-12);
        }
    }

    #[test]
    fn cdfs_are_monotone_and_bounded(z1 in -6.0f64..6.0, z2 in -6.0f64..6.0, df in 1.0f64..200.0) {
        let (lo, hi) = if z1 <= z2 { (z1, z2) } else { (z2, z1) };
        prop_assert!(normal_cdf(lo) <= normal_cdf(hi) + 1e-12);
        prop_assert!(t_cdf(lo, df) <= t_cdf(hi, df) + 1e-12);
        for z in [lo, hi] {
            prop_assert!((0.0..=1.0).contains(&normal_cdf(z)));
            prop_assert!((0.0..=1.0).contains(&t_cdf(z, df)));
        }
        // Symmetry.
        prop_assert!((normal_cdf(lo) + normal_cdf(-lo) - 1.0).abs() < 1e-9);
        prop_assert!((t_cdf(lo, df) + t_cdf(-lo, df) - 1.0).abs() < 1e-9);
    }

    // ----- ClassAd expressions ------------------------------------------

    #[test]
    fn classad_numeric_comparisons_match_rust(a in -1000i64..1000, b in -1000i64..1000) {
        let target = ClassAd::new().with("A", Value::Int(a)).with("B", Value::Int(b));
        let own = ClassAd::new();
        let cases = [
            ("A > B", a > b),
            ("A >= B", a >= b),
            ("A < B", a < b),
            ("A <= B", a <= b),
            ("A == B", a == b),
            ("A != B", a != b),
        ];
        for (src, expected) in cases {
            let e = Expr::parse(src).unwrap();
            prop_assert_eq!(e.eval_bool(&target, &own), expected, "{}", src);
        }
    }

    // ----- config parsers -------------------------------------------------

    #[test]
    fn ini_round_trips_arbitrary_settings(
        values in prop::collection::vec("[a-z]{1,10}", 1..10),
    ) {
        let mut doc = IniDoc::new();
        for (i, v) in values.iter().enumerate() {
            doc.set("section", &format!("key{i}"), v);
        }
        let parsed = IniDoc::parse(&doc.render()).unwrap();
        prop_assert_eq!(parsed, doc);
    }

    #[test]
    fn json_round_trips_strings(s in "[ -~]{0,60}") {
        let v = Json::str(&s);
        let rendered = v.render();
        prop_assert_eq!(Json::parse(&rendered).unwrap(), v);
    }

    // ----- topology diff/apply convergence --------------------------------

    #[test]
    fn topology_diff_of_identical_is_empty_and_diff_apply_converges(
        initial_workers in 0usize..5,
        target_workers in 0usize..5,
        head in instance_type_strategy(),
        wtype in instance_type_strategy(),
    ) {
        let mut a = Topology::single_node(head);
        a.workers = vec![wtype; initial_workers];
        prop_assert!(a.diff(&a.clone()).is_empty());

        let mut b = a.clone();
        b.workers = vec![wtype; target_workers];
        let delta = a.diff(&b);
        // The delta sizes match the worker count difference.
        if target_workers >= initial_workers {
            prop_assert_eq!(delta.add_workers.len(), target_workers - initial_workers);
            prop_assert!(delta.remove_workers.is_empty());
        } else {
            prop_assert_eq!(delta.remove_workers.len(), initial_workers - target_workers);
            prop_assert!(delta.add_workers.is_empty());
        }
        // Applying the "update" then diffing again is empty.
        prop_assert!(b.diff(&b.clone()).is_empty());
    }

    // ----- data sizes -----------------------------------------------------

    #[test]
    fn data_size_arithmetic_is_consistent(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let da = DataSize::from_bytes(a);
        let db = DataSize::from_bytes(b);
        prop_assert_eq!((da + db).as_bytes(), a + b);
        prop_assert_eq!(da.saturating_sub(db).as_bytes(), a.saturating_sub(b));
        prop_assert_eq!(da.min(db).as_bytes(), a.min(b));
        let mb = da.as_mb_f64();
        prop_assert!((mb * 1e6 - a as f64).abs() < 1.0);
    }
}

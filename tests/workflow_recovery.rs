//! Workflow-level recovery across the full stack: a mid-run preemption
//! loses the tail of a CRData analysis, the completed prefix is recovered
//! through the content-addressed data plane, and only the lost suffix
//! re-executes. The headline property: with a warm cache, resuming
//! re-stages **zero** bytes for the completed steps.

use std::collections::BTreeMap;

use cumulus::cloud::InstanceType;
use cumulus::galaxy::{resume_workflow, run_workflow, RecoveryDecision, Workflow, WorkflowStep};
use cumulus::provision::Topology;
use cumulus::scenario::UseCaseScenario;
use cumulus::simkit::time::SimTime;
use cumulus::store::{DataPlane, DataSize, EvictionPolicy, ObjectStoreConfig, SharingBackend};

/// The same analysis as the provenance suite: normalize → (DE, QC) in
/// parallel → multiple-testing correction on the DE table.
fn analysis_workflow() -> Workflow {
    Workflow::new("cvrg-analysis", &["cel_data"])
        .step(WorkflowStep::new("normalize", "crdata_affyNormalize").input("input", "cel_data"))
        .step(
            WorkflowStep::new("de", "crdata_affyDifferentialExpression")
                .from_step("input", "normalize", 0)
                .param("normalize", "no")
                .param("top", "100"),
        )
        .step(WorkflowStep::new("qc", "crdata_affyQC").from_step("input", "normalize", 0))
        .step(
            WorkflowStep::new("correct", "crdata_multipleTestingCorrection")
                .from_step("input", "de", 0)
                .param("column", "P.Value")
                .param("method", "holm"),
        )
}

fn recovery_plane() -> DataPlane {
    DataPlane::new(
        SharingBackend::CachedObjectStore,
        400.0,
        ObjectStoreConfig::default(),
        DataSize::from_gb(2),
        EvictionPolicy::Lru,
    )
}

#[test]
fn resume_after_preemption_restages_zero_bytes_for_completed_steps() {
    let mut topology = Topology::single_node(InstanceType::M1Small);
    topology.workers = vec![InstanceType::C1Medium; 2];
    let (mut s, report) = UseCaseScenario::deploy_with(901, SimTime::ZERO, topology).unwrap();
    let (cel, t1) = s.transfer_four_cel_samples(report.ready_at).unwrap();

    let wf = analysis_workflow();
    let mut inputs = BTreeMap::new();
    inputs.insert("cel_data".to_string(), cel);

    // First run completes and yields a checkpoint.
    let instance = s.instance.clone();
    let result = {
        let pool = &mut s.world.instance_mut(&instance).unwrap().pool;
        run_workflow(&mut s.galaxy, pool, t1, "boliu", s.history, &wf, &inputs).unwrap()
    };
    assert_eq!(result.checkpoint.steps.len(), 4, "every step checkpointed");
    let corrected_before = result.step_outputs["correct"][0];
    let content_before = s.galaxy.dataset(corrected_before).unwrap().content.clone();

    // Preemption mid-"correct": its output is lost with the worker, the
    // prefix outputs survive in a worker cache that stayed up.
    let mut checkpoint = result.checkpoint.clone();
    checkpoint.steps.remove("correct");
    let mut plane = recovery_plane();
    checkpoint.publish(&mut plane, "survivor");

    // Resume onto the warm worker.
    let report = {
        let pool = &mut s.world.instance_mut(&instance).unwrap().pool;
        resume_workflow(
            &mut s.galaxy,
            pool,
            &mut plane,
            "survivor",
            result.finished_at,
            "boliu",
            s.history,
            &wf,
            &inputs,
            &checkpoint,
        )
        .unwrap()
    };

    // Completed steps re-stage ~0 bytes: every recovered output hits the
    // local cache, nothing crosses the network.
    assert_eq!(report.restaged_bytes, DataSize::ZERO);
    for step in ["normalize", "de", "qc"] {
        assert!(
            matches!(
                report.decisions[step],
                RecoveryDecision::Resumed { network_bytes } if network_bytes.is_zero()
            ),
            "step {step} should resume for free: {:?}",
            report.decisions[step]
        );
    }
    assert_eq!(report.decisions["correct"], RecoveryDecision::Rerun);

    // Only the lost suffix re-executed...
    assert_eq!(report.result.step_jobs.len(), 1);
    assert!(report.result.step_jobs.contains_key("correct"));
    // ...and reproduced the original table exactly.
    let corrected_after = report.result.step_outputs["correct"][0];
    assert_eq!(
        s.galaxy.dataset(corrected_after).unwrap().content,
        content_before
    );
    // The resumed run is itself fully checkpointed again.
    assert_eq!(report.result.checkpoint.steps.len(), 4);
}

#[test]
fn cold_resume_pays_the_object_store_but_still_skips_recompute() {
    let mut topology = Topology::single_node(InstanceType::M1Small);
    topology.workers = vec![InstanceType::C1Medium; 2];
    let (mut s, report) = UseCaseScenario::deploy_with(902, SimTime::ZERO, topology).unwrap();
    let (cel, t1) = s.transfer_four_cel_samples(report.ready_at).unwrap();

    let wf = analysis_workflow();
    let mut inputs = BTreeMap::new();
    inputs.insert("cel_data".to_string(), cel);
    let instance = s.instance.clone();
    let result = {
        let pool = &mut s.world.instance_mut(&instance).unwrap().pool;
        run_workflow(&mut s.galaxy, pool, t1, "boliu", s.history, &wf, &inputs).unwrap()
    };

    // Every cache died with its worker; only the object store kept the
    // outputs. Resume onto a brand-new replacement node.
    let mut plane = recovery_plane();
    for step in result.checkpoint.steps.values() {
        for o in &step.outputs {
            plane.object.put(o.content, o.size);
        }
    }
    let report = {
        let pool = &mut s.world.instance_mut(&instance).unwrap().pool;
        resume_workflow(
            &mut s.galaxy,
            pool,
            &mut plane,
            "replacement",
            result.finished_at,
            "boliu",
            s.history,
            &wf,
            &inputs,
            &result.checkpoint,
        )
        .unwrap()
    };
    // No recompute at all, but the recovery bytes are honest: everything
    // came back over the network from the object store.
    assert!(report.result.step_jobs.is_empty());
    assert!(!report.restaged_bytes.is_zero());
    assert!(!report.restage_time.is_zero());
    assert_eq!(report.result.step_outputs.len(), 4);
}

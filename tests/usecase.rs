//! End-to-end integration of the paper's §V.A use case (experiment E1).
//!
//! Deploy → transfer → analyze → scale → re-analyze, asserting both the
//! calibrated performance numbers and the integrity of the computed
//! artifacts.

use cumulus::cloud::{BillingMode, InstanceType};
use cumulus::galaxy::{DatasetState, GalaxyJobState};
use cumulus::provision::{GpState, Topology};
use cumulus::scenario::UseCaseScenario;
use cumulus::simkit::time::SimTime;

#[test]
fn full_use_case_reproduces_paper_numbers() {
    let t0 = SimTime::ZERO;
    let (mut s, report) = UseCaseScenario::deploy(101, t0).unwrap();

    // Deployment: Figure 10 says 8.8 minutes on m1.small.
    let deploy_mins = report.duration_from(t0).as_mins_f64();
    assert!(
        (deploy_mins - 8.8).abs() < 0.45,
        "deployment {deploy_mins} min"
    );

    // Steps 1-3 on the small dataset.
    let (ds_small, t1) = s.transfer_four_cel_samples(report.ready_at).unwrap();
    let (job1, t2) = s.run_differential_expression(t1, ds_small).unwrap();
    assert_eq!(s.galaxy.job(job1).unwrap().state, GalaxyJobState::Ok);

    // Step 4 variant A: larger dataset on the small node.
    let (ds_large, t3) = s.transfer_affy_cel_samples(t2).unwrap();
    let (job2, t4) = s.run_differential_expression(t3, ds_large).unwrap();
    let small_exec = (t2.since(t1) + t4.since(t3)).as_mins_f64();
    assert!(
        (small_exec - 10.7).abs() < 0.2,
        "steps 3+4 on m1.small: {small_exec} min (paper 10.7)"
    );

    // Cost: the paper reports ≈ $0.007 for the small-instance execution.
    let exec_cost = s.window_cost(t1, t2) + s.window_cost(t3, t4);
    assert!(
        (exec_cost - 0.007).abs() < 0.002,
        "execution cost ${exec_cost:.4} (paper $0.007)"
    );

    // Scale up: the medium node join must land "within minutes".
    let joined = s.add_medium_worker(t4).unwrap();
    let join_mins = joined.since(t4).as_mins_f64();
    assert!(
        join_mins < 8.0 && join_mins > 1.0,
        "join took {join_mins} min"
    );

    // Rerun both datasets: now ≈ 6.9 minutes.
    let (ds_small2, u1) = s.transfer_four_cel_samples(joined).unwrap();
    let (_, u2) = s.run_differential_expression(u1, ds_small2).unwrap();
    let (ds_large2, u3) = s.transfer_affy_cel_samples(u2).unwrap();
    let (_, u4) = s.run_differential_expression(u3, ds_large2).unwrap();
    let medium_exec = (u2.since(u1) + u4.since(u3)).as_mins_f64();
    assert!(
        (medium_exec - 6.9).abs() < 0.2,
        "steps 3+4 with c1.medium: {medium_exec} min (paper 6.9)"
    );

    // Artifact integrity: both top tables are real, ranked tables.
    for job in [job1, job2] {
        let outputs = &s.galaxy.job(job).unwrap().outputs;
        let table = s.galaxy.dataset(outputs[0]).unwrap();
        assert_eq!(table.state, DatasetState::Ok);
        let (cols, rows) = table.content.as_table().expect("top table is tabular");
        assert_eq!(cols[0], "ID");
        assert!(!rows.is_empty());
        // adj.P.Val column is sorted ascending.
        let ps: Vec<f64> = rows.iter().map(|r| r[4].parse().unwrap()).collect();
        for pair in ps.windows(2) {
            assert!(pair[0] <= pair[1] + 1e-12, "top table not ranked");
        }
        // Figure is a well-formed SVG.
        let figure = s.galaxy.dataset(outputs[1]).unwrap();
        match &figure.content {
            cumulus::galaxy::Content::Svg(svg) => {
                assert!(svg.starts_with("<svg"));
                assert!(svg.ends_with("</svg>"));
            }
            other => panic!("figure should be SVG, got {other:?}"),
        }
    }
}

#[test]
fn transfers_into_galaxy_via_globus_are_fast_and_recorded() {
    let (mut s, report) = UseCaseScenario::deploy(102, SimTime::ZERO).unwrap();
    let (ds, when) = s.transfer_four_cel_samples(report.ready_at).unwrap();
    // inter-site GridFTP path moves 10.7 MB in seconds, not minutes.
    let secs = when.since(report.ready_at).as_secs_f64();
    assert!(secs < 60.0, "transfer took {secs} s");
    // The dataset landed in the history with the declared size.
    let d = s.galaxy.dataset(ds).unwrap();
    assert_eq!(d.name, "fourCelFileSamples.zip");
    assert_eq!(d.size.as_mb_f64(), 10.7);
    assert_eq!(d.state, DatasetState::Ok);
    // The transfer service has the task on file for this user.
    assert_eq!(s.world.transfer.tasks_for("boliu").len(), 1);
}

#[test]
fn concurrent_users_share_the_cluster_fairly() {
    // "the same approach can be applied for concurrent execution when
    // multiple users submit tasks … at the same time."
    let mut topology = Topology::single_node(InstanceType::M1Small);
    topology.workers = vec![InstanceType::C1Medium; 2];
    let (mut s, report) = UseCaseScenario::deploy_with(103, SimTime::ZERO, topology).unwrap();
    s.galaxy.register_user("user2");
    let h2 = s
        .galaxy
        .create_history(report.ready_at, "user2", "second analysis")
        .unwrap();

    let (ds, t1) = s.transfer_four_cel_samples(report.ready_at).unwrap();
    // Both users fire three analyses each.
    let mut params = std::collections::BTreeMap::new();
    params.insert("input".to_string(), ds.0.to_string());
    let mut jobs = Vec::new();
    {
        let pool = &mut s.world.instance_mut(&s.instance).unwrap().pool;
        for i in 0..6 {
            let (user, history) = if i % 2 == 0 {
                ("boliu", s.history)
            } else {
                ("user2", h2)
            };
            jobs.push(
                s.galaxy
                    .run_tool(
                        t1,
                        user,
                        history,
                        "crdata_affyDifferentialExpression",
                        &params,
                        pool,
                    )
                    .unwrap(),
            );
        }
        let done = s.galaxy.drive_jobs(t1, pool, 10_000).unwrap();
        assert!(done > t1);
        // Fair share: both users consumed CPU.
        assert!(pool.user_usage("boliu") > 0.0);
        assert!(pool.user_usage("user2") > 0.0);
    }
    for job in jobs {
        assert_eq!(s.galaxy.job(job).unwrap().state, GalaxyJobState::Ok);
    }
}

#[test]
fn stop_resume_preserves_the_instance_and_pauses_billing() {
    let (mut s, report) = UseCaseScenario::deploy(104, SimTime::ZERO).unwrap();
    let stopped = s.world.stop_instance(report.ready_at, &s.instance).unwrap();
    assert_eq!(
        s.world.instance(&s.instance).unwrap().state,
        GpState::Stopped
    );
    let cost_at_stop = s.world.ec2.total_cost(BillingMode::PerSecond, stopped);

    let weekend = stopped + cumulus::simkit::time::SimDuration::from_hours(48);
    assert_eq!(
        s.world.ec2.total_cost(BillingMode::PerSecond, weekend),
        cost_at_stop,
        "stopped instances cost nothing"
    );

    let resumed = s.world.resume_instance(weekend, &s.instance).unwrap();
    assert_eq!(
        s.world.instance(&s.instance).unwrap().state,
        GpState::Running
    );

    // The cluster still works after resume: run the analysis again.
    let (ds, t1) = s.transfer_four_cel_samples(resumed.ready_at).unwrap();
    let (job, _) = s.run_differential_expression(t1, ds).unwrap();
    assert_eq!(s.galaxy.job(job).unwrap().state, GalaxyJobState::Ok);
}

#[test]
fn hourly_billing_mode_is_more_expensive() {
    let (s, report) = UseCaseScenario::deploy(105, SimTime::ZERO).unwrap();
    let at = report.ready_at;
    let per_second = s.world.ec2.total_cost(BillingMode::PerSecond, at);
    let hourly = s.world.ec2.total_cost(BillingMode::HourlyRoundUp, at);
    assert!(hourly >= per_second);
    // 8.8 minutes rounds up to a full hour of m1.small.
    assert!((hourly - 0.04).abs() < 1e-9, "hourly={hourly}");
}
